"""Shared fixtures and reporting helpers for the reproduction benches.

Each ``test_*`` module regenerates one table or figure of the paper.
Results are printed to the terminal (bypassing capture) and appended to
``benchmarks/results/`` so a full ``pytest benchmarks/ --benchmark-only``
run leaves a complete experiment record.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.data import load_dataset, load_query_dataset

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--check-baseline",
        action="store_true",
        default=False,
        help=(
            "opt-in: re-time the hot paths and compare against the "
            "committed BENCH_hotpaths.json (repro bench --check)"
        ),
    )


@pytest.fixture()
def report(capsys):
    """Callable writing a block of text to terminal + results file."""

    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str) -> None:
        block = f"\n===== {name} =====\n{text}\n"
        with capsys.disabled():
            print(block)
        with open(RESULTS_DIR / f"{name}.txt", "w") as fh:
            fh.write(text + "\n")

    return _report


@pytest.fixture(autouse=True)
def _sweep_stray_shard_dirs():
    """Remove shard stores a failed bench left registered but undeleted.

    Shard directories live on disk (often many GB at bench scale), so a
    bench that dies between build and destroy must not leak them into
    the workspace; owners deregister on destroy, making the registry
    diff exactly the stray set.
    """
    import shutil

    from repro.shard import active_shard_dirs, forget_shard_dir

    before = active_shard_dirs()
    yield
    for stray in sorted(active_shard_dirs() - before):
        shutil.rmtree(stray, ignore_errors=True)
        forget_shard_dir(stray)


@pytest.fixture(scope="session")
def small_ds1():
    """The Taobao #1 analogue at bench scale."""
    return load_dataset("mini-taobao1", size="small", seed=0)


@pytest.fixture(scope="session")
def small_ds2():
    """The Taobao #2 (cold-start) analogue at bench scale."""
    return load_dataset("mini-taobao2", size="small", seed=0)


@pytest.fixture(scope="session")
def small_ds3():
    """The Taobao #3 (query-item) analogue at bench scale."""
    return load_query_dataset(size="small", seed=0)


@pytest.fixture(scope="session")
def taxonomy_artifacts(small_ds3):
    """One L=4 taxonomy fit shared by Table VII, Fig. 5 and the online A/B.

    Returns ``(hierarchy, hignn_taxonomy, shoal_taxonomy, counts)`` with
    SHOAL cut at the same per-level cluster counts ("we set SHOAL's
    number of clusters as same as HiGNN's", Section V-D-2).
    """
    from repro.taxonomy import (
        TaxonomyPipelineConfig,
        build_shoal_taxonomy,
        build_taxonomy,
        describe_taxonomy,
        fit_query_item_hignn,
    )

    pipeline = TaxonomyPipelineConfig(levels=4, embedding_dim=16)
    hierarchy, _ = fit_query_item_hignn(small_ds3, pipeline, rng=0)
    hignn_tax = build_taxonomy(hierarchy, small_ds3)
    describe_taxonomy(hignn_tax, small_ds3)
    counts = [len(hignn_tax.at_level(l)) for l in range(1, hignn_tax.num_levels + 1)]
    shoal_tax = build_shoal_taxonomy(small_ds3, counts, rng=0)
    return hierarchy, hignn_tax, shoal_tax, counts


# Re-exported so bench modules can `from conftest import format_table`.
from repro.utils.tables import format_table  # noqa: E402  (fixture file)
