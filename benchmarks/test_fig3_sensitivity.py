"""Fig. 3 reproduction: AUC vs hierarchy depth L and K-decay alpha.

Paper reference (Section IV-B-4): AUC increases with L up to L = 3
(DIN is the L = 0 point), and smaller alpha (slower cluster-count decay,
alpha = 5 best in the paper) beats larger alpha (10, 20) because
aggressive coarsening loses information.

The L sweep reuses ONE fitted L=4 hierarchy and truncates z^H at each
depth — equivalent to refitting shallower stacks but far cheaper, and it
isolates the depth effect from refit noise.  The alpha sweep refits, as
alpha changes the cluster structure itself.
"""

import numpy as np

from conftest import format_table
from repro.core.hignn import HiGNN
from repro.data import load_dataset
from repro.metrics import auc as auc_metric
from repro.prediction import CVRTrainConfig, FeatureAssembler, run_din, train_cvr_model
from repro.prediction.experiment import _prepare_train_samples
from repro.utils.config import HiGNNConfig, TrainConfig
from repro.utils.rng import ensure_rng

CVR_CONFIG = CVRTrainConfig(epochs=15)
TRAIN = TrainConfig(epochs=4, batch_size=512, learning_rate=3e-3)


def _auc_at_depth(dataset, hierarchy, depth, seed=0):
    """Train the CVR head with z^H truncated to the first ``depth`` levels."""
    user_repr = hierarchy.hierarchical_user_embeddings(max_level=depth)
    item_repr = hierarchy.hierarchical_item_embeddings(max_level=depth)
    interactions = [
        (hierarchy.user_level_embeddings(l), hierarchy.item_level_embeddings(l))
        for l in range(1, depth + 1)
    ]
    assembler = FeatureAssembler.for_dataset(
        dataset, user_repr, item_repr, interactions=interactions
    )
    rng = ensure_rng(seed)
    train = _prepare_train_samples(dataset, rng)
    x, y = assembler.assemble_samples(train)
    model, _ = train_cvr_model(x, y, CVR_CONFIG, rng=seed)
    x_test, y_test = assembler.assemble_samples(dataset.test)
    return auc_metric(y_test, model.predict_proba(x_test))


def test_fig3_level_sweep(benchmark, report, small_ds1):
    def run():
        config = HiGNNConfig(levels=4, train=TRAIN)
        hierarchy = HiGNN(config, seed=0).fit(small_ds1.graph)
        din = run_din(small_ds1, cvr_config=CVR_CONFIG, seed=0)
        curve = {0: din.auc}
        for depth in range(1, hierarchy.num_levels + 1):
            curve[depth] = _auc_at_depth(small_ds1, hierarchy, depth)
        return curve

    curve = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[f"L={l}" + (" (DIN)" if l == 0 else ""), f"{v:.4f}"] for l, v in curve.items()]
    report("fig3_level_sweep", format_table(["Depth", "AUC"], rows))

    # Shape: adding hierarchical information beats the L=0 baseline, and
    # the best depth is >= 2 (hierarchy helps beyond a single level).
    assert max(curve.values()) > curve[0]
    best_depth = max(curve, key=lambda k: curve[k])
    assert best_depth >= 1


def test_fig3_alpha_sweep(benchmark, report, small_ds1):
    def run():
        results = {}
        for alpha in (5.0, 10.0, 20.0):
            config = HiGNNConfig(
                levels=3,
                cluster_decay=alpha,
                initial_user_clusters=1.0 / alpha,
                initial_item_clusters=1.0 / alpha,
                train=TRAIN,
            )
            hierarchy = HiGNN(config, seed=0).fit(small_ds1.graph)
            results[alpha] = _auc_at_depth(
                small_ds1, hierarchy, hierarchy.num_levels
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[f"alpha={int(a)}", f"{v:.4f}"] for a, v in sorted(results.items())]
    report("fig3_alpha_sweep", format_table(["K strategy", "AUC"], rows))

    # Shape: the smallest alpha (least information loss) is best or tied.
    best_alpha = max(results, key=lambda a: results[a])
    assert results[5.0] >= results[best_alpha] - 0.02
