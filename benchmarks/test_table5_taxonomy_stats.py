"""Tables V + VI reproduction: taxonomy dataset and sample statistics.

Paper reference (Section V-D-1):

    Table V:  Taobao #3  76.2M queries  138.5M items  1.0B edges  9.48e-8
    Table VI: positives 1.0B, negatives 3.0B (1:3)

The mini query-item world reproduces the structure: a sparse bipartite
click graph whose density is far below the prediction datasets', and a
1:3 positive:negative sample budget for the unsupervised loss (our
trainer draws Q_u = Q_i = 5 negatives per side per positive; the 1:3
figure below mirrors the paper's protocol with Q = 3).
"""

from conftest import format_table


def test_table5_taxonomy_statistics(benchmark, report, small_ds3):
    def compute():
        g = small_ds3.graph
        clicks = float(g.edge_weights.sum())
        density = clicks / (g.num_users * g.num_items)
        return g, clicks, density

    graph, clicks, density = benchmark.pedantic(compute, rounds=1, iterations=1)

    stats_rows = [
        [
            "mini-taobao3",
            f"{graph.num_users:,}",
            f"{graph.num_items:,}",
            f"{int(clicks):,}",
            f"{density:.2e}",
        ],
        ["paper #3", "76,218,663", "138,514,439", "1,000,947,908", "9.48e-8"],
    ]
    table5 = format_table(
        ["Dataset", "Queries", "Items", "Q-I clicks", "Density"], stats_rows
    )

    positives = int(clicks)
    negatives = positives * 3
    sample_rows = [
        ["mini-taobao3", f"{positives:,}", f"{negatives:,}", f"{positives + negatives:,}"],
        ["paper #3", "1,000,947,908", "3,002,843,724", "4,003,791,632"],
    ]
    table6 = format_table(["Dataset", "Positive", "Negative", "Total"], sample_rows)

    report("table5_table6_taxonomy_stats", table5 + "\n\n" + table6)

    assert graph.num_items > graph.num_users  # items outnumber queries, as in #3
    assert density < 0.1
