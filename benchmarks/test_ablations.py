"""Ablation benches for the design choices DESIGN.md calls out.

Not in the paper's tables, but each isolates a decision the paper (or
this reproduction) made:

1. aggregator type         — the paper uses mean "for demonstration";
2. K-means variant         — single-pass is the paper's scaling choice;
3. negative distribution   — degree^0.75 vs uniform P_n (Eq. 5);
4. similarity head         — paper-literal MLP vs dot vs hybrid (see
                             repro.core.loss for why hybrid is default);
5. hierarchy concat        — z^H concatenation vs last-level only.

Each ablation trains at tiny scale and reports downstream quality:
user-cluster purity against the generator's home-leaf communities
(unsupervised stages) or test AUC (feature ablation).
"""

import dataclasses

import numpy as np

from conftest import format_table
from repro.clustering.kmeans import kmeans
from repro.core.hignn import HiGNN
from repro.core.sage import BipartiteGraphSAGE
from repro.core.trainer import SageTrainer
from repro.data import load_dataset
from repro.metrics import auc as auc_metric
from repro.prediction import CVRTrainConfig, FeatureAssembler, train_cvr_model
from repro.prediction.experiment import _prepare_train_samples
from repro.utils.config import HiGNNConfig, KMeansConfig, SageConfig, TrainConfig
from repro.utils.rng import ensure_rng

TRAIN = TrainConfig(epochs=6, batch_size=256, learning_rate=5e-3)
SAGE = SageConfig(embedding_dim=16)


def _purity(labels, truth_labels):
    total = 0
    for c in np.unique(labels):
        members = truth_labels[labels == c]
        total += np.bincount(members).max()
    return total / len(truth_labels)


def _user_purity_after_training(dataset, sage_config, seed=0):
    module = BipartiteGraphSAGE(
        dataset.graph.user_features.shape[1],
        dataset.graph.item_features.shape[1],
        sage_config,
        rng=seed,
    )
    SageTrainer(module, dataset.graph, TRAIN, rng=seed).fit()
    z_users, _ = module.embed_all(dataset.graph)
    k = dataset.ground_truth.tree.n_leaves
    labels = kmeans(z_users, k, rng=seed).labels
    return _purity(labels, dataset.ground_truth.user_home_leaf_index)


def test_ablation_aggregator(benchmark, report):
    dataset = load_dataset("mini-taobao1", size="tiny", seed=0)

    def run():
        scores = {}
        for agg in ("mean", "sum", "max", "weighted_mean"):
            cfg = dataclasses.replace(SAGE, aggregator=agg)
            scores[agg] = _user_purity_after_training(dataset, cfg)
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[agg, f"{p:.3f}"] for agg, p in scores.items()]
    report("ablation_aggregator", format_table(["Aggregator", "User purity"], rows))
    chance = 1.0 / dataset.ground_truth.tree.n_leaves
    assert all(p > chance for p in scores.values())


def test_ablation_negative_distribution(benchmark, report):
    dataset = load_dataset("mini-taobao1", size="tiny", seed=0)

    def run():
        scores = {}
        for dist in ("degree", "uniform"):
            cfg = dataclasses.replace(SAGE, negative_distribution=dist)
            scores[dist] = _user_purity_after_training(dataset, cfg)
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[d, f"{p:.3f}"] for d, p in scores.items()]
    report("ablation_negatives", format_table(["P_n", "User purity"], rows))
    chance = 1.0 / dataset.ground_truth.tree.n_leaves
    assert all(p > chance for p in scores.values())


def test_ablation_similarity_head(benchmark, report):
    dataset = load_dataset("mini-taobao1", size="tiny", seed=0)

    def run():
        scores = {}
        for head in ("mlp", "dot", "hybrid"):
            cfg = dataclasses.replace(SAGE, similarity_head=head)
            scores[head] = _user_purity_after_training(dataset, cfg)
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[h, f"{p:.3f}"] for h, p in scores.items()]
    report("ablation_head", format_table(["Similarity head", "User purity"], rows))
    # The hybrid head (metric anchor + MLP refinement) should not lose
    # to the paper-literal pure MLP head on clusterability.
    assert scores["hybrid"] >= scores["mlp"] - 0.05


def test_ablation_kmeans_variant(benchmark, report):
    dataset = load_dataset("mini-taobao1", size="tiny", seed=0)

    def run():
        hierarchy_scores = {}
        for algorithm in ("lloyd", "minibatch", "single_pass"):
            config = HiGNNConfig(
                levels=1,
                sage=SAGE,
                kmeans=KMeansConfig(algorithm=algorithm),
                train=TRAIN,
            )
            hierarchy = HiGNN(config, seed=0).fit(dataset.graph)
            labels = hierarchy.levels[0].user_assignment
            hierarchy_scores[algorithm] = _purity(
                labels, dataset.ground_truth.user_home_leaf_index
            )
        return hierarchy_scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[a, f"{p:.3f}"] for a, p in scores.items()]
    report("ablation_kmeans", format_table(["K-means variant", "User purity"], rows))
    # Single-pass trades little quality for its one-pass cost model.
    assert scores["single_pass"] > scores["lloyd"] - 0.2


def test_ablation_negative_counts_and_gamma(benchmark, report):
    """Q_u/Q_i sample counts and the gamma weight-feature value (Eq. 5).

    The gamma row documents the 'label leak' failure mode: with a tiny
    gamma the similarity head separates positives from negatives using
    the weight input alone, so embeddings stop improving (see
    repro/utils/config.py).
    """
    dataset = load_dataset("mini-taobao1", size="tiny", seed=0)

    def run():
        scores = {}
        for q in (2, 5, 10):
            cfg = dataclasses.replace(
                SAGE, negative_samples_user=q, negative_samples_item=q
            )
            scores[f"Q={q}"] = _user_purity_after_training(dataset, cfg)
        for gamma in (0.1, 1.0):
            cfg = dataclasses.replace(SAGE, negative_weight=gamma)
            scores[f"gamma={gamma}"] = _user_purity_after_training(dataset, cfg)
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, f"{p:.3f}"] for name, p in scores.items()]
    report(
        "ablation_negative_counts_gamma",
        format_table(["Setting", "User purity"], rows),
    )
    chance = 1.0 / dataset.ground_truth.tree.n_leaves
    assert all(p > chance for p in scores.values())


def test_ablation_hierarchy_concat_vs_last_level(benchmark, report):
    dataset = load_dataset("mini-taobao1", size="tiny", seed=0)

    def run():
        config = HiGNNConfig(levels=2, sage=SAGE, train=TRAIN)
        hierarchy = HiGNN(config, seed=0).fit(dataset.graph)
        results = {}
        variants = {
            "concat (z^H)": (
                hierarchy.hierarchical_user_embeddings(),
                hierarchy.hierarchical_item_embeddings(),
                [
                    (
                        hierarchy.user_level_embeddings(l),
                        hierarchy.item_level_embeddings(l),
                    )
                    for l in (1, 2)
                ],
            ),
            "last level only": (
                hierarchy.user_level_embeddings(2),
                hierarchy.item_level_embeddings(2),
                [
                    (
                        hierarchy.user_level_embeddings(2),
                        hierarchy.item_level_embeddings(2),
                    )
                ],
            ),
        }
        for name, (ur, ir, inter) in variants.items():
            assembler = FeatureAssembler.for_dataset(
                dataset, ur, ir, interactions=inter
            )
            train = _prepare_train_samples(dataset, ensure_rng(0))
            x, y = assembler.assemble_samples(train)
            model, _ = train_cvr_model(x, y, CVRTrainConfig(epochs=12), rng=0)
            x_test, y_test = assembler.assemble_samples(dataset.test)
            results[name] = auc_metric(y_test, model.predict_proba(x_test))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[n, f"{v:.4f}"] for n, v in results.items()]
    report("ablation_concat", format_table(["Representation", "AUC"], rows))
    # The paper's concatenation keeps the individual-level signal that a
    # coarse-only representation throws away.
    assert results["concat (z^H)"] > results["last level only"] - 0.02
