"""Section III-D reproduction: the complexity analysis, measured.

The paper argues HiGNN scales because its two dominant operations are

* first-layer aggregation — O((M + N) * K1 * K2), linear in the vertex
  count at fixed fan-outs, and
* single-pass K-means — O(M * K_u + N * K_i), one pass over the data.

These benches time both kernels over a geometric size sweep and assert
near-linear growth (doubling the input less than ~triples the time,
allowing constant-factor noise), plus the fan-out product law for
aggregation.  They use the pytest-benchmark timer for the headline
kernel and wall-clock sweeps for the scaling law.
"""

import time

import numpy as np

from conftest import format_table
from repro.clustering.kmeans import kmeans
from repro.core.sage import BipartiteGraphSAGE
from repro.graph.generators import random_bipartite
from repro.nn.tensor import no_grad
from repro.utils.config import KMeansConfig, SageConfig


def _embed_time(num_users, num_items, fanouts, repeats=3):
    graph = random_bipartite(
        num_users, num_items, num_edges=num_users * 8, feature_dim=16, rng=0
    )
    cfg = SageConfig(embedding_dim=16, neighbor_samples=fanouts)
    module = BipartiteGraphSAGE(16, 16, cfg, rng=0)
    users = np.arange(num_users)
    with no_grad():
        module.embed_users(graph, users)  # warm-up
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            module.embed_users(graph, users)
            best = min(best, time.perf_counter() - start)
    return best


def test_aggregation_scales_linearly_in_vertices(benchmark, report):
    sizes = [500, 1000, 2000, 4000]

    def sweep():
        return {n: _embed_time(n, n, (8, 4)) for n in sizes}

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [[f"{n} x {n}", f"{t * 1000:.1f} ms"] for n, t in times.items()]
    ratios = [times[sizes[i + 1]] / times[sizes[i]] for i in range(len(sizes) - 1)]
    rows.append(["growth per doubling", " / ".join(f"{r:.2f}x" for r in ratios)])
    report("complexity_aggregation", format_table(["Graph size", "Embed time"], rows))

    # Linear law: doubling vertices should not quadruple the time.
    for ratio in ratios:
        assert ratio < 3.5


def test_aggregation_scales_with_fanout_product(benchmark, report):
    def run():
        return _embed_time(800, 800, (4, 2)), _embed_time(800, 800, (8, 4))

    base, bigger = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "complexity_fanout",
        f"fanout (4,2): {base * 1000:.1f} ms\n"
        f"fanout (8,4): {bigger * 1000:.1f} ms\n"
        f"ratio: {bigger / base:.2f}x (K1*K2 grew 4x)",
    )
    # The fan-out product dominates: the bigger product costs more, but
    # less than the worst-case 4x once vectorisation is accounted for.
    assert bigger > base
    assert bigger / base < 8.0


def test_single_pass_kmeans_linear(benchmark, report):
    rng = np.random.default_rng(0)
    sizes = [2000, 4000, 8000]

    def sweep():
        times = {}
        for n in sizes:
            points = rng.normal(size=(n, 16))
            start = time.perf_counter()
            kmeans(points, 32, KMeansConfig(algorithm="single_pass"), rng=0)
            times[n] = time.perf_counter() - start
        return times

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [[f"{n:,} points", f"{t * 1000:.1f} ms"] for n, t in times.items()]
    report("complexity_kmeans", format_table(["Input", "single-pass time"], rows))

    for i in range(len(sizes) - 1):
        assert times[sizes[i + 1]] / max(times[sizes[i]], 1e-9) < 3.5


def test_single_pass_faster_than_lloyd_at_scale(benchmark, report):
    def run():
        rng = np.random.default_rng(1)
        points = rng.normal(size=(6000, 16))
        start = time.perf_counter()
        kmeans(points, 64, KMeansConfig(algorithm="single_pass"), rng=0)
        single = time.perf_counter() - start
        start = time.perf_counter()
        kmeans(points, 64, KMeansConfig(algorithm="lloyd", max_iter=50), rng=0)
        return single, time.perf_counter() - start

    single, lloyd = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "complexity_kmeans_variants",
        f"single-pass: {single * 1000:.0f} ms\nlloyd: {lloyd * 1000:.0f} ms",
    )
    assert single < lloyd
