"""Table I + Table II reproduction: dataset and sample statistics.

Paper reference (Section IV-B-1):

    Table I:  Taobao #1  34.5M users  13.3M items  280.5M clicks  6.11e-7
              Taobao #2  11.7M users   3.1M items    1.1M clicks  3.10e-8
    Table II: Taobao #1 train 79.0M pos / 223.6M neg (replicated to 1:3)
              Taobao #2 train  2.1M pos /  28.7M neg (raw imbalance)

Our mini worlds reproduce the *relationships*: #2 is a sparse slice of
the same platform (fewer users/items/clicks, lower density, far fewer
positives), #1 is re-balanced to 1:3 while #2 keeps its raw skew.
"""

import numpy as np

from conftest import format_table
from repro.data import dataset_statistics, replicate_to_ratio


def test_table1_dataset_statistics(benchmark, report, small_ds1, small_ds2):
    def compute():
        return [dataset_statistics(ds) for ds in (small_ds1, small_ds2)]

    stats1, stats2 = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for name, stats in (("mini-taobao1", stats1), ("mini-taobao2", stats2)):
        rows.append(
            [
                name,
                f"{int(stats['users']):,}",
                f"{int(stats['items']):,}",
                f"{int(stats['clicks']):,}",
                f"{stats['density']:.2e}",
            ]
        )
    table = format_table(["Dataset", "Users", "Items", "Clicks", "Density"], rows)
    report("table1_dataset_stats", table)

    # Shape assertions mirroring the paper's Table I relationships.
    assert stats2["users"] < stats1["users"]
    assert stats2["items"] < stats1["items"]
    assert stats2["clicks"] < stats1["clicks"]
    # The paper's density column shrinks for #2 because its user/item
    # universe stays huge while clicks collapse; on a mini world the
    # slice's universe shrinks too, so the faithful sparsity check is
    # clicks-per-item: new arrivals see far less traffic.
    assert (
        stats2["clicks"] / stats2["items"] < stats1["clicks"] / stats1["items"]
    )


def test_table2_sample_statistics(benchmark, report, small_ds1, small_ds2):
    def compute():
        balanced1 = replicate_to_ratio(
            small_ds1.train, negatives_per_positive=3.0, rng=0
        )
        return balanced1, small_ds1, small_ds2

    balanced1, ds1, ds2 = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = [
        [
            "mini-taobao1 (1:3 replicated)",
            f"{balanced1.num_positive:,}",
            f"{balanced1.num_negative:,}",
            f"{len(balanced1):,}",
            f"{len(ds1.test):,}",
        ],
        [
            "mini-taobao2 (raw)",
            f"{ds2.train.num_positive:,}",
            f"{ds2.train.num_negative:,}",
            f"{len(ds2.train):,}",
            f"{len(ds2.test):,}",
        ],
    ]
    table = format_table(
        ["Dataset", "Train pos", "Train neg", "Train total", "Test total"], rows
    )
    report("table2_sample_stats", table)

    # Replicated #1 sits at ~1:3; raw #2 is much more imbalanced.
    ratio1 = balanced1.num_negative / balanced1.num_positive
    ratio2 = ds2.train.num_negative / max(ds2.train.num_positive, 1)
    assert ratio1 <= 3.5
    assert ratio2 > ratio1
