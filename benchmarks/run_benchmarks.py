#!/usr/bin/env python
"""Run the hot-path perf suite and write ``BENCH_hotpaths.json``.

Usage::

    python benchmarks/run_benchmarks.py [--mode quick|full] [--seed N]
                                        [--repeats N] [--out PATH]

Thin wrapper over ``python -m repro.cli bench`` that works from any
working directory without installing the package: it puts ``src/`` on
``sys.path`` and defaults ``--out`` to the repo root so the tracked
report lands in the same place every time.  ``--mode quick`` is sized
for CI smoke runs; ``--mode full`` regenerates the tracked record.
"""

from __future__ import annotations

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))


def main(argv: list[str] | None = None) -> int:
    from repro.cli import main as cli_main

    argv = list(sys.argv[1:] if argv is None else argv)
    if "--out" not in argv:
        argv += ["--out", str(ROOT / "BENCH_hotpaths.json")]
    return cli_main(["bench", *argv])


if __name__ == "__main__":
    raise SystemExit(main())
