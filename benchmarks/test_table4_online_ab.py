"""Table IV reproduction: simulated online A/B test on new arrivals.

Paper reference (Section IV-C): HiGNN deployed for new-arrival (cold
start) recommendations lifts all four business metrics over the
incumbent on two testing days —

    UV  +1.90% / +2.04%     CNT +2.76% / +2.11%
    CTR +0.34% / +0.66%     CVR +2.25% / +2.09%

Here the control arm ranks new items by a DIN-score table (the deployed
graph-free model) and the treatment arm ranks by a CVR model over
HiGNN's hierarchical embeddings; both serve the same simulated visitor
population against the ground-truth behaviour oracle.  The expected
shape: positive lift on every metric, largest on the conversion-side
metrics (CNT/CVR), modest on UV/CTR.
"""

import numpy as np

from repro.core.hignn import HiGNN
from repro.data import load_dataset
from repro.prediction import CVRTrainConfig, FeatureAssembler, train_cvr_model
from repro.prediction.din import DINConfig, build_user_histories, din_side_features, train_din
from repro.prediction.experiment import method_representations, _prepare_train_samples
from repro.serving import ScoreTableRecommender, cvr_score_table, run_ab_test
from repro.utils.config import HiGNNConfig, TrainConfig
from repro.utils.rng import ensure_rng

CVR_CONFIG = CVRTrainConfig(epochs=15)


def _treatment(dataset, candidates):
    config = HiGNNConfig(
        levels=2, train=TrainConfig(epochs=5, batch_size=256, learning_rate=3e-3)
    )
    hierarchy = HiGNN(config, seed=0).fit(dataset.graph)
    user_repr, item_repr, inter = method_representations(hierarchy, "hignn")
    assembler = FeatureAssembler.for_dataset(
        dataset, user_repr, item_repr, interactions=inter
    )
    train = _prepare_train_samples(dataset, ensure_rng(0))
    x, y = assembler.assemble_samples(train)
    model, _ = train_cvr_model(x, y, CVR_CONFIG, rng=0)
    table = cvr_score_table(model, assembler, dataset.num_users, candidates)
    return ScoreTableRecommender(table, candidates)


def _control(dataset, candidates):
    """The incumbent: DIN scores every (user, new item) pair."""
    model, histories, _ = train_din(
        dataset,
        DINConfig(embedding_dim=16, history_length=10),
        CVR_CONFIG,
        rng=0,
    )
    num_users = dataset.num_users
    table = np.zeros((num_users, len(candidates)))
    for start in range(0, num_users, 32):
        stop = min(start + 32, num_users)
        users = np.repeat(np.arange(start, stop), len(candidates))
        items = np.tile(candidates, stop - start)
        side = din_side_features(dataset, users, items)
        probs = model.predict_proba(histories[users], items, side)
        table[start:stop] = probs.reshape(stop - start, len(candidates))
    return ScoreTableRecommender(table, candidates)


def test_table4_online_ab(benchmark, report):
    def run():
        dataset = load_dataset("mini-taobao1", size="tiny", seed=0)
        truth = dataset.ground_truth
        candidates = np.flatnonzero(truth.new_items)
        control = _control(dataset, candidates)
        treatment = _treatment(dataset, candidates)
        return run_ab_test(
            truth,
            control,
            treatment,
            num_days=2,
            visitors_per_day=4000,
            slate_size=10,
            candidate_items=candidates,
            rng=0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    paper = (
        "paper:  UV +1.90%/+2.04%  CNT +2.76%/+2.11%  "
        "CTR +0.34%/+0.66%  CVR +2.25%/+2.09%"
    )
    report("table4_online_ab", result.render() + "\n" + paper)

    # Shape: the HiGNN arm lifts the conversion metrics on average.
    assert result.mean_lift("CVR") > 0
    assert result.mean_lift("CNT") > 0
    # Engagement metrics do not regress materially.
    assert result.mean_lift("CTR") > -0.05
    assert result.mean_lift("UV") > -0.05
