"""Million-vertex out-of-core scaling record (ISSUE acceptance run).

Streams the tracked full-mode world (~10^6 vertices) straight to shard
files and embeds it over mmap blocks in a subprocess, so the measured
peak RSS is the sharded path's own.  Marked ``slow``: this is the run
whose numbers land in ``BENCH_hotpaths.json``'s ``shard`` section and
EXPERIMENTS.md — deselect with ``-m 'not slow'``.
"""

from __future__ import annotations

import pytest

from repro.utils.bench import SHARD_SIZES, _run_shard_child, dense_footprint_mb


@pytest.mark.slow
def test_million_vertex_world_stays_out_of_core(report):
    spec = SHARD_SIZES["full"][-1]
    assert spec.get("subprocess"), "full grid must end with the 10^6 spec"
    result = _run_shard_child("sharded", spec, seed=0, workers=4)
    floor = dense_footprint_mb(
        spec["users"], spec["items"], result["num_edges"], 16
    )
    report(
        "shard_scale_1e6",
        "\n".join(
            f"{key:<20} {value}"
            for key, value in sorted(result.items())
            if key != "checksum"
        )
        + f"\ndense_footprint_mb   {floor:.1f}",
    )
    assert result["num_edges"] >= 10**6
    assert result["edges_shard_local"] >= 0.9
    assert result["peak_rss_mb"] < floor
