"""Hot-path perf benchmark — the Section III-D scalability claim.

Times the three loops the paper's complexity analysis names (recursive
neighbour embedding, neighbour sampling, K-means) with their retained
reference implementations ("before") against the batch-efficient
rewrites ("after"), and writes the tracked ``BENCH_hotpaths.json``
report at the repo root.  ``benchmarks/run_benchmarks.py`` (or
``python -m repro.cli bench``) produces the same report standalone;
``--mode full`` regenerates the record at the full workload grid.

The v3 ``parallel`` section is smoked here with a 2-worker pool under a
hard map timeout so a wedged pool fails the run instead of hanging it.
No parallel *speedup* is asserted: fan-out can only win when
``os.cpu_count()`` exceeds the pool size, which CI boxes don't promise
(the tracked report records the honest number either way).

The v6 ``serving`` section replays a zipf request stream through the
streaming frontend (cached vs uncached), times a delta refresh against a
full re-embed of the mutated graph, and times the vectorised serving-day
simulation against its per-impression reference.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.parallel import configure
from repro.utils.bench import (
    SCHEMA,
    bench_hotpaths,
    check_report,
    load_report,
    render_check_table,
    render_report,
    write_report,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_hotpath_bench_writes_tracked_report(report):
    configure(map_timeout_s=120.0)  # fail fast if a worker pool wedges
    result = bench_hotpaths("quick", seed=0, repeats=3, workers=2)
    path = write_report(result, REPO_ROOT / "BENCH_hotpaths.json")
    report("hotpath_bench", render_report(result))

    data = json.loads(path.read_text())
    assert data["schema"] == SCHEMA
    assert "git_commit" in data
    assert data["cpu_count"] >= 1
    benches = data["benchmarks"]
    assert set(benches) == {
        "embed_all",
        "train_epoch",
        "weighted_sampling",
        "kmeans",
        "parallel",
        "score_topk",
        "shard",
        "serving",
    }
    for rows in benches.values():
        assert rows
        for row in rows:
            assert row["before_s"] > 0 and row["after_s"] > 0

    # v2 counter-derived throughput: present and nonzero on every row of
    # the instrumented hot paths.
    for row in benches["embed_all"]:
        assert row["vertices_per_sec"] > 0
    for row in benches["weighted_sampling"]:
        assert row["samples_per_sec"] > 0

    # The parallel rows ran the pool-backed paths at workers=2.
    for row in benches["parallel"]:
        assert row["workers"] == 2

    # Regression guards, deliberately looser than the typical speedups
    # (>5x embed_all, >10x sampling here) so noisy CI boxes don't flake.
    assert benches["embed_all"][-1]["speedup"] > 1.5
    assert benches["weighted_sampling"][-1]["speedup"] > 2.0
    assert benches["train_epoch"][-1]["speedup"] > 1.2
    # Lazy top-k beats ranking the whole table up front.
    assert benches["score_topk"][-1]["speedup"] > 1.0

    # v6 serving section: one row per streaming-stack hot path, with the
    # load-bench extras on the replay row.  No speedups asserted (cache
    # wins depend on the zipf draw and host), only that the numbers are
    # recorded and sane.
    variants = {row["variant"] for row in benches["serving"]}
    assert variants == {"replay", "delta_refresh", "run_day"}
    replay = next(r for r in benches["serving"] if r["variant"] == "replay")
    assert replay["req_per_sec"] > 0
    assert 0.0 <= replay["hit_rate"] <= 1.0
    assert replay["p99_ms"] >= replay["p50_ms"] >= 0.0
    refresh = next(
        r for r in benches["serving"] if r["variant"] == "delta_refresh"
    )
    assert refresh["refresh_mode"] in {"delta", "full"}
    assert 0.0 <= refresh["recompute_fraction"] <= 1.0


def test_bench_check_against_committed_baseline(request, report):
    """Opt-in regression sentinel: ``pytest benchmarks/ --check-baseline``.

    Re-times the quick grid and compares it to the committed
    ``BENCH_hotpaths.json`` with :func:`check_report` — the same
    comparison ``repro bench --check`` runs.  Rows only present in the
    full-mode record stay unmatched (not failures), and degraded /
    ``workers_effective``-mismatched rows are skipped, so this is safe
    on any host that can run the quick grid.
    """
    if not request.config.getoption("--check-baseline"):
        pytest.skip("pass --check-baseline to compare against BENCH_hotpaths.json")
    baseline = load_report(REPO_ROOT / "BENCH_hotpaths.json")
    configure(map_timeout_s=120.0)
    current = bench_hotpaths(
        "quick",
        seed=baseline.get("seed", 0),
        repeats=3,
        workers=baseline.get("workers") or 2,
    )
    result = check_report(current, baseline)
    report("bench_check", render_check_table(result))
    assert not result["regressions"], (
        f"{len(result['regressions'])} hot path(s) regressed vs committed "
        f"baseline:\n" + render_check_table(result)
    )
