"""Table VII reproduction: taxonomy quality — SHOAL vs HiGNN.

Paper reference (Section V-D-2):

    Algorithm  #Level           Accuracy  Diversity
    SHOAL      4.31 (average)   85%       66%
    HiGNN      4                89%       70%

SHOAL gets the same per-level cluster counts as HiGNN ("for fair
comparisons").  Expected shape: HiGNN wins on both accuracy (its trained
non-linear embeddings separate topics the fixed metric cannot) and
diversity (more qualified multi-category topics at the upper levels).
Accuracy here is oracle-scored item purity (see
``repro.taxonomy.metrics`` for why size weighting replaces the paper's
expert panel protocol).
"""

from conftest import format_table
from repro.taxonomy import evaluate_taxonomy


def test_table7_taxonomy_quality(benchmark, report, small_ds3, taxonomy_artifacts):
    _, hignn_tax, shoal_tax, counts = taxonomy_artifacts

    def run():
        return (
            evaluate_taxonomy(hignn_tax, small_ds3),
            evaluate_taxonomy(shoal_tax, small_ds3),
        )

    hignn_scores, shoal_scores = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [
            "SHOAL",
            f"{int(shoal_scores['levels'])}",
            f"{shoal_scores['accuracy'] * 100:.1f}%",
            f"{shoal_scores['diversity'] * 100:.1f}%",
        ],
        [
            "HiGNN",
            f"{int(hignn_scores['levels'])}",
            f"{hignn_scores['accuracy'] * 100:.1f}%",
            f"{hignn_scores['diversity'] * 100:.1f}%",
        ],
        ["paper SHOAL", "4.31", "85%", "66%"],
        ["paper HiGNN", "4", "89%", "70%"],
    ]
    table = format_table(["Algorithm", "#Level", "Accuracy", "Diversity"], rows)
    report(
        "table7_taxonomy_quality",
        table + f"\n(per-level cluster counts shared by both: {counts})",
    )

    assert hignn_scores["accuracy"] > shoal_scores["accuracy"]
    assert hignn_scores["diversity"] >= shoal_scores["diversity"]
