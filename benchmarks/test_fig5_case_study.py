"""Fig. 5 reproduction: a rendered topic-driven taxonomy with descriptions.

Paper reference (Section V-D-3): HiGNN builds a four-level tree where
parent topics split into semantically coherent children (e.g. 'Healthy
Home' -> 'Beauty Products' -> 'Cosmetics' -> 'Basic Care'), each labeled
with its most representative search query (Eqs. 14-16).

The synthetic world's topics are hierarchically named (syllable
composed), and the oracle lets us check the structural claims: topic
descriptions should contain words from the members' ground-truth topic
vocabularies, and parent topics should split into children drawn from
the same ground-truth subtree.
"""

import numpy as np


def test_fig5_taxonomy_case_study(benchmark, report, small_ds3, taxonomy_artifacts):
    _, taxonomy, _, _ = taxonomy_artifacts

    def run():
        return taxonomy.render(max_children=4, max_depth=3)

    rendered = benchmark.pedantic(run, rounds=1, iterations=1)
    report("fig5_case_study", rendered)

    # Every topic carries a description.
    assert all(t.description for t in taxonomy.topics.values())

    # Descriptions are on-topic: for most level-1 topics, the chosen
    # query's words overlap the members' ground-truth topic vocabulary.
    tree = small_ds3.tree
    on_topic = 0
    checked = 0
    for topic in taxonomy.at_level(1):
        if topic.size < 3:
            continue
        checked += 1
        member_words: set[str] = set()
        for item in topic.items:
            member_words.update(tree.topic_words(int(small_ds3.item_leaf[item])))
        if member_words & set(topic.description.split()):
            on_topic += 1
    assert checked > 0
    assert on_topic / checked > 0.5

    # The upper levels actually branch (a tree, not a chain).
    assert len(taxonomy.at_level(taxonomy.num_levels)) >= 2
    branching = [
        len(taxonomy.children_of(t.topic_id)) for t in taxonomy.at_level(2)
    ]
    assert max(branching, default=0) >= 2
