"""Table III reproduction: CVR AUC of all six methods on both datasets.

Paper reference (Section IV-B-3):

    Dataset    CGNN   DIN    GE     HUP-o  HIA-o  HiGNN
    Taobao #1  0.829  0.844  0.863  0.853  0.855  0.870
    Taobao #2  0.875  0.870  0.893  0.881  0.881  0.899

Expected *shape* at mini scale: the graph-embedding methods (GE, HiGNN)
clearly beat the graph-free DIN; the single-sided submodels (CGNN,
HUP-only, HIA-only) sit in between or below; HiGNN is at or near the
top, with its margin over GE largest on the sparse cold-start dataset
(the paper's "hierarchical information works more effectively when the
graph is sparse").  Absolute AUCs are lower than the paper's because the
mini-world's behavioural noise floor is higher (oracle AUC ~0.85).
"""

import numpy as np

from conftest import format_table
from repro.prediction import ALL_METHODS, CVRTrainConfig, run_table3
from repro.utils.config import HiGNNConfig, TrainConfig

BENCH_CONFIG = HiGNNConfig(
    levels=3,
    train=TrainConfig(epochs=4, batch_size=512, learning_rate=3e-3),
)
CVR_CONFIG = CVRTrainConfig(epochs=15)
SEEDS = (0, 1)


def _mean_results(dataset_name, size="small"):
    from repro.data import load_dataset

    aucs = {m: [] for m in ALL_METHODS}
    for seed in SEEDS:
        dataset = load_dataset(dataset_name, size=size, seed=seed)
        results = run_table3(dataset, BENCH_CONFIG, CVR_CONFIG, seed=seed)
        for method in ALL_METHODS:
            aucs[method].append(results[method].auc)
    return {m: float(np.mean(v)) for m, v in aucs.items()}


def test_table3_auc_comparison(benchmark, report):
    def run_all():
        return (
            _mean_results("mini-taobao1"),
            _mean_results("mini-taobao2"),
        )

    auc1, auc2 = benchmark.pedantic(run_all, rounds=1, iterations=1)

    header = ["Dataset"] + [m.upper() for m in ALL_METHODS]
    rows = [
        ["mini-taobao1"] + [f"{auc1[m]:.4f}" for m in ALL_METHODS],
        ["mini-taobao2"] + [f"{auc2[m]:.4f}" for m in ALL_METHODS],
        ["paper #1"] + ["0.829", "0.844", "0.863", "0.853", "0.855", "0.870"],
        ["paper #2"] + ["0.875", "0.870", "0.893", "0.881", "0.881", "0.899"],
    ]
    report(
        "table3_auc_comparison",
        format_table(header, rows)
        + f"\n(mean over seeds {SEEDS}; paper rows for shape comparison)",
    )

    for aucs in (auc1, auc2):
        # Graph embeddings beat the graph-free baseline.
        assert aucs["ge"] > aucs["din"]
        assert aucs["hignn"] > aucs["din"]
        # The full model is at or near the top of the table.
        near_top = max(aucs.values()) - aucs["hignn"] < 0.02
        assert near_top
    # Hierarchy helps most where the paper says it does: both datasets
    # show HiGNN >= GE within noise, and the cold-start gap dominates.
    gap_dense = auc1["hignn"] - auc1["ge"]
    gap_cold = auc2["hignn"] - auc2["ge"]
    assert gap_cold > -0.02
    assert gap_dense > -0.02
