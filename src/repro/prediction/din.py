"""DIN — Deep Interest Network baseline (Zhou et al., KDD 2018).

The paper uses DIN as the graph-free baseline ("a popular deep neural
network method without graph structure information and hierarchical
information", Section IV-B-2) and treats it as HiGNN at level 0.

This implementation keeps DIN's defining component: a *local activation
unit* that attends over the user's clicked-item history conditioned on
the candidate item.  Item id embeddings are learned end-to-end; user
profile and item statistics enter the top MLP alongside the attention-
pooled interest vector.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.schema import EcommerceDataset
from repro.graph.bipartite import BipartiteGraph
from repro.nn.layers import MLP, Embedding, Module
from repro.nn.losses import binary_cross_entropy_with_logits, l2_penalty
from repro.nn.optim import build_optimizer, clip_grad_norm
from repro.nn.tensor import Tensor, concat, no_grad
from repro.prediction.cvr_model import CVRTrainConfig, CVRTrainResult
from repro.utils.rng import derive_rng, ensure_rng

__all__ = ["DINConfig", "DIN", "build_user_histories", "train_din"]


@dataclass
class DINConfig:
    """DIN hyper-parameters."""

    embedding_dim: int = 32
    history_length: int = 20
    attention_hidden: tuple[int, ...] = (32,)
    top_hidden: tuple[int, ...] = (128, 64, 32)

    def __post_init__(self) -> None:
        if self.embedding_dim < 1 or self.history_length < 1:
            raise ValueError("embedding_dim and history_length must be >= 1")


def build_user_histories(graph: BipartiteGraph, history_length: int) -> np.ndarray:
    """(num_users, H) click-history matrix, -1 padded.

    Items are taken in descending click-weight order — the strongest
    interactions represent the user's interest best when truncating.
    """
    histories = np.full((graph.num_users, history_length), -1, dtype=np.int64)
    for user in range(graph.num_users):
        items = graph.item_neighbors(user)
        if len(items) == 0:
            continue
        weights = graph.item_neighbor_weights(user)
        order = np.argsort(-weights, kind="mergesort")
        top = items[order][:history_length]
        histories[user, : len(top)] = top
    return histories


class DIN(Module):
    """Deep Interest Network over (history, candidate, side features)."""

    def __init__(
        self,
        num_items: int,
        side_feature_dim: int,
        config: DINConfig | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.config = config or DINConfig()
        cfg = self.config
        rng = ensure_rng(rng)
        d = cfg.embedding_dim
        self.item_embedding = Embedding(num_items, d, rng=rng)
        self.attention = MLP(
            in_features=3 * d,
            hidden=cfg.attention_hidden,
            out_features=1,
            activation="leaky_relu",
            rng=rng,
        )
        self.top = MLP(
            in_features=2 * d + side_feature_dim,
            hidden=cfg.top_hidden,
            out_features=1,
            activation="leaky_relu",
            rng=rng,
        )

    def forward(
        self,
        histories: np.ndarray,
        candidates: np.ndarray,
        side_features: np.ndarray,
    ) -> Tensor:
        """Logits for each (history row, candidate, side-feature row)."""
        n, h = histories.shape
        d = self.config.embedding_dim
        mask = histories >= 0
        safe_hist = np.where(mask, histories, 0)

        cand_emb = self.item_embedding(candidates)  # (n, d)
        hist_emb = self.item_embedding(safe_hist.reshape(-1)).reshape(n, h, d)
        cand_tiled = cand_emb.gather_rows(np.repeat(np.arange(n), h)).reshape(n, h, d)

        att_in = concat([hist_emb, cand_tiled, hist_emb * cand_tiled], axis=-1)
        att_logits = self.attention(att_in.reshape(n * h, 3 * d)).reshape(n, h)
        # Masked softmax over the history axis.
        att_logits = att_logits + np.where(mask, 0.0, -1e9)
        shifted = att_logits - att_logits.max(axis=1, keepdims=True).detach().data
        exp = shifted.exp() * mask.astype(float)
        denom = exp.sum(axis=1, keepdims=True) + 1e-12
        weights = exp / denom  # (n, h)

        interest = (hist_emb * weights.reshape(n, h, 1)).sum(axis=1)  # (n, d)
        top_in = concat([interest, cand_emb, Tensor(side_features)], axis=-1)
        return self.top(top_in).reshape(-1)

    def predict_proba(
        self,
        histories: np.ndarray,
        candidates: np.ndarray,
        side_features: np.ndarray,
        batch_size: int = 4096,
    ) -> np.ndarray:
        """Purchase probabilities, computed in inference mode."""
        self.eval()
        outputs = []
        with no_grad():
            for start in range(0, len(candidates), batch_size):
                sl = slice(start, start + batch_size)
                outputs.append(
                    self(histories[sl], candidates[sl], side_features[sl]).sigmoid().data
                )
        self.train()
        return np.concatenate(outputs) if outputs else np.zeros(0)


def train_din(
    dataset: EcommerceDataset,
    din_config: DINConfig | None = None,
    train_config: CVRTrainConfig | None = None,
    rng: int | np.random.Generator | None = None,
) -> tuple[DIN, np.ndarray, CVRTrainResult]:
    """Train DIN on a dataset's train split.

    Returns (model, histories, result); histories are reused at test
    time since they come from the training-period graph only.
    """
    din_config = din_config or DINConfig()
    train_config = train_config or CVRTrainConfig()
    rng = ensure_rng(rng)
    histories = build_user_histories(dataset.graph, din_config.history_length)
    profile_table = _standard(dataset.user_profiles)
    stats_table = _standard(dataset.item_stats)
    model = DIN(
        num_items=dataset.num_items,
        side_feature_dim=profile_table.shape[1] + stats_table.shape[1],
        config=din_config,
        rng=derive_rng(rng, 1),
    )
    optimizer = build_optimizer(
        train_config.optimizer, model.parameters(), train_config.learning_rate
    )
    samples = dataset.train
    labels = samples.labels.astype(np.float64)
    result = CVRTrainResult()
    shuffle_rng = derive_rng(rng, 2)
    for _ in range(train_config.epochs):
        order = shuffle_rng.permutation(len(samples))
        losses = []
        for start in range(0, len(order), train_config.batch_size):
            batch = order[start : start + train_config.batch_size]
            users = samples.users[batch]
            items = samples.items[batch]
            side = np.concatenate(
                [profile_table[users], stats_table[items]], axis=1
            )
            logits = model(histories[users], items, side)
            loss = binary_cross_entropy_with_logits(logits, labels[batch])
            if train_config.l2 > 0:
                loss = loss + l2_penalty(model.parameters(), train_config.l2)
            optimizer.zero_grad()
            loss.backward()
            if train_config.gradient_clip:
                clip_grad_norm(model.parameters(), train_config.gradient_clip)
            optimizer.step()
            losses.append(loss.item())
        result.epoch_losses.append(float(np.mean(losses)))
    return model, histories, result


def din_side_features(
    dataset: EcommerceDataset, users: np.ndarray, items: np.ndarray
) -> np.ndarray:
    """Profile + item-stat rows for aligned (user, item) ids."""
    return np.concatenate(
        [_standard(dataset.user_profiles)[users], _standard(dataset.item_stats)[items]],
        axis=1,
    )


def _standard(block: np.ndarray) -> np.ndarray:
    block = np.asarray(block, dtype=np.float64)
    mean = block.mean(axis=0)
    std = block.std(axis=0)
    std[std < 1e-12] = 1.0
    return (block - mean) / std
