"""The supervised deep network of Fig. 2 and its training loop (Eq. 7).

A plain MLP (paper sizes 256/128/64, Leaky ReLU, sigmoid output) over
the assembled features, trained with log loss.  The same class serves
CVR and CTR prediction — only the labels differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.layers import MLP, Module
from repro.nn.losses import binary_cross_entropy_with_logits, l2_penalty
from repro.nn.optim import build_optimizer, clip_grad_norm
from repro.nn.tensor import Tensor, no_grad
from repro.utils.rng import derive_rng, ensure_rng

__all__ = ["CVRModel", "CVRTrainConfig", "CVRTrainResult", "train_cvr_model"]


@dataclass
class CVRTrainConfig:
    """Optimisation settings for the prediction head.

    Paper defaults (Section IV-B-2): layers 256/128/64, lr 1e-3,
    batch 1024, L2 regularisation, Leaky ReLU.  ``hidden`` is scaled
    down by default to match the mini datasets; pass (256, 128, 64) to
    match the paper exactly.
    """

    hidden: tuple[int, ...] = (128, 64, 32)
    epochs: int = 15
    batch_size: int = 256
    learning_rate: float = 1e-3
    optimizer: str = "adam"
    l2: float = 1e-5
    dropout: float = 0.0
    gradient_clip: float | None = 5.0

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")


@dataclass
class CVRTrainResult:
    """Per-epoch training losses."""

    epoch_losses: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


class CVRModel(Module):
    """MLP scoring p(purchase | click) for assembled feature rows."""

    def __init__(
        self,
        in_features: int,
        hidden: tuple[int, ...] = (128, 64, 32),
        dropout: float = 0.0,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.net = MLP(
            in_features=in_features,
            hidden=hidden,
            out_features=1,
            activation="leaky_relu",
            dropout=dropout,
            rng=rng,
        )

    def forward(self, x: Tensor) -> Tensor:
        """Raw logits, shape (n,)."""
        return self.net(x).reshape(-1)

    def predict_proba(self, features: np.ndarray, batch_size: int = 8192) -> np.ndarray:
        """p(x) of Eq. 7 for a design matrix, computed without autograd."""
        self.eval()
        outputs = []
        with no_grad():
            for start in range(0, len(features), batch_size):
                chunk = Tensor(features[start : start + batch_size])
                outputs.append(self(chunk).sigmoid().data)
        self.train()
        return np.concatenate(outputs) if outputs else np.zeros(0)


def train_cvr_model(
    features: np.ndarray,
    labels: np.ndarray,
    config: CVRTrainConfig | None = None,
    rng: int | np.random.Generator | None = None,
) -> tuple[CVRModel, CVRTrainResult]:
    """Fit a :class:`CVRModel` on (features, labels) with Eq. 7's loss."""
    config = config or CVRTrainConfig()
    rng = ensure_rng(rng)
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    if len(features) != len(labels):
        raise ValueError("features and labels must align")
    if len(features) == 0:
        raise ValueError("empty training set")

    model = CVRModel(
        in_features=features.shape[1],
        hidden=config.hidden,
        dropout=config.dropout,
        rng=derive_rng(rng, 1),
    )
    optimizer = build_optimizer(
        config.optimizer, model.parameters(), config.learning_rate
    )
    result = CVRTrainResult()
    shuffle_rng = derive_rng(rng, 2)
    for _ in range(config.epochs):
        order = shuffle_rng.permutation(len(features))
        losses = []
        for start in range(0, len(order), config.batch_size):
            batch = order[start : start + config.batch_size]
            logits = model(Tensor(features[batch]))
            loss = binary_cross_entropy_with_logits(logits, labels[batch])
            if config.l2 > 0:
                loss = loss + l2_penalty(model.parameters(), config.l2)
            optimizer.zero_grad()
            loss.backward()
            if config.gradient_clip:
                clip_grad_norm(model.parameters(), config.gradient_clip)
            optimizer.step()
            losses.append(loss.item())
        result.epoch_losses.append(float(np.mean(losses)))
    return model, result
