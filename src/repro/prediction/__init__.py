"""Supervised e-commerce prediction: CVR head, DIN baseline, experiments."""

from repro.prediction.features import FeatureAssembler
from repro.prediction.cvr_model import (
    CVRModel,
    CVRTrainConfig,
    CVRTrainResult,
    train_cvr_model,
)
from repro.prediction.din import DIN, DINConfig, build_user_histories, train_din
from repro.prediction.hoprec import HopRec, HopRecConfig, HopRecResult
from repro.prediction.ngcf import NGCF, NGCFConfig, NGCFResult, train_ngcf
from repro.prediction.experiment import (
    ALL_METHODS,
    GRAPH_METHODS,
    MethodResult,
    method_representations,
    run_din,
    run_graph_method,
    run_table3,
)

__all__ = [
    "FeatureAssembler",
    "CVRModel",
    "CVRTrainConfig",
    "CVRTrainResult",
    "train_cvr_model",
    "DIN",
    "DINConfig",
    "build_user_histories",
    "train_din",
    "HopRec",
    "HopRecConfig",
    "HopRecResult",
    "NGCF",
    "NGCFConfig",
    "NGCFResult",
    "train_ngcf",
    "ALL_METHODS",
    "GRAPH_METHODS",
    "MethodResult",
    "method_representations",
    "run_din",
    "run_graph_method",
    "run_table3",
]
