"""Feature assembly for the supervised prediction head (Fig. 2).

The CVR network consumes, per (user, item) sample: the hierarchical user
preference z_u^H, the hierarchical item attractiveness z_i^H, the user
profile (gender, purchasing power, ...) and the item statistics (click
count, purchase count, ...).  :class:`FeatureAssembler` holds the four
lookup tables and materialises the concatenated design matrix for any
batch of samples; submodels (HUP-only / HIA-only) simply omit one table.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import EcommerceDataset, LabeledSamples

__all__ = ["FeatureAssembler"]


class FeatureAssembler:
    """Row-wise concatenation of per-user and per-item feature tables.

    Parameters
    ----------
    user_repr, item_repr:
        Graph-derived representations (z^H matrices), or ``None`` to omit
        the block (the paper's HUP-only / HIA-only ablations).
    user_profiles, item_stats:
        The non-graph side features; always included.
    interactions:
        Optional list of ``(user_matrix, item_matrix)`` pairs with equal
        column counts; for each sample the elementwise product
        ``user_matrix[u] * item_matrix[i]`` is appended.  The paper's
        head learns user-item matching from the raw concatenation, which
        works at Taobao's sample counts; at mini-dataset scale the
        multiplicative matching signal must be surfaced explicitly (see
        DESIGN.md, substitution notes).  Typically one pair per HiGNN
        level: ``(Z_u^l, Z_i^l)``.
    standardize:
        Z-score each column of every block using its own table statistics
        (constant columns pass through unscaled).
    """

    def __init__(
        self,
        user_profiles: np.ndarray,
        item_stats: np.ndarray,
        user_repr: np.ndarray | None = None,
        item_repr: np.ndarray | None = None,
        interactions: list[tuple[np.ndarray, np.ndarray]] | None = None,
        standardize: bool = True,
    ) -> None:
        self.user_blocks = [b for b in (user_repr, user_profiles) if b is not None]
        self.item_blocks = [b for b in (item_repr, item_stats) if b is not None]
        if standardize:
            self.user_blocks = [self._standardize(b) for b in self.user_blocks]
            self.item_blocks = [self._standardize(b) for b in self.item_blocks]
        self._user_table = np.concatenate(self.user_blocks, axis=1)
        self._item_table = np.concatenate(self.item_blocks, axis=1)
        self._interactions: list[tuple[np.ndarray, np.ndarray]] = []
        for left, right in interactions or []:
            left = np.asarray(left, dtype=np.float64)
            right = np.asarray(right, dtype=np.float64)
            if left.shape[1] != right.shape[1]:
                raise ValueError(
                    "interaction pair must have equal column counts, got "
                    f"{left.shape[1]} and {right.shape[1]}"
                )
            self._interactions.append((self._normalize(left), self._normalize(right)))

    @classmethod
    def for_dataset(
        cls,
        dataset: EcommerceDataset,
        user_repr: np.ndarray | None = None,
        item_repr: np.ndarray | None = None,
        interactions: list[tuple[np.ndarray, np.ndarray]] | None = None,
        standardize: bool = True,
    ) -> "FeatureAssembler":
        """Build from a dataset's profile/stat tables plus optional z^H."""
        return cls(
            user_profiles=dataset.user_profiles,
            item_stats=dataset.item_stats,
            user_repr=user_repr,
            item_repr=item_repr,
            interactions=interactions,
            standardize=standardize,
        )

    @staticmethod
    def _normalize(block: np.ndarray) -> np.ndarray:
        """Row-wise L2 normalisation (keeps products in a sane range)."""
        norms = np.linalg.norm(block, axis=1, keepdims=True)
        norms[norms < 1e-12] = 1.0
        return block / norms

    @staticmethod
    def _standardize(block: np.ndarray) -> np.ndarray:
        block = np.asarray(block, dtype=np.float64)
        mean = block.mean(axis=0)
        std = block.std(axis=0)
        std[std < 1e-12] = 1.0
        return (block - mean) / std

    @property
    def feature_dim(self) -> int:
        base = self._user_table.shape[1] + self._item_table.shape[1]
        return base + sum(left.shape[1] for left, _ in self._interactions)

    def assemble(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Design matrix rows for aligned (user, item) id arrays."""
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if users.shape != items.shape:
            raise ValueError("users and items must align")
        blocks = [self._user_table[users], self._item_table[items]]
        for left, right in self._interactions:
            blocks.append(left[users] * right[items])
        return np.concatenate(blocks, axis=1)

    def assemble_samples(self, samples: LabeledSamples) -> tuple[np.ndarray, np.ndarray]:
        """(X, y) for a labelled sample set."""
        return self.assemble(samples.users, samples.items), samples.labels.astype(np.float64)
