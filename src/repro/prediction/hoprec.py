"""HOP-Rec baseline (Yang et al., RecSys 2018).

The paper's related-work section (Section II-B) singles out HOP-Rec as
the random-walk approach to graph-based collaborative filtering: it
"performs random walks to enrich the interactions of a user with
multi-hop connected items".  We provide it as an additional comparison
point for the unsupervised stage: matrix-factorisation embeddings
trained with a BPR-style ranking loss whose positives are drawn from
k-hop random walks on the user-item graph, with per-hop decay weights.

It is *not* part of the paper's Table III (the authors compare against
DIN/CGNN/GE and their own submodels), but it slots into the same
``FeatureAssembler`` interface so the experiment harness can evaluate
it alongside the others.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.graph.sampling import NeighborSampler
from repro.utils.logging import get_logger
from repro.utils.rng import derive_rng, ensure_rng

__all__ = ["HopRecConfig", "HopRec", "HopRecResult"]

logger = get_logger("prediction.hoprec")


def _sigmoid(x: np.ndarray | float) -> np.ndarray | float:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


@dataclass
class HopRecConfig:
    """HOP-Rec hyper-parameters.

    ``hop_weights`` follow the paper's 1/k decay: the k-th hop's pairs
    contribute with weight ``hop_weights[k-1]``.
    """

    embedding_dim: int = 32
    num_hops: int = 2
    hop_weights: tuple[float, ...] = (1.0, 0.5)
    walks_per_user: int = 20
    epochs: int = 5
    learning_rate: float = 0.05
    regularization: float = 1e-4
    margin: float = 1.0  # BPR indicator threshold epsilon

    def __post_init__(self) -> None:
        if self.embedding_dim < 1:
            raise ValueError("embedding_dim must be >= 1")
        if self.num_hops < 1:
            raise ValueError("num_hops must be >= 1")
        if len(self.hop_weights) < self.num_hops:
            raise ValueError("need one hop weight per hop")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")


@dataclass
class HopRecResult:
    """Training diagnostics."""

    epoch_losses: list[float] = field(default_factory=list)


class HopRec:
    """Random-walk enriched matrix factorisation on a bipartite graph."""

    def __init__(
        self,
        graph: BipartiteGraph,
        config: HopRecConfig | None = None,
        rng: int | np.random.Generator | None = 0,
    ) -> None:
        self.graph = graph
        self.config = config or HopRecConfig()
        self.rng = ensure_rng(rng)
        d = self.config.embedding_dim
        init_rng = derive_rng(self.rng, 1)
        scale = 1.0 / np.sqrt(d)
        self.user_embeddings = init_rng.normal(scale=scale, size=(graph.num_users, d))
        self.item_embeddings = init_rng.normal(scale=scale, size=(graph.num_items, d))
        self._sampler = NeighborSampler(graph, rng=derive_rng(self.rng, 2), weighted=True)

    # ------------------------------------------------------------------
    def _walk_targets(self, users: np.ndarray) -> list[list[tuple[int, float]]]:
        """k-hop item targets (item, hop_weight) for each user via walks."""
        cfg = self.config
        targets: list[list[tuple[int, float]]] = [[] for _ in users]
        current_users = users.copy()
        for hop in range(cfg.num_hops):
            items = self._sampler.sample_items_for_users(current_users, 1)[:, 0]
            weight = cfg.hop_weights[hop]
            for row, item in enumerate(items):
                if item >= 0:
                    targets[row].append((int(item), weight))
            if hop + 1 < cfg.num_hops:
                next_users = self._sampler.sample_users_for_items(
                    np.maximum(items, 0), 1
                )[:, 0]
                next_users = np.where(items >= 0, next_users, -1)
                current_users = np.maximum(next_users, 0)
        return targets

    def fit(self) -> HopRecResult:
        """Train with BPR updates over walk-derived positive pairs."""
        cfg = self.config
        result = HopRecResult()
        neg_rng = derive_rng(self.rng, 3)
        for epoch in range(cfg.epochs):
            losses = []
            lr = cfg.learning_rate * (1.0 - epoch / max(cfg.epochs, 1) * 0.5)
            for _ in range(cfg.walks_per_user):
                users = np.arange(self.graph.num_users)
                all_targets = self._walk_targets(users)
                for user, pairs in zip(users, all_targets):
                    for item, weight in pairs:
                        negative = int(neg_rng.integers(self.graph.num_items))
                        losses.append(
                            self._bpr_update(int(user), item, negative, weight, lr)
                        )
            result.epoch_losses.append(float(np.mean(losses)) if losses else 0.0)
            logger.info("hoprec epoch %d loss %.4f", epoch, result.epoch_losses[-1])
        return result

    def _bpr_update(
        self, user: int, pos: int, neg: int, weight: float, lr: float
    ) -> float:
        u = self.user_embeddings[user]
        i = self.item_embeddings[pos]
        j = self.item_embeddings[neg]
        diff = float(u @ i - u @ j)
        if diff > self.config.margin:
            return 0.0  # confidently ordered; HOP-Rec skips these
        g = _sigmoid(-diff) * weight  # d/d(diff) of -log sigmoid(diff)
        reg = self.config.regularization
        grad_u = g * (i - j) - reg * u
        grad_i = g * u - reg * i
        grad_j = -g * u - reg * j
        self.user_embeddings[user] += lr * grad_u
        self.item_embeddings[pos] += lr * grad_i
        self.item_embeddings[neg] += lr * grad_j
        return float(-np.log(_sigmoid(diff) + 1e-12)) * weight

    # ------------------------------------------------------------------
    def score(self, user: int, item: int) -> float:
        """Dot-product preference score."""
        return float(self.user_embeddings[user] @ self.item_embeddings[item])

    def representations(self) -> tuple[np.ndarray, np.ndarray]:
        """(user, item) embedding matrices for the FeatureAssembler."""
        return self.user_embeddings.copy(), self.item_embeddings.copy()
