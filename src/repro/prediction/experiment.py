"""End-to-end prediction experiments — the code behind Table III / Fig. 3.

Methods compared (Section IV-B-2):

* ``din``   — graph-free deep-interest baseline (level 0).
* ``ge``    — single-level graph embedding (L = 1).
* ``cgnn``  — two-level *user* hierarchy, flat items ([19]'s design).
* ``hup``   — HiGNN submodel: hierarchical user preference only.
* ``hia``   — HiGNN submodel: hierarchical item attractiveness only.
* ``hignn`` — the full model.

All graph-embedding methods are derived from one fitted HiGNN hierarchy
(GE uses level 1 only, CGNN levels 1–2 on the user side, ...), exactly
the paper's framing of each baseline as "a special case of our proposed
method".  This also keeps the comparison controlled: every method sees
the same underlying unsupervised embeddings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.hierarchy import HierarchicalEmbeddings
from repro.core.hignn import HiGNN
from repro.data.schema import EcommerceDataset, LabeledSamples
from repro.data.sampling import replicate_to_ratio
from repro.metrics.auc import auc
from repro.prediction.cvr_model import CVRTrainConfig, train_cvr_model
from repro.prediction.din import DINConfig, build_user_histories, din_side_features, train_din
from repro.prediction.features import FeatureAssembler
from repro.utils.config import HiGNNConfig
from repro.utils.logging import get_logger
from repro.utils.rng import derive_rng, ensure_rng

__all__ = [
    "MethodResult",
    "GRAPH_METHODS",
    "ALL_METHODS",
    "method_representations",
    "run_graph_method",
    "run_din",
    "run_table3",
]

logger = get_logger("prediction.experiment")

GRAPH_METHODS = ("ge", "cgnn", "hup", "hia", "hignn")
ALL_METHODS = ("cgnn", "din", "ge", "hup", "hia", "hignn")


@dataclass
class MethodResult:
    """Outcome of one method on one dataset."""

    method: str
    dataset: str
    auc: float
    seconds: float
    detail: dict = field(default_factory=dict)


def method_representations(
    hierarchy: HierarchicalEmbeddings, method: str
) -> tuple[
    np.ndarray | None,
    np.ndarray | None,
    list[tuple[np.ndarray, np.ndarray]],
]:
    """(user_repr, item_repr, interaction pairs) for a graph-based method.

    ``hierarchy`` must have been fitted with at least the levels the
    method needs (2 for CGNN, the full L for HiGNN variants).  Interaction
    pairs surface the user-item matching signal per level; the HUP/HIA
    submodels have no cross-side pairs — which is exactly why the full
    model beats them (Section IV-B-3).
    """
    if method == "ge":
        z_u1 = hierarchy.user_level_embeddings(1)
        z_i1 = hierarchy.item_level_embeddings(1)
        return z_u1, z_i1, [(z_u1, z_i1)]
    if method == "cgnn":
        # [19] decomposes *user* information into community + individual
        # spaces; items get no learned representation ("considers user
        # hierarchical embedding without item hierarchical embedding",
        # Section IV-B-3), and the user hierarchy is fixed to 2 levels.
        top = min(2, hierarchy.num_levels)
        return (
            hierarchy.hierarchical_user_embeddings(max_level=top),
            None,
            [],
        )
    if method == "hup":
        return hierarchy.hierarchical_user_embeddings(), None, []
    if method == "hia":
        return None, hierarchy.hierarchical_item_embeddings(), []
    if method == "hignn":
        pairs = [
            (hierarchy.user_level_embeddings(l), hierarchy.item_level_embeddings(l))
            for l in range(1, hierarchy.num_levels + 1)
        ]
        return (
            hierarchy.hierarchical_user_embeddings(),
            hierarchy.hierarchical_item_embeddings(),
            pairs,
        )
    raise ValueError(f"unknown graph method {method!r}; choose from {GRAPH_METHODS}")


def _prepare_train_samples(
    dataset: EcommerceDataset, rng: np.random.Generator
) -> LabeledSamples:
    """Apply the paper's re-balancing policy.

    Taobao #1 uses replicate sampling to 1:3; the cold-start dataset
    keeps its natural imbalance (Section IV-B-1).
    """
    if dataset.metadata.get("cold_start"):
        return dataset.train
    return replicate_to_ratio(dataset.train, negatives_per_positive=3.0, rng=rng)


def run_graph_method(
    method: str,
    dataset: EcommerceDataset,
    hierarchy: HierarchicalEmbeddings,
    cvr_config: CVRTrainConfig | None = None,
    seed: int | np.random.Generator | None = 0,
) -> MethodResult:
    """Train + evaluate one graph-embedding method on a fitted hierarchy."""
    rng = ensure_rng(seed)
    start = time.perf_counter()
    user_repr, item_repr, interactions = method_representations(hierarchy, method)
    assembler = FeatureAssembler.for_dataset(
        dataset, user_repr, item_repr, interactions=interactions
    )
    train_samples = _prepare_train_samples(dataset, derive_rng(rng, 1))
    x_train, y_train = assembler.assemble_samples(train_samples)
    model, fit_info = train_cvr_model(
        x_train, y_train, config=cvr_config, rng=derive_rng(rng, 2)
    )
    x_test, y_test = assembler.assemble_samples(dataset.test)
    scores = model.predict_proba(x_test)
    value = auc(y_test, scores)
    elapsed = time.perf_counter() - start
    logger.info("%s on %s: AUC %.4f (%.1fs)", method, dataset.name, value, elapsed)
    return MethodResult(
        method=method,
        dataset=dataset.name,
        auc=value,
        seconds=elapsed,
        detail={"train_loss": fit_info.final_loss, "train_size": len(train_samples)},
    )


def run_din(
    dataset: EcommerceDataset,
    din_config: DINConfig | None = None,
    cvr_config: CVRTrainConfig | None = None,
    seed: int | np.random.Generator | None = 0,
) -> MethodResult:
    """Train + evaluate the DIN baseline."""
    rng = ensure_rng(seed)
    start = time.perf_counter()
    balanced = _prepare_train_samples(dataset, derive_rng(rng, 1))
    balanced_dataset = EcommerceDataset(
        name=dataset.name,
        graph=dataset.graph,
        train=balanced,
        test=dataset.test,
        user_profiles=dataset.user_profiles,
        item_stats=dataset.item_stats,
        log=dataset.log,
        ground_truth=dataset.ground_truth,
        metadata=dataset.metadata,
    )
    model, histories, fit_info = train_din(
        balanced_dataset, din_config, cvr_config, rng=derive_rng(rng, 2)
    )
    side = din_side_features(dataset, dataset.test.users, dataset.test.items)
    scores = model.predict_proba(
        histories[dataset.test.users], dataset.test.items, side
    )
    value = auc(dataset.test.labels, scores)
    elapsed = time.perf_counter() - start
    logger.info("din on %s: AUC %.4f (%.1fs)", dataset.name, value, elapsed)
    return MethodResult(
        method="din",
        dataset=dataset.name,
        auc=value,
        seconds=elapsed,
        detail={"train_loss": fit_info.final_loss},
    )


def run_table3(
    dataset: EcommerceDataset,
    hignn_config: HiGNNConfig | None = None,
    cvr_config: CVRTrainConfig | None = None,
    methods: tuple[str, ...] = ALL_METHODS,
    seed: int = 0,
) -> dict[str, MethodResult]:
    """All Table III methods on one dataset, sharing one hierarchy fit."""
    rng = ensure_rng(seed)
    results: dict[str, MethodResult] = {}
    graph_methods = [m for m in methods if m in GRAPH_METHODS]
    if graph_methods:
        hignn = HiGNN(hignn_config, seed=derive_rng(rng, 1))
        hierarchy = hignn.fit(dataset.graph)
        for method in graph_methods:
            results[method] = run_graph_method(
                method, dataset, hierarchy, cvr_config, seed=derive_rng(rng, 2)
            )
    if "din" in methods:
        results["din"] = run_din(dataset, cvr_config=cvr_config, seed=derive_rng(rng, 3))
    return results
