"""NGCF — Neural Graph Collaborative Filtering (Wang et al., SIGIR 2019).

The paper's introduction builds directly on NGCF ([18]): "a neural graph
collaborative filtering method to explicitly integrate the user-item
interactions into the embedding process", and Section II-B criticises
this family for depending on full-matrix operations "which makes it less
scalable on large-scale graphs".  We implement it as an additional
unsupervised comparator so that criticism is testable: NGCF propagates
over the *full normalised adjacency* each forward pass (dense here,
faithful to the matrix formulation), while HiGNN's sampled aggregation
touches only K1*K2 neighbours per vertex.

Propagation rule per layer (Eqs. 7-8 of the NGCF paper, simplified to
the symmetric-normalised form):

    E^(l+1) = LeakyReLU( (L + I) E^l W1 + (L E^l) * E^l W2 )

with L = D^-1/2 A D^-1/2 over the bipartite adjacency, * elementwise.
Training uses BPR over observed edges vs sampled negative items.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.nn.layers import Linear, Module, Parameter
from repro.nn.optim import build_optimizer
from repro.nn.tensor import Tensor, concat, no_grad
from repro.utils.logging import get_logger
from repro.utils.rng import derive_rng, ensure_rng

__all__ = ["NGCFConfig", "NGCF", "NGCFResult", "train_ngcf"]

logger = get_logger("prediction.ngcf")


@dataclass
class NGCFConfig:
    """NGCF hyper-parameters (scaled to mini graphs)."""

    embedding_dim: int = 32
    num_layers: int = 2
    epochs: int = 10
    batch_size: int = 512
    learning_rate: float = 1e-2
    l2: float = 1e-4
    max_dense_vertices: int = 20_000  # guardrail for the dense adjacency

    def __post_init__(self) -> None:
        if self.embedding_dim < 1:
            raise ValueError("embedding_dim must be >= 1")
        if self.num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")


@dataclass
class NGCFResult:
    """Training diagnostics."""

    epoch_losses: list[float] = field(default_factory=list)


class NGCF(Module):
    """Dense-propagation NGCF over one bipartite graph.

    The final representation of a vertex is the concatenation of its
    embeddings at every propagation depth (as in the NGCF paper), so the
    output dimension is ``embedding_dim * (num_layers + 1)``.
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        config: NGCFConfig | None = None,
        rng: int | np.random.Generator | None = 0,
    ) -> None:
        super().__init__()
        self.config = config or NGCFConfig()
        cfg = self.config
        total = graph.num_users + graph.num_items
        if total > cfg.max_dense_vertices:
            raise ValueError(
                f"graph has {total} vertices; dense NGCF is capped at "
                f"{cfg.max_dense_vertices} (the scalability criticism the "
                "paper makes of this method family)"
            )
        rng = ensure_rng(rng)
        self.graph = graph
        self.num_users = graph.num_users
        self.num_items = graph.num_items
        d = cfg.embedding_dim
        init = derive_rng(rng, 1)
        self.embeddings = Parameter(
            init.normal(scale=0.1, size=(total, d)), name="ego_embeddings"
        )
        self.w1 = [Linear(d, d, rng=derive_rng(rng, 10 + l)) for l in range(cfg.num_layers)]
        self.w2 = [Linear(d, d, rng=derive_rng(rng, 20 + l)) for l in range(cfg.num_layers)]
        self._laplacian = self._build_laplacian(graph)

    @staticmethod
    def _build_laplacian(graph: BipartiteGraph) -> np.ndarray:
        """Symmetric-normalised adjacency over the joint vertex set."""
        n_u, n_i = graph.num_users, graph.num_items
        total = n_u + n_i
        adj = np.zeros((total, total))
        users = graph.edges[:, 0]
        items = graph.edges[:, 1] + n_u
        adj[users, items] = graph.edge_weights
        adj[items, users] = graph.edge_weights
        degrees = adj.sum(axis=1)
        inv_sqrt = np.where(degrees > 0, 1.0 / np.sqrt(np.maximum(degrees, 1e-12)), 0.0)
        return adj * inv_sqrt[:, None] * inv_sqrt[None, :]

    def propagate(self) -> Tensor:
        """All-layer concatenated representations, shape (U+I, d*(L+1))."""
        ego = self.embeddings
        layers = [ego]
        lap = self._laplacian
        for w1, w2 in zip(self.w1, self.w2):
            side = Tensor(lap) @ layers[-1]  # L E^l (dense matmul)
            message = w1(side + layers[-1]) + w2(side * layers[-1])
            layers.append(message.leaky_relu(0.2))
        return concat(layers, axis=-1)

    def user_item_representations(self) -> tuple[np.ndarray, np.ndarray]:
        """Inference-mode (user, item) matrices for the FeatureAssembler."""
        self.eval()
        with no_grad():
            rep = self.propagate().data
        self.train()
        return rep[: self.num_users].copy(), rep[self.num_users :].copy()

    def score_pairs(self, rep: Tensor, users: np.ndarray, items: np.ndarray) -> Tensor:
        """Dot-product scores for aligned id arrays on a propagated rep."""
        z_u = rep.gather_rows(np.asarray(users))
        z_i = rep.gather_rows(np.asarray(items) + self.num_users)
        return (z_u * z_i).sum(axis=-1)


def train_ngcf(
    graph: BipartiteGraph,
    config: NGCFConfig | None = None,
    rng: int | np.random.Generator | None = 0,
) -> tuple[NGCF, NGCFResult]:
    """Fit NGCF with BPR over the graph's observed edges."""
    config = config or NGCFConfig()
    rng = ensure_rng(rng)
    model = NGCF(graph, config, rng=derive_rng(rng, 1))
    optimizer = build_optimizer("adam", model.parameters(), config.learning_rate)
    result = NGCFResult()
    data_rng = derive_rng(rng, 2)
    edges = graph.edges
    for epoch in range(config.epochs):
        order = data_rng.permutation(len(edges))
        losses = []
        for start in range(0, len(order), config.batch_size):
            batch = order[start : start + config.batch_size]
            users = edges[batch, 0]
            pos_items = edges[batch, 1]
            neg_items = data_rng.integers(0, graph.num_items, size=len(batch))
            rep = model.propagate()
            pos_scores = model.score_pairs(rep, users, pos_items)
            neg_scores = model.score_pairs(rep, users, neg_items)
            # BPR: -log sigmoid(pos - neg), numerically via softplus.
            diff = pos_scores - neg_scores
            loss = ((-diff).relu() + (1.0 + (-(diff.abs())).exp()).log()).mean()
            if config.l2 > 0:
                reg = (model.embeddings * model.embeddings).sum() * (
                    config.l2 / max(len(batch), 1)
                )
                loss = loss + reg
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        result.epoch_losses.append(float(np.mean(losses)))
        logger.info("ngcf epoch %d loss %.4f", epoch, result.epoch_losses[-1])
    return model, result
