"""Taxonomy quality metrics (Section V-D-1).

The paper's accuracy protocol samples 100 topics and 100 items per
topic and has domain experts judge whether each item belongs; here the
generator's ground-truth topic tree plays the expert.  ``diversity``
follows the paper's definition verbatim: a *qualified topic* covers more
than two distinct (ground-truth) categories, and diversity is the share
of qualified topics.
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic_text import QueryItemDataset
from repro.taxonomy.builder import Taxonomy, Topic
from repro.utils.rng import ensure_rng

__all__ = [
    "topic_accuracy",
    "taxonomy_accuracy",
    "taxonomy_diversity",
    "evaluate_taxonomy",
]


def topic_accuracy(
    topic: Topic,
    item_labels: np.ndarray,
    max_items: int = 100,
    rng: int | np.random.Generator | None = None,
) -> float:
    """Share of (sampled) member items agreeing with the topic's majority label."""
    rng = ensure_rng(rng)
    items = topic.items
    if len(items) == 0:
        return 0.0
    if len(items) > max_items:
        items = rng.choice(items, size=max_items, replace=False)
    labels = item_labels[items]
    counts = np.bincount(labels)
    return float(counts.max() / len(labels))


def taxonomy_accuracy(
    taxonomy: Taxonomy,
    dataset: QueryItemDataset,
    level: int = 1,
    max_topics: int = 100,
    max_items: int = 100,
    weight_by_size: bool = True,
    rng: int | np.random.Generator | None = 0,
) -> float:
    """Mean topic accuracy at ``level`` against ground-truth leaf topics.

    Mirrors the paper's expert protocol (sample up to ``max_topics``
    topics and up to ``max_items`` items per topic) with one guard:
    by default topics are *weighted by size* when averaging, i.e. the
    score is item-level purity.  The unweighted protocol rewards
    degenerate singleton topics with perfect scores — a failure mode the
    paper's human review implicitly filtered out and an oracle does not.
    Pass ``weight_by_size=False`` for the literal protocol.
    """
    rng = ensure_rng(rng)
    topics = [t for t in taxonomy.at_level(level) if t.size > 0]
    if not topics:
        return 0.0
    if len(topics) > max_topics:
        weights = np.array([t.size for t in topics], dtype=float)
        weights /= weights.sum()
        chosen = rng.choice(len(topics), size=max_topics, replace=False, p=weights)
        topics = [topics[i] for i in chosen]
    # Dense ground-truth leaf labels.
    leaf_index = {int(l): i for i, l in enumerate(dataset.tree.leaves)}
    item_labels = np.array([leaf_index[int(l)] for l in dataset.item_leaf])
    scores = np.array(
        [topic_accuracy(t, item_labels, max_items=max_items, rng=rng) for t in topics]
    )
    if weight_by_size:
        sizes = np.array([min(t.size, max_items) for t in topics], dtype=float)
        return float(np.average(scores, weights=sizes))
    return float(scores.mean())


def taxonomy_diversity(
    taxonomy: Taxonomy,
    dataset: QueryItemDataset,
    min_categories: int = 3,
    levels: tuple[int, ...] | None = None,
) -> float:
    """Share of qualified topics ("cover more than two different categories").

    Categories are the generator's ground-truth leaf topics (the analogue
    of the platform's ontology categories).  By default all levels above
    the finest participate — the finest level legitimately aims at
    single-category purity, while higher levels demonstrate "hierarchical
    separating capacity".
    """
    if levels is None:
        levels = tuple(range(2, taxonomy.num_levels + 1)) or (1,)
    leaf_index = {int(l): i for i, l in enumerate(dataset.tree.leaves)}
    item_labels = np.array([leaf_index[int(l)] for l in dataset.item_leaf])
    topics: list[Topic] = []
    for level in levels:
        topics.extend(t for t in taxonomy.at_level(level) if t.size > 0)
    if not topics:
        return 0.0
    qualified = sum(
        1
        for t in topics
        if len(np.unique(item_labels[t.items])) >= min_categories
    )
    return qualified / len(topics)


def evaluate_taxonomy(
    taxonomy: Taxonomy,
    dataset: QueryItemDataset,
    rng: int | np.random.Generator | None = 0,
) -> dict[str, float]:
    """The Table VII row: #levels, accuracy, diversity."""
    return {
        "levels": float(taxonomy.num_levels),
        "accuracy": taxonomy_accuracy(taxonomy, dataset, rng=rng),
        "diversity": taxonomy_diversity(taxonomy, dataset),
    }
