"""Topic description matching (Section V-C-2, Eqs. 14–16).

The most representative query becomes a topic's description.  For query
``q`` and topic ``t_k``:

* popularity  pop(q, t_k) = log(tf(q, I_k) + 1) / log(tf(I_k))  (Eq. 15)
* concentration con(q, t_k) = exp(rel(q, D_k)) / (1 + sum_j exp(rel(q, D_j)))
  with ``rel`` the BM25 relevance of the query against the concatenated
  member titles D_k (Eq. 16)
* representativeness r(q, t_k) = sqrt(pop * con)  (Eq. 14)
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

from repro.data.synthetic_text import QueryItemDataset
from repro.taxonomy.builder import Taxonomy, Topic
from repro.text.bm25 import BM25

__all__ = ["TopicDescriber", "describe_taxonomy"]


class TopicDescriber:
    """Scores and assigns query descriptions for a set of topics.

    All topics passed to :meth:`describe` compete in the concentration
    denominator, so a query that matches everywhere is penalised.
    """

    def __init__(self, dataset: QueryItemDataset, topics: list[Topic]) -> None:
        if not topics:
            raise ValueError("need at least one topic")
        self.dataset = dataset
        self.topics = topics
        self._topic_docs = [self._concat_titles(t) for t in topics]
        self._bm25 = BM25(self._topic_docs)
        self._topic_token_counts = [Counter(doc) for doc in self._topic_docs]
        self._topic_token_totals = [max(len(doc), 1) for doc in self._topic_docs]

    def _concat_titles(self, topic: Topic) -> list[str]:
        doc: list[str] = []
        for item in topic.items:
            doc.extend(self.dataset.item_titles[int(item)])
        return doc

    # -- Eq. 15 ---------------------------------------------------------
    def popularity(self, query: int, topic_index: int) -> float:
        """log(tf(q, I_k) + 1) / log(tf(I_k))."""
        tokens = self.dataset.query_texts[int(query)]
        counts = self._topic_token_counts[topic_index]
        tf_q = sum(counts.get(tok, 0) for tok in tokens)
        tf_total = self._topic_token_totals[topic_index]
        if tf_total <= 1:
            return 0.0
        return math.log(tf_q + 1.0) / math.log(tf_total)

    # -- Eq. 16 ---------------------------------------------------------
    def concentration(self, query: int, topic_index: int) -> float:
        """exp(rel(q, D_k)) / (1 + sum_j exp(rel(q, D_j)))."""
        tokens = self.dataset.query_texts[int(query)]
        rels = np.array(self._bm25.scores(tokens))
        rels = rels - rels.max()  # stabilise the softmax-like ratio
        exps = np.exp(rels)
        return float(exps[topic_index] / (1.0 + exps.sum()))

    # -- Eq. 14 ---------------------------------------------------------
    def representativeness(self, query: int, topic_index: int) -> float:
        """sqrt(pop * con)."""
        pop = self.popularity(query, topic_index)
        con = self.concentration(query, topic_index)
        return math.sqrt(max(pop, 0.0) * max(con, 0.0))

    def best_query(self, topic_index: int) -> tuple[int | None, float]:
        """The member query maximising representativeness for the topic."""
        topic = self.topics[topic_index]
        best_q: int | None = None
        best_r = -1.0
        for query in topic.queries:
            r = self.representativeness(int(query), topic_index)
            if r > best_r:
                best_r = r
                best_q = int(query)
        return best_q, best_r

    def describe(self) -> None:
        """Assign each topic its best query's text as description."""
        for index, topic in enumerate(self.topics):
            query, _ = self.best_query(index)
            if query is None:
                topic.description = topic.topic_id
            else:
                topic.description = " ".join(self.dataset.query_texts[query])


def describe_taxonomy(taxonomy: Taxonomy, dataset: QueryItemDataset) -> None:
    """Assign descriptions level by level (topics compete within a level)."""
    for level in range(1, taxonomy.num_levels + 1):
        topics = taxonomy.at_level(level)
        if topics:
            TopicDescriber(dataset, topics).describe()
