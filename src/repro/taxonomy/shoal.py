"""SHOAL baseline (Li et al., VLDB 2019) — the paper's deployed comparator.

Per the paper's characterisation (Sections II-C and V-D): SHOAL builds a
hierarchical taxonomy from the query–item graph but "only uses a
well-defined metric to calculate the query-item embeddings" and performs
"parallel hierarchical agglomerative clustering" — no trainable GNN.

We implement exactly that: fixed word2vec document vectors (optionally
smoothed once over the click graph — the "well-defined metric"), cut by
agglomerative clustering at the same per-level cluster counts HiGNN
uses, so the comparison isolates the value of trained non-linear
embeddings (Table VII's question).
"""

from __future__ import annotations

import numpy as np

from repro.clustering.agglomerative import agglomerative_cluster
from repro.data.synthetic_text import QueryItemDataset
from repro.taxonomy.builder import Taxonomy, Topic, _queries_of_items
from repro.taxonomy.pipeline import embed_texts
from repro.utils.rng import ensure_rng

__all__ = ["build_shoal_taxonomy"]


def build_shoal_taxonomy(
    dataset: QueryItemDataset,
    cluster_counts: list[int],
    linkage: str = "average",
    graph_smoothing: bool = True,
    rng: int | np.random.Generator | None = 0,
) -> Taxonomy:
    """Agglomerative taxonomy over fixed metric embeddings.

    ``cluster_counts`` gives the item-cluster count per level, finest
    first (use the same counts as the HiGNN taxonomy for a fair
    comparison, as the paper does: "we set SHOAL's number of clusters as
    same as HiGNN's").
    """
    if not cluster_counts:
        raise ValueError("cluster_counts must be non-empty")
    if any(c < 1 for c in cluster_counts):
        raise ValueError("cluster counts must be positive")
    rng = ensure_rng(rng)
    _, item_vecs, _ = embed_texts(dataset, rng=rng)
    if graph_smoothing:
        item_vecs = _smooth_over_graph(dataset, item_vecs)

    taxonomy = Taxonomy(num_levels=len(cluster_counts))
    graph = dataset.graph
    level_labels: list[np.ndarray] = []
    for level, k in enumerate(cluster_counts, start=1):
        labels = agglomerative_cluster(item_vecs, k, method=linkage)
        level_labels.append(labels)
        for cluster in np.unique(labels):
            items = np.flatnonzero(labels == cluster)
            topic = Topic(
                topic_id=f"L{level}C{int(cluster)}",
                level=level,
                cluster=int(cluster),
                items=items,
                queries=_queries_of_items(graph, items),
            )
            taxonomy.topics[topic.topic_id] = topic

    # Parent links: majority vote of members' next-level cluster.  With
    # single-linkage-style nesting these are exact; with non-nested cuts
    # the majority keeps the tree consistent.
    for level in range(1, len(cluster_counts)):
        fine = level_labels[level - 1]
        coarse = level_labels[level]
        for topic in taxonomy.at_level(level):
            votes = coarse[topic.items]
            parent_cluster = int(np.bincount(votes).argmax())
            parent_id = f"L{level + 1}C{parent_cluster}"
            if parent_id in taxonomy.topics:
                topic.parent = parent_id
                taxonomy.topics[parent_id].children.append(topic.topic_id)
    return taxonomy


def _smooth_over_graph(dataset: QueryItemDataset, item_vecs: np.ndarray) -> np.ndarray:
    """One weighted-average pass of query vectors into item vectors.

    This is SHOAL's 'metric' step: items inherit part of the textual
    signal of the queries that click into them, with no learning.
    """
    graph = dataset.graph
    query_vecs = np.zeros((graph.num_users, item_vecs.shape[1]))
    # First, queries as the mean of their own text vector is unavailable
    # here; approximate by averaging member item vectors.
    for q in range(graph.num_users):
        neigh = graph.item_neighbors(q)
        if len(neigh):
            weights = graph.item_neighbor_weights(q)
            query_vecs[q] = np.average(item_vecs[neigh], axis=0, weights=weights)
    smoothed = item_vecs.copy()
    for i in range(graph.num_items):
        neigh = graph.user_neighbors(i)
        if len(neigh):
            weights = graph.user_neighbor_weights(i)
            smoothed[i] = 0.5 * item_vecs[i] + 0.5 * np.average(
                query_vecs[neigh], axis=0, weights=weights
            )
    return smoothed
