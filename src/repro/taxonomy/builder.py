"""Topic-driven taxonomy construction (Section V-C-1).

A fitted query–item hierarchy induces a topic tree: level-1 item
clusters are the finest topics, level-2 clusters group them, and so on
up to the root.  Each topic records its member items (base ids) and the
queries attached to those items, ready for description matching.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.hierarchy import HierarchicalEmbeddings
from repro.data.synthetic_text import QueryItemDataset

__all__ = ["Topic", "Taxonomy", "build_taxonomy"]


@dataclass
class Topic:
    """One node of the discovered taxonomy.

    ``level`` counts from 1 (finest clusters) to L (coarsest); the
    implicit root above level L is not materialised.
    """

    topic_id: str
    level: int
    cluster: int
    items: np.ndarray  # base item ids
    queries: np.ndarray  # base query ids attached to those items
    parent: str | None = None
    children: list[str] = field(default_factory=list)
    description: str = ""

    @property
    def size(self) -> int:
        return len(self.items)


@dataclass
class Taxonomy:
    """The discovered topic tree, indexed by topic id."""

    topics: dict[str, Topic] = field(default_factory=dict)
    num_levels: int = 0

    def at_level(self, level: int) -> list[Topic]:
        """All topics at ``level`` (1 = finest)."""
        return [t for t in self.topics.values() if t.level == level]

    def roots(self) -> list[Topic]:
        """Topics at the coarsest level."""
        return self.at_level(self.num_levels)

    def children_of(self, topic_id: str) -> list[Topic]:
        return [self.topics[c] for c in self.topics[topic_id].children]

    def __len__(self) -> int:
        return len(self.topics)

    def render(self, max_children: int = 5, max_depth: int | None = None) -> str:
        """ASCII rendering of the tree (the Fig. 5 reproduction)."""
        lines: list[str] = []
        for root in sorted(self.roots(), key=lambda t: -t.size):
            self._render_node(root, lines, indent=0, max_children=max_children,
                              max_depth=max_depth)
        return "\n".join(lines)

    def _render_node(
        self,
        topic: Topic,
        lines: list[str],
        indent: int,
        max_children: int,
        max_depth: int | None,
    ) -> None:
        label = topic.description or topic.topic_id
        lines.append(f"{'  ' * indent}- {label} ({topic.size} items)")
        if max_depth is not None and indent + 1 >= max_depth:
            return
        children = sorted(self.children_of(topic.topic_id), key=lambda t: -t.size)
        for child in children[:max_children]:
            self._render_node(child, lines, indent + 1, max_children, max_depth)


def build_taxonomy(
    hierarchy: HierarchicalEmbeddings,
    dataset: QueryItemDataset,
    min_topic_size: int = 1,
) -> Taxonomy:
    """Materialise the topic tree from a fitted hierarchy.

    Level ``l`` topics are the item clusters of hierarchy level ``l``
    (i.e. the item vertices of G^l), with parent links following the
    next K-means assignment.  Topics smaller than ``min_topic_size``
    items are dropped (and their parents lose those members).
    """
    if hierarchy.num_levels < 1:
        raise ValueError("hierarchy has no levels")
    taxonomy = Taxonomy(num_levels=hierarchy.num_levels)
    graph = dataset.graph

    # Base item -> cluster id per level (composed assignments).
    memberships: list[np.ndarray] = []
    for level in range(1, hierarchy.num_levels + 1):
        if level < hierarchy.num_levels:
            membership = hierarchy.item_membership(level + 1)
        else:
            membership = hierarchy.levels[-1].item_assignment[
                hierarchy.item_membership(hierarchy.num_levels)
            ]
        memberships.append(membership)

    for level, membership in enumerate(memberships, start=1):
        for cluster in np.unique(membership):
            items = np.flatnonzero(membership == cluster)
            if len(items) < min_topic_size:
                continue
            queries = _queries_of_items(graph, items)
            topic = Topic(
                topic_id=f"L{level}C{int(cluster)}",
                level=level,
                cluster=int(cluster),
                items=items,
                queries=queries,
            )
            taxonomy.topics[topic.topic_id] = topic

    # Parent links: a level-l topic's parent is the level-(l+1) cluster
    # of (any of) its members — assignments are consistent by build.
    for level in range(1, hierarchy.num_levels):
        child_membership = memberships[level - 1]
        parent_membership = memberships[level]
        for topic in taxonomy.at_level(level):
            parent_cluster = int(parent_membership[topic.items[0]])
            parent_id = f"L{level + 1}C{parent_cluster}"
            if parent_id in taxonomy.topics:
                topic.parent = parent_id
                taxonomy.topics[parent_id].children.append(topic.topic_id)
    return taxonomy


def _queries_of_items(graph, items: np.ndarray) -> np.ndarray:
    """Unique query ids adjacent to any of ``items``."""
    queries: set[int] = set()
    for item in items:
        queries.update(int(q) for q in graph.user_neighbors(int(item)))
    return np.array(sorted(queries), dtype=np.int64)
