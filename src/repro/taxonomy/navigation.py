"""Browsing navigation over a topic-driven taxonomy.

The paper motivates taxonomy construction with "personalized browsing
navigation" (Sections I and V): given a search query, land the user on
the best-matching topic and expose its path to the root plus sibling
topics to explore.  This module implements that lookup with BM25 over
topic member titles, the same relevance the description matcher uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthetic_text import QueryItemDataset
from repro.taxonomy.builder import Taxonomy, Topic
from repro.text.bm25 import BM25
from repro.text.tokenize import tokenize

__all__ = ["NavigationResult", "TaxonomyNavigator"]


@dataclass(frozen=True)
class NavigationResult:
    """Where a query landed in the taxonomy."""

    topic_id: str
    score: float
    path: list[str]  # topic ids from the landing topic up to its root
    siblings: list[str]  # other children of the landing topic's parent
    items: np.ndarray  # member items of the landing topic


class TaxonomyNavigator:
    """Route free-text queries into taxonomy topics.

    Parameters
    ----------
    taxonomy:
        A built (and ideally described) taxonomy.
    dataset:
        The query-item dataset providing member item titles.
    level:
        The level whose topics are landing candidates (1 = finest).
    """

    def __init__(
        self,
        taxonomy: Taxonomy,
        dataset: QueryItemDataset,
        level: int = 1,
    ) -> None:
        self.taxonomy = taxonomy
        self.dataset = dataset
        self.level = level
        self._topics: list[Topic] = [
            t for t in taxonomy.at_level(level) if t.size > 0
        ]
        if not self._topics:
            raise ValueError(f"taxonomy has no non-empty topics at level {level}")
        docs = []
        for topic in self._topics:
            doc: list[str] = []
            for item in topic.items:
                doc.extend(dataset.item_titles[int(item)])
            docs.append(doc)
        self._bm25 = BM25(docs)

    def route(self, query: str, topn: int = 1) -> list[NavigationResult]:
        """Best ``topn`` landing topics for a raw query string."""
        tokens = tokenize(query)
        if not tokens:
            raise ValueError("query produced no tokens")
        ranked = self._bm25.top_documents(tokens, topn=topn)
        return [self._to_result(index, score) for index, score in ranked]

    def _to_result(self, index: int, score: float) -> NavigationResult:
        topic = self._topics[index]
        path = [topic.topic_id]
        cursor = topic
        while cursor.parent is not None:
            path.append(cursor.parent)
            cursor = self.taxonomy.topics[cursor.parent]
        siblings: list[str] = []
        if topic.parent is not None:
            siblings = [
                child
                for child in self.taxonomy.topics[topic.parent].children
                if child != topic.topic_id
            ]
        return NavigationResult(
            topic_id=topic.topic_id,
            score=score,
            path=path,
            siblings=siblings,
            items=topic.items,
        )

    def breadcrumbs(self, query: str) -> list[str]:
        """Human-readable root->leaf descriptions for the top route."""
        result = self.route(query, topn=1)[0]
        names = []
        for topic_id in reversed(result.path):
            topic = self.taxonomy.topics[topic_id]
            names.append(topic.description or topic.topic_id)
        return names
