"""Topic-driven taxonomy construction (Section V)."""

from repro.taxonomy.pipeline import (
    TaxonomyPipelineConfig,
    embed_texts,
    fit_query_item_hignn,
)
from repro.taxonomy.builder import Taxonomy, Topic, build_taxonomy
from repro.taxonomy.describe import TopicDescriber, describe_taxonomy
from repro.taxonomy.shoal import build_shoal_taxonomy
from repro.taxonomy.navigation import NavigationResult, TaxonomyNavigator
from repro.taxonomy.metrics import (
    evaluate_taxonomy,
    taxonomy_accuracy,
    taxonomy_diversity,
    topic_accuracy,
)

__all__ = [
    "TaxonomyPipelineConfig",
    "embed_texts",
    "fit_query_item_hignn",
    "Taxonomy",
    "Topic",
    "build_taxonomy",
    "TopicDescriber",
    "describe_taxonomy",
    "build_shoal_taxonomy",
    "evaluate_taxonomy",
    "taxonomy_accuracy",
    "taxonomy_diversity",
    "topic_accuracy",
    "NavigationResult",
    "TaxonomyNavigator",
]
