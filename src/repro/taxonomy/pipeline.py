"""HiGNN on query–item graphs (Section V-B).

Differences from the prediction pipeline: query and item features come
from one word2vec space (so the GNN runs with shared transformation and
weight matrices, Eqs. 8–11), and per-level cluster counts are selected
by maximising the Calinski–Harabasz index (Eq. 13) instead of a fixed
decay schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hierarchy import HierarchicalEmbeddings
from repro.core.hignn import HiGNN
from repro.data.synthetic_text import QueryItemDataset
from repro.text.word2vec import Word2Vec
from repro.text.vocab import Vocabulary
from repro.utils.config import HiGNNConfig, KMeansConfig, SageConfig, TrainConfig
from repro.utils.rng import derive_rng, ensure_rng

__all__ = ["TaxonomyPipelineConfig", "embed_texts", "fit_query_item_hignn"]


@dataclass
class TaxonomyPipelineConfig:
    """End-to-end settings for the unsupervised taxonomy pipeline.

    The paper sets L=4 "according to the observation of natural ontology
    level of items" and embedding dim 32 (Section V-D-2).
    """

    levels: int = 4
    embedding_dim: int = 32
    word2vec_dim: int = 32
    word2vec_epochs: int = 6
    word2vec_window: int = 3
    sage_epochs: int = 35
    batch_size: int = 256
    learning_rate: float = 1e-2
    auto_k: bool = True
    auto_k_candidates: tuple[int, ...] = ()
    cluster_decay: float = 4.0


def embed_texts(
    dataset: QueryItemDataset,
    dim: int = 32,
    epochs: int = 3,
    window: int = 3,
    rng: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, Word2Vec]:
    """word2vec features for queries and items in one shared space.

    The model trains on the union of query texts and item titles, so
    both vocabularies land in the same latent space (Section V-B's
    precondition for sharing GNN weights).
    """
    rng = ensure_rng(rng)
    corpus = dataset.query_texts + dataset.item_titles
    vocab = Vocabulary(corpus, min_count=1)
    model = Word2Vec(vocab, dim=dim, window=window, rng=rng)
    model.train(corpus, epochs=epochs)
    query_vecs = np.stack([model.document_vector(t) for t in dataset.query_texts])
    item_vecs = np.stack([model.document_vector(t) for t in dataset.item_titles])
    # Remove the common corpus direction (stop-word mass) and normalise
    # scale: downstream similarity losses need centred geometry, not a
    # shared offset all documents carry.
    center = np.concatenate([query_vecs, item_vecs]).mean(axis=0)
    query_vecs = query_vecs - center
    item_vecs = item_vecs - center
    scale = np.sqrt(
        max(np.mean(np.sum(np.concatenate([query_vecs, item_vecs]) ** 2, axis=1)), 1e-12)
    )
    return query_vecs / scale, item_vecs / scale, model


def fit_query_item_hignn(
    dataset: QueryItemDataset,
    config: TaxonomyPipelineConfig | None = None,
    rng: int | np.random.Generator | None = 0,
) -> tuple[HierarchicalEmbeddings, Word2Vec]:
    """Run the full Section V pipeline: word2vec -> shared-space HiGNN.

    Returns the fitted hierarchy over (queries, items) plus the word2vec
    model (used later for description matching).
    """
    config = config or TaxonomyPipelineConfig()
    rng = ensure_rng(rng)
    query_vecs, item_vecs, w2v = embed_texts(
        dataset,
        dim=config.word2vec_dim,
        epochs=config.word2vec_epochs,
        window=config.word2vec_window,
        rng=derive_rng(rng, 1),
    )
    graph = dataset.graph.with_features(query_vecs, item_vecs)

    # With an empty candidate set, HiGNN derives per-level CH candidates
    # from each level's own vertex count (see HiGNN._cluster).
    candidates = config.auto_k_candidates
    hignn_config = HiGNNConfig(
        levels=config.levels,
        cluster_decay=config.cluster_decay,
        initial_user_clusters=1.0 / config.cluster_decay,
        initial_item_clusters=1.0 / config.cluster_decay,
        sage=SageConfig(
            embedding_dim=config.embedding_dim,
            shared_space=True,
            negative_samples_user=8,
            negative_samples_item=8,
        ),
        kmeans=KMeansConfig(
            auto_k=config.auto_k,
            auto_k_candidates=candidates,
        ),
        train=TrainConfig(
            epochs=config.sage_epochs,
            batch_size=config.batch_size,
            learning_rate=config.learning_rate,
        ),
    )
    model = HiGNN(hignn_config, seed=derive_rng(rng, 2))
    hierarchy = model.fit(graph)
    return hierarchy, w2v
