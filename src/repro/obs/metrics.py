"""Runtime metrics registry: counters, gauges and histograms.

Counters accumulate monotonically (``vertices_embedded``,
``samples_drawn``), gauges hold the last written value, and histograms
keep streaming summary statistics (count/sum/min/max) — enough for
throughput and distribution reporting without storing every sample.

Like :mod:`repro.obs.trace`, call sites go through module-level helpers
(:func:`counter_add`, :func:`gauge_set`, :func:`observe`) that check a
module-global registry; with none installed each call is one global
read and a ``None`` test, cheap enough to leave in hot loops.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "MetricsRegistry",
    "counter_add",
    "gauge_set",
    "observe",
    "current_registry",
    "install_registry",
    "uninstall_registry",
    "metrics_enabled",
]


class MetricsRegistry:
    """Named counters, gauges and streaming histograms."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        # name -> [count, sum, min, max]
        self.histograms: dict[str, list[float]] = {}

    def counter_add(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge_set(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        stats = self.histograms.get(name)
        if stats is None:
            self.histograms[name] = [1.0, float(value), float(value), float(value)]
        else:
            stats[0] += 1.0
            stats[1] += value
            if value < stats[2]:
                stats[2] = float(value)
            if value > stats[3]:
                stats[3] = float(value)

    def counter(self, name: str) -> float:
        """Current counter value (0 if never incremented)."""
        return self.counters.get(name, 0.0)

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram statistics accumulate; gauges take the
        merged snapshot's value (last merge wins, matching the
        last-write-wins semantics of :meth:`gauge_set`).  Used to
        propagate metrics recorded inside worker processes back into the
        parent registry when a parallel map joins.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter_add(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge_set(name, value)
        for name, hist in snapshot.get("histograms", {}).items():
            stats = self.histograms.get(name)
            if stats is None:
                self.histograms[name] = [
                    float(hist["count"]),
                    float(hist["sum"]),
                    float(hist["min"]),
                    float(hist["max"]),
                ]
            else:
                stats[0] += hist["count"]
                stats[1] += hist["sum"]
                stats[2] = min(stats[2], hist["min"])
                stats[3] = max(stats[3], hist["max"])

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready dump of every metric."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                name: {
                    "count": int(stats[0]),
                    "sum": stats[1],
                    "min": stats[2],
                    "max": stats[3],
                    "mean": stats[1] / stats[0] if stats[0] else 0.0,
                }
                for name, stats in sorted(self.histograms.items())
            },
        }


# ---------------------------------------------------------------------------
# Module-level fast path
# ---------------------------------------------------------------------------
_REGISTRY: MetricsRegistry | None = None


def counter_add(name: str, value: float = 1.0) -> None:
    """Increment counter ``name`` on the active registry (no-op if none)."""
    registry = _REGISTRY
    if registry is not None:
        registry.counter_add(name, value)


def gauge_set(name: str, value: float) -> None:
    """Set gauge ``name`` on the active registry (no-op if none)."""
    registry = _REGISTRY
    if registry is not None:
        registry.gauge_set(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram sample on the active registry (no-op if none)."""
    registry = _REGISTRY
    if registry is not None:
        registry.observe(name, value)


def current_registry() -> MetricsRegistry | None:
    """The installed registry, or None while metrics are disabled."""
    return _REGISTRY


def metrics_enabled() -> bool:
    return _REGISTRY is not None


def install_registry(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install (and return) the module-global registry."""
    global _REGISTRY
    _REGISTRY = registry or MetricsRegistry()
    return _REGISTRY


def uninstall_registry() -> MetricsRegistry | None:
    """Remove the global registry; returns it."""
    global _REGISTRY
    registry, _REGISTRY = _REGISTRY, None
    return registry
