"""Runtime metrics registry: counters, gauges and percentile histograms.

Counters accumulate monotonically (``vertices_embedded``,
``samples_drawn``), gauges hold the last written value, and histograms
record samples into fixed log-spaced buckets (HDR-histogram style) so
``snapshot()`` can report p50/p90/p99 alongside count/sum/min/max
without storing every sample.

Bucketing is deterministic and merge-exact: a sample lands in the same
bucket no matter which process observes it, and merging two histograms
is an element-wise integer add of bucket counts.  A parent registry that
folds worker snapshots therefore ends up in *identical* state however
the samples were distributed across workers — the property the
``workers=1`` vs ``workers=4`` bitwise-determinism tests pin.

Gauges carry a per-gauge **merge policy** declared at write time::

    gauge_set("pool.queue_depth", depth)                # default: "last"
    gauge_set("monitor.peak_rss_mb", peak, merge="max")  # peaks survive merge

``last`` (the default) keeps last-merge-wins semantics, matching the
last-write-wins behaviour of :meth:`MetricsRegistry.gauge_set` itself.
``max``/``min`` take the extremum across merged snapshots — use ``max``
for peak-resource gauges so a worker's high-water mark is not silently
overwritten by the parent's smaller value at join.

Like :mod:`repro.obs.trace`, call sites go through module-level helpers
(:func:`counter_add`, :func:`gauge_set`, :func:`observe`) that check a
module-global registry; with none installed each call is one global
read and a ``None`` test, cheap enough to leave in hot loops.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = [
    "MetricsRegistry",
    "counter_add",
    "gauge_set",
    "observe",
    "current_registry",
    "install_registry",
    "uninstall_registry",
    "metrics_enabled",
]

# Sub-buckets per power of two.  8 sub-buckets bound the relative
# quantile error at ~1/16 of the value — plenty for latency/size
# reporting — while keeping bucket maps tiny (a series spanning six
# orders of magnitude touches < 160 buckets).
_SUBBUCKETS = 8

# Sentinel bucket index for samples <= 0 (log buckets only cover
# positive values).  Far below any frexp exponent (subnormal doubles
# bottom out near e = -1073, i.e. index ~ -8584).
_NONPOS_BUCKET = -(1 << 30)

GAUGE_POLICIES = ("last", "max", "min")


def bucket_index(value: float) -> int:
    """Deterministic log-bucket index for ``value``.

    Positive values are split into ``_SUBBUCKETS`` linear sub-buckets
    per power of two via :func:`math.frexp` (no floating log, so the
    index is exactly reproducible).  Values <= 0 share one sentinel
    bucket.
    """
    if value <= 0.0:
        return _NONPOS_BUCKET
    m, e = math.frexp(value)  # value = m * 2**e, m in [0.5, 1)
    sub = int((m - 0.5) * (2 * _SUBBUCKETS))
    if sub >= _SUBBUCKETS:  # m == 1.0 - ulp edge
        sub = _SUBBUCKETS - 1
    return e * _SUBBUCKETS + sub


def bucket_value(index: int) -> float:
    """Representative (midpoint) value of bucket ``index``."""
    if index == _NONPOS_BUCKET:
        return 0.0
    e, sub = divmod(index, _SUBBUCKETS)
    return math.ldexp(0.5 + (sub + 0.5) / (2 * _SUBBUCKETS), e)


class _Histogram:
    """Streaming summary stats plus exact log-bucket counts."""

    __slots__ = ("count", "sum", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        idx = bucket_index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile from bucket midpoints, clamped to [min, max]."""
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        cum = 0
        for idx in sorted(self.buckets):
            cum += self.buckets[idx]
            if cum >= rank:
                return min(max(bucket_value(idx), self.min), self.max)
        return self.max  # pragma: no cover - rank always reachable

    def merge(self, snap: dict[str, Any]) -> None:
        count = int(snap["count"])
        self.count += count
        self.sum += snap["sum"]
        self.min = min(self.min, snap["min"])
        self.max = max(self.max, snap["max"])
        buckets = snap.get("buckets")
        if buckets is None:
            # Pre-percentile snapshot (no bucket state): lossy fallback
            # that keeps sum(buckets) == count by crediting everything
            # to the mean's bucket.
            if count:
                mean = snap["sum"] / count
                idx = bucket_index(mean)
                self.buckets[idx] = self.buckets.get(idx, 0) + count
            return
        for key, n in buckets.items():
            idx = int(key)  # JSON round-trips turn int keys into strings
            self.buckets[idx] = self.buckets.get(idx, 0) + int(n)

    def snapshot(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.sum / self.count if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "buckets": {idx: self.buckets[idx] for idx in sorted(self.buckets)},
        }


class MetricsRegistry:
    """Named counters, gauges and log-bucket percentile histograms.

    Merge semantics (see :meth:`merge`): counters and histogram bucket
    counts accumulate exactly; gauges follow their declared policy —
    ``last`` (default) is last-merge-wins, ``max``/``min`` keep the
    extremum across snapshots (used for peak-RSS style gauges).
    """

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        # Only gauges with a non-default ("last") policy appear here.
        self.gauge_policies: dict[str, str] = {}
        self.histograms: dict[str, _Histogram] = {}

    def counter_add(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge_set(self, name: str, value: float, merge: str = "last") -> None:
        if merge not in GAUGE_POLICIES:
            raise ValueError(f"unknown gauge merge policy: {merge!r}")
        self.gauges[name] = float(value)
        if merge != "last":
            self.gauge_policies[name] = merge
        else:
            self.gauge_policies.pop(name, None)

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = _Histogram()
        hist.observe(value)

    def counter(self, name: str) -> float:
        """Current counter value (0 if never incremented)."""
        return self.counters.get(name, 0.0)

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters accumulate.  Histograms merge exactly: summary stats
        combine and log-bucket counts add element-wise, so the merged
        state is independent of how samples were split across
        snapshots.  Gauges follow their merge policy — ``last``
        (default) takes the merged snapshot's value, ``max``/``min``
        keep the extremum.  Used to propagate metrics recorded inside
        worker processes back into the parent registry when a parallel
        map joins.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter_add(name, value)
        policies = snapshot.get("gauge_policies", {})
        for name, value in snapshot.get("gauges", {}).items():
            policy = policies.get(name, self.gauge_policies.get(name, "last"))
            current = self.gauges.get(name)
            if current is None or policy == "last":
                merged = float(value)
            elif policy == "max":
                merged = max(current, float(value))
            else:  # "min"
                merged = min(current, float(value))
            self.gauge_set(name, merged, merge=policy)
        for name, hist_snap in snapshot.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = _Histogram()
            hist.merge(hist_snap)

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready dump of every metric.

        Histogram entries carry count/sum/min/max/mean plus p50/p90/p99
        (nearest-rank over bucket midpoints, clamped to the observed
        range) and the raw ``buckets`` map used for exact merging.
        """
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "gauge_policies": {
                k: self.gauge_policies[k] for k in sorted(self.gauge_policies)
            },
            "histograms": {
                name: self.histograms[name].snapshot()
                for name in sorted(self.histograms)
            },
        }


# ---------------------------------------------------------------------------
# Module-level fast path
# ---------------------------------------------------------------------------
_REGISTRY: MetricsRegistry | None = None


def counter_add(name: str, value: float = 1.0) -> None:
    """Increment counter ``name`` on the active registry (no-op if none)."""
    registry = _REGISTRY
    if registry is not None:
        registry.counter_add(name, value)


def gauge_set(name: str, value: float, merge: str = "last") -> None:
    """Set gauge ``name`` on the active registry (no-op if none).

    ``merge`` declares the cross-snapshot merge policy (``last``/``max``/
    ``min``); see :class:`MetricsRegistry`.
    """
    registry = _REGISTRY
    if registry is not None:
        registry.gauge_set(name, value, merge=merge)


def observe(name: str, value: float) -> None:
    """Record a histogram sample on the active registry (no-op if none)."""
    registry = _REGISTRY
    if registry is not None:
        registry.observe(name, value)


def current_registry() -> MetricsRegistry | None:
    """The installed registry, or None while metrics are disabled."""
    return _REGISTRY


def metrics_enabled() -> bool:
    return _REGISTRY is not None


def install_registry(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install (and return) the module-global registry."""
    global _REGISTRY
    _REGISTRY = registry or MetricsRegistry()
    return _REGISTRY


def uninstall_registry() -> MetricsRegistry | None:
    """Remove the global registry; returns it."""
    global _REGISTRY
    registry, _REGISTRY = _REGISTRY, None
    return registry
