"""Observability: tracing spans, runtime metrics and exporters.

The layer every subsystem reports through (Section III-D names the cost
drivers: recursive neighbour embedding, neighbour sampling, K-means —
all instrumented here).  Typical use::

    from repro import obs

    with obs.observe() as session:
        HiGNN(config, seed=0).fit(graph)
    session.write_chrome_trace("trace.json")   # Perfetto / chrome://tracing
    print(session.span_summary())
    print(session.metrics_summary())

Instrumentation left in library code is free when no session is active:
:func:`span` returns a shared no-op and :func:`counter_add` /
:func:`observe_value` / :func:`gauge_set` return after one global read
(see ``tests/obs/test_overhead.py`` for the bench guard).
"""

from __future__ import annotations

import contextlib
from pathlib import Path
from typing import Any, Iterator

from repro.obs.export import (
    TRACE_SCHEMA,
    chrome_trace,
    flat_trace,
    metrics_json,
    metrics_summary_table,
    monitor_counter_events,
    span_summary_table,
    write_chrome_trace,
    write_flat_trace,
    write_metrics_json,
)
from repro.obs.metrics import (
    MetricsRegistry,
    counter_add,
    current_registry,
    gauge_set,
    install_registry,
    metrics_enabled,
    uninstall_registry,
)
from repro.obs.metrics import observe as observe_value
from repro.obs.monitor import (
    ResourceMonitor,
    active_monitors,
    current_monitor,
    heartbeat,
    install_monitor,
    monitoring_enabled,
    uninstall_monitor,
)
from repro.obs.trace import (
    Span,
    Tracer,
    current_tracer,
    install_tracer,
    span,
    traced,
    tracing_enabled,
    uninstall_tracer,
)

__all__ = [
    "ObsSession",
    "observe",
    "span",
    "traced",
    "counter_add",
    "gauge_set",
    "observe_value",
    "heartbeat",
    "Span",
    "Tracer",
    "MetricsRegistry",
    "ResourceMonitor",
    "active_monitors",
    "current_monitor",
    "install_monitor",
    "uninstall_monitor",
    "monitoring_enabled",
    "tracing_enabled",
    "metrics_enabled",
    "current_tracer",
    "current_registry",
    "install_tracer",
    "uninstall_tracer",
    "install_registry",
    "uninstall_registry",
    "chrome_trace",
    "flat_trace",
    "monitor_counter_events",
    "write_chrome_trace",
    "write_flat_trace",
    "metrics_json",
    "write_metrics_json",
    "span_summary_table",
    "metrics_summary_table",
    "TRACE_SCHEMA",
]


class ObsSession:
    """One enabled observability window: a tracer plus a registry.

    ``monitor`` is optional — when a :class:`ResourceMonitor` is
    attached (the CLI does this for ``--progress``/resource capture),
    its time-series rides into the Chrome trace as counter events.
    """

    def __init__(
        self,
        tracer: Tracer,
        registry: MetricsRegistry,
        monitor: ResourceMonitor | None = None,
    ) -> None:
        self.tracer = tracer
        self.registry = registry
        self.monitor = monitor

    def chrome_trace(self) -> dict[str, Any]:
        return chrome_trace(self.tracer, self.registry, monitor=self.monitor)

    def flat_trace(self) -> dict[str, Any]:
        return flat_trace(self.tracer, self.registry)

    def write_chrome_trace(self, path: str | Path) -> Path:
        return write_chrome_trace(
            self.tracer, path, self.registry, monitor=self.monitor
        )

    def write_flat_trace(self, path: str | Path) -> Path:
        return write_flat_trace(self.tracer, path, self.registry)

    def span_summary(self) -> str:
        return span_summary_table(self.tracer)

    def metrics_summary(self) -> str:
        return metrics_summary_table(self.registry)

    def counter(self, name: str) -> float:
        return self.registry.counter(name)


@contextlib.contextmanager
def observe() -> Iterator[ObsSession]:
    """Enable tracing + metrics for the duration of the block.

    Installs a fresh tracer and registry globally, restoring whatever
    was installed before on exit (sessions therefore nest: the inner
    session shadows the outer one for its duration).
    """
    prev_tracer = current_tracer()
    prev_registry = current_registry()
    session = ObsSession(install_tracer(), install_registry())
    try:
        yield session
    finally:
        session.tracer.close()
        if prev_tracer is None:
            uninstall_tracer()
        else:
            install_tracer(prev_tracer)
        if prev_registry is None:
            uninstall_registry()
        else:
            install_registry(prev_registry)
