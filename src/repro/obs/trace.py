"""Hierarchical tracing spans.

A :class:`Tracer` records a forest of nested :class:`Span` objects —
wall-clock intervals with a name, attached attributes and parent/child
structure.  Instrumented code never talks to a tracer directly; it calls
the module-level :func:`span` helper (or decorates functions with
:func:`traced`), which consults the module-global active tracer.

The disabled fast path is the design centre: when no tracer is
installed, :func:`span` returns a shared no-op singleton and
:func:`traced` wrappers call straight through, so instrumentation left
in hot loops costs one global read and a ``None`` check (verified by a
bench guard in ``tests/obs/test_overhead.py``).

Not thread-safe: the span stack is a plain module-global, matching the
single-threaded execution model of the rest of the library.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Iterator

__all__ = [
    "Span",
    "Tracer",
    "span",
    "traced",
    "current_tracer",
    "install_tracer",
    "uninstall_tracer",
    "tracing_enabled",
]


class Span:
    """One timed interval in the trace tree.

    Spans double as context managers: entering is implicit (they are
    created started by :meth:`Tracer.start`), exiting finishes them and
    pops the tracer's stack.  ``attrs`` may be extended while the span
    is open via :meth:`set` — e.g. a loss known only at epoch end.
    """

    __slots__ = ("name", "attrs", "children", "start_s", "end_s", "_tracer")

    def __init__(self, name: str, attrs: dict[str, Any], tracer: "Tracer") -> None:
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.start_s = time.perf_counter()
        self.end_s: float | None = None
        self._tracer = tracer

    @property
    def duration_s(self) -> float:
        """Elapsed seconds; the running time if the span is still open."""
        end = self.end_s if self.end_s is not None else time.perf_counter()
        return end - self.start_s

    @property
    def self_s(self) -> float:
        """Duration minus the time spent in direct children."""
        return self.duration_s - sum(c.duration_s for c in self.children)

    def set(self, **attrs: Any) -> "Span":
        """Attach or overwrite attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def walk(self, depth: int = 0) -> Iterator[tuple["Span", int]]:
        """Yield ``(span, depth)`` over this subtree, pre-order."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form of this subtree (for cross-process transfer)."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "start_s": self.start_s,
            "end_s": self.end_s if self.end_s is not None else self.start_s,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any], tracer: "Tracer") -> "Span":
        """Rebuild a finished span subtree produced by :meth:`to_dict`."""
        sp = cls.__new__(cls)
        sp.name = str(data["name"])
        sp.attrs = dict(data.get("attrs") or {})
        sp.children = [cls.from_dict(c, tracer) for c in data.get("children", ())]
        sp.start_s = float(data["start_s"])
        sp.end_s = float(data["end_s"])
        sp._tracer = tracer
        return sp

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracer.finish(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration_s:.6f}s" if self.end_s is not None else "open"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


class _NoopSpan:
    """Shared do-nothing stand-in returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Records a forest of spans with an explicit open-span stack."""

    def __init__(self) -> None:
        self.origin_s = time.perf_counter()
        # Wall-clock anchor so exported traces can be located in time;
        # it never feeds numeric results.
        self.origin_epoch_s = time.time()  # repro-lint: disable=RPR103
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def start(self, name: str, attrs: dict[str, Any] | None = None) -> Span:
        """Open a span as a child of the innermost open span."""
        sp = Span(name, attrs or {}, self)
        self._stack.append(sp)
        return sp

    def finish(self, sp: Span) -> None:
        """Close ``sp`` and attach it to its parent (or the root list).

        Spans closed out of order are tolerated: everything opened after
        ``sp`` is adopted as its descendant, so a leaked inner span can
        never corrupt the forest.
        """
        if sp.end_s is not None:
            return
        sp.end_s = time.perf_counter()
        while self._stack and self._stack[-1] is not sp:
            self.finish(self._stack[-1])
        if self._stack and self._stack[-1] is sp:
            self._stack.pop()
        if self._stack:
            self._stack[-1].children.append(sp)
        else:
            self.roots.append(sp)

    def close(self) -> None:
        """Finish any spans left open (e.g. after an exception)."""
        while self._stack:
            self.finish(self._stack[-1])

    def adopt(self, span_dicts: list[dict[str, Any]]) -> None:
        """Graft serialized, finished span trees into this tracer's forest.

        The trees become children of the innermost open span (or roots if
        none is open).  ``time.perf_counter`` reads CLOCK_MONOTONIC, which
        is system-wide on the platforms we run on, so spans recorded in a
        forked worker line up with the parent's timeline as-is.
        """
        spans = [Span.from_dict(d, self) for d in span_dicts]
        if self._stack:
            self._stack[-1].children.extend(spans)
        else:
            self.roots.extend(spans)

    def all_spans(self) -> Iterator[tuple[Span, int]]:
        """Pre-order ``(span, depth)`` over every root."""
        for root in self.roots:
            yield from root.walk()


# ---------------------------------------------------------------------------
# Module-level fast path
# ---------------------------------------------------------------------------
_TRACER: Tracer | None = None


def span(name: str, **attrs: Any):
    """Open a span on the active tracer, or a no-op when disabled.

    Usage::

        with obs.span("hignn.level", level=level) as sp:
            ...
            sp.set(loss=loss)
    """
    tracer = _TRACER
    if tracer is None:
        return NOOP_SPAN
    return tracer.start(name, attrs)


def traced(name: str | None = None) -> Callable:
    """Decorator wrapping a function in a span named after it."""

    def decorate(fn: Callable) -> Callable:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            tracer = _TRACER
            if tracer is None:
                return fn(*args, **kwargs)
            with tracer.start(label):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def current_tracer() -> Tracer | None:
    """The installed tracer, or None while tracing is disabled."""
    return _TRACER


def tracing_enabled() -> bool:
    return _TRACER is not None


def install_tracer(tracer: Tracer | None = None) -> Tracer:
    """Install (and return) the module-global tracer."""
    global _TRACER
    _TRACER = tracer or Tracer()
    return _TRACER


def uninstall_tracer() -> Tracer | None:
    """Remove the global tracer (closing open spans); returns it."""
    global _TRACER
    tracer, _TRACER = _TRACER, None
    if tracer is not None:
        tracer.close()
    return tracer
