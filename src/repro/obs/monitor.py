"""Continuous resource monitoring and progress heartbeats.

:class:`ResourceMonitor` owns a background daemon thread that samples
RSS / CPU time / open file descriptors at a configurable interval and
records them as a time-series, so long runs (the 10^6-vertex sharded
embeds, multi-epoch training) report *measured* peak memory and a
resource trajectory instead of an analytic estimate.  Samples come from
``/proc/self/statm`` / ``os.times()`` / ``/proc/self/fd`` with a
``resource.getrusage`` fallback — no third-party dependency.

Lifecycle mirrors :class:`~repro.parallel.shared.SharedMatrix` and
:class:`~repro.shard.storage.ShardedCSR`: the owner enters a ``with``
block, the sampler thread lives exactly as long as the block, and
:func:`active_monitors` exposes every live monitor so test teardown can
assert none leaked (lint rule RPR304 flags constructions outside a
``with`` item for the same reason).  Entering also installs the monitor
as the module-global target of :func:`heartbeat`, restoring the
previous one on exit — the same shadowing contract as
``obs.observe()``.

Fork-safety: a forked child inherits the module global and the monitor
object but *not* the sampler thread (threads do not survive ``fork``).
``repro.parallel`` worker initialisation therefore resets the global,
and :meth:`ResourceMonitor.stop` no-ops off the owner pid, exactly like
``WorkerPool``.  Workers run their own short-lived monitor per task and
ship its :meth:`series` back with the map result, tagged by worker pid;
the parent folds them in via :meth:`adopt_series` so one Chrome trace
carries every process's counter tracks.

Heartbeats are the progress half: hot loops call
:func:`heartbeat("shard.embed", done, total)` — one global read and a
``None`` test when no monitor is installed — and the monitor tracks
per-name progress (rate, ETA) in the series.  With ``progress=True``
(the CLI's ``--progress`` flag) a throttled single-line renderer mirrors
the latest heartbeat to stderr, so minute-long runs are no longer
silent.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Any, TextIO

from repro.obs.metrics import gauge_set

__all__ = [
    "DEFAULT_INTERVAL_S",
    "ResourceMonitor",
    "heartbeat",
    "current_monitor",
    "install_monitor",
    "uninstall_monitor",
    "monitoring_enabled",
    "active_monitors",
    "sample_resources",
]

# Default sampling interval: fine enough to catch sub-second RSS spikes
# in the shard/bench runs, coarse enough to stay invisible in profiles.
# Stamped into bench reports as ``telemetry.sampler_interval_s``.
DEFAULT_INTERVAL_S = 0.05

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096
_STATM_PATH = "/proc/self/statm"
_FD_DIR = "/proc/self/fd"

# ru_maxrss is kilobytes on Linux, bytes on macOS.
_RU_MAXRSS_SCALE = 1.0 / 1024.0 if sys.platform != "darwin" else 1.0 / (1024.0 * 1024.0)


def _rss_mb() -> float:
    """Current resident set size in MB (0.0 when /proc is unavailable)."""
    try:
        with open(_STATM_PATH, "rb") as fh:
            return int(fh.read().split()[1]) * _PAGE_SIZE / (1024.0 * 1024.0)
    except (OSError, IndexError, ValueError):
        return 0.0


def _peak_rss_mb() -> float:
    """Process high-water RSS in MB via ``getrusage`` (monotone)."""
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * _RU_MAXRSS_SCALE


def _open_fds() -> int:
    try:
        return len(os.listdir(_FD_DIR))
    except OSError:
        return -1


def sample_resources() -> dict[str, float]:
    """One point-in-time resource sample (JSON-ready)."""
    times = os.times()
    return {
        "t_s": time.perf_counter(),
        "rss_mb": _rss_mb(),
        "cpu_s": times.user + times.system,
        "open_fds": _open_fds(),
    }


# ---------------------------------------------------------------------------
# Live-monitor registry (leak sweeps, mirrors active_segment_names())
# ---------------------------------------------------------------------------
_ACTIVE: set["ResourceMonitor"] = set()


def active_monitors() -> set["ResourceMonitor"]:
    """Monitors whose sampler thread is currently running (this process).

    Test teardown asserts this is empty — a non-empty set means someone
    started a monitor outside an owning ``with`` block (RPR304) or let
    one escape its scope.
    """
    return {m for m in _ACTIVE if m._owner_pid == os.getpid()}


class _ProgressRenderer:
    """Throttled single-line ``\\r`` status renderer for heartbeats."""

    def __init__(self, stream: TextIO | None = None, min_interval_s: float = 0.1):
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self._last_render_s = -float("inf")
        self._dirty = False

    def render(self, name: str, state: dict[str, Any]) -> None:
        now = time.perf_counter()
        if now - self._last_render_s < self.min_interval_s:
            return
        self._last_render_s = now
        done, total = state["done"], state["total"]
        parts = [f"[{name}]"]
        if total:
            parts.append(f"{_fmt_count(done)}/{_fmt_count(total)}")
            parts.append(f"{100.0 * done / total:5.1f}%")
        else:
            parts.append(_fmt_count(done))
        rate = state.get("rate")
        if rate:
            parts.append(f"{_fmt_count(rate)}/s")
        eta = state.get("eta_s")
        if eta is not None:
            parts.append(f"eta {eta:.0f}s")
        for key, value in state.get("extra", {}).items():
            parts.append(f"{key}={value}")
        line = " ".join(parts)
        self.stream.write("\r" + line[:120].ljust(80))
        self.stream.flush()
        self._dirty = True

    def finish(self) -> None:
        if self._dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._dirty = False


def _fmt_count(value: float) -> str:
    value = float(value)
    if value >= 1e6:
        return f"{value / 1e6:.1f}M"
    if value >= 1e4:
        return f"{value / 1e3:.0f}k"
    return str(int(value)) if value.is_integer() else f"{value:.1f}"


class ResourceMonitor:
    """Owning handle on a background resource sampler.

    Use as a context manager — the sampler thread starts on ``__enter__``
    and is joined on ``__exit__``; entering installs the monitor as the
    global :func:`heartbeat` target (shadowing any previous one)::

        with ResourceMonitor(interval_s=0.05, progress=True) as mon:
            run_long_job()
        print(mon.peak_rss_mb)

    ``tag`` labels the series (default ``pid<N>``); worker processes use
    ``worker-<pid>`` so merged traces keep per-process tracks.
    """

    def __init__(
        self,
        interval_s: float = DEFAULT_INTERVAL_S,
        tag: str | None = None,
        progress: bool = False,
        progress_stream: TextIO | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.interval_s = float(interval_s)
        self.tag = tag or f"pid{os.getpid()}"
        self.samples: list[dict[str, float]] = []
        self.heartbeats: dict[str, dict[str, Any]] = {}
        self._worker_series: list[dict[str, Any]] = []
        self._renderer = (
            _ProgressRenderer(progress_stream) if progress or progress_stream else None
        )
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._owner_pid: int | None = None
        self._prev_monitor: "ResourceMonitor | None" = None
        self._started = False

    # -- lifecycle -----------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "ResourceMonitor":
        if self._started:
            raise RuntimeError("ResourceMonitor cannot be restarted")
        self._started = True
        self._owner_pid = os.getpid()
        self.sample_now()
        self._thread = threading.Thread(
            target=self._loop, name=f"repro-monitor-{self.tag}", daemon=True
        )
        self._thread.start()
        _ACTIVE.add(self)
        return self

    def stop(self) -> None:
        """Join the sampler and seal the series (idempotent, owner-only)."""
        if self._owner_pid != os.getpid():
            return  # forked copy: the thread belongs to the owner process
        thread, self._thread = self._thread, None
        if thread is not None:
            self._stop.set()
            thread.join()
            self.sample_now()
        _ACTIVE.discard(self)
        if self._renderer is not None:
            self._renderer.finish()
        peak = self.peak_rss_mb
        if peak:
            gauge_set("monitor.peak_rss_mb", peak, merge="max")

    def __enter__(self) -> "ResourceMonitor":
        self.start()
        self._prev_monitor = current_monitor()
        install_monitor(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
        if self._prev_monitor is None:
            uninstall_monitor()
        else:
            install_monitor(self._prev_monitor)
        self._prev_monitor = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample_now()

    # -- sampling ------------------------------------------------------
    def sample_now(self) -> dict[str, float]:
        """Take (and record) one sample immediately."""
        sample = sample_resources()
        with self._lock:
            self.samples.append(sample)
        return sample

    @property
    def peak_rss_mb(self) -> float:
        """Measured peak RSS in MB: max(sampled RSS, ru_maxrss)."""
        with self._lock:
            sampled = max((s["rss_mb"] for s in self.samples), default=0.0)
        return max(sampled, _peak_rss_mb())

    # -- heartbeats ----------------------------------------------------
    def heartbeat(
        self, name: str, done: float, total: float | None = None, **extra: Any
    ) -> dict[str, Any]:
        """Record progress for ``name``; returns the updated state.

        ``done``/``total`` drive rate and ETA (ETA omitted without a
        total); extra keyword pairs ride along (e.g. ``frontier=123``)
        and show up in the rendered status line.
        """
        now = time.perf_counter()
        with self._lock:
            state = self.heartbeats.get(name)
            if state is None:
                state = self.heartbeats[name] = {"first_t_s": now, "beats": 0}
            elapsed = now - state["first_t_s"]
            rate = done / elapsed if elapsed > 0 and done > 0 else None
            eta = (
                (total - done) / rate
                if rate and total is not None and total > done
                else None
            )
            state.update(
                {
                    "done": float(done),
                    "total": float(total) if total is not None else None,
                    "rate": rate,
                    "eta_s": eta,
                    "t_s": now,
                    "beats": state["beats"] + 1,
                    "extra": {k: _json_value(v) for k, v in extra.items()},
                }
            )
            snapshot = dict(state)
        if self._renderer is not None:
            self._renderer.render(name, snapshot)
        return snapshot

    # -- series export / merge ----------------------------------------
    def series(self) -> dict[str, Any]:
        """This process's series as a JSON-ready dict."""
        with self._lock:
            return {
                "tag": self.tag,
                "pid": os.getpid(),
                "interval_s": self.interval_s,
                "samples": [dict(s) for s in self.samples],
                "heartbeats": {k: dict(v) for k, v in self.heartbeats.items()},
                "peak_rss_mb": max(
                    (s["rss_mb"] for s in self.samples), default=0.0
                ),
            }

    def adopt_series(self, series: dict[str, Any]) -> None:
        """Fold a worker's :meth:`series` payload into this monitor."""
        with self._lock:
            self._worker_series.append(series)

    def all_series(self) -> list[dict[str, Any]]:
        """Own series first, then adopted worker series (adoption order)."""
        return [self.series()] + list(self._worker_series)


def _json_value(value: Any) -> Any:
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()
        except (AttributeError, ValueError):  # pragma: no cover - defensive
            return str(value)
    return value


# ---------------------------------------------------------------------------
# Module-level fast path
# ---------------------------------------------------------------------------
_MONITOR: ResourceMonitor | None = None


def heartbeat(name: str, done: float, total: float | None = None, **extra: Any) -> None:
    """Record progress on the active monitor (no-op if none installed)."""
    monitor = _MONITOR
    if monitor is not None:
        monitor.heartbeat(name, done, total, **extra)


def current_monitor() -> ResourceMonitor | None:
    """The installed monitor, or None while monitoring is disabled."""
    return _MONITOR


def monitoring_enabled() -> bool:
    return _MONITOR is not None


def install_monitor(monitor: ResourceMonitor) -> ResourceMonitor:
    """Install the module-global heartbeat target (no thread is started)."""
    global _MONITOR
    _MONITOR = monitor
    return monitor


def uninstall_monitor() -> ResourceMonitor | None:
    """Remove the global monitor; returns it."""
    global _MONITOR
    monitor, _MONITOR = _MONITOR, None
    return monitor
