"""Trace and metrics exporters.

Three output shapes, all fed from one :class:`~repro.obs.trace.Tracer`
and one :class:`~repro.obs.metrics.MetricsRegistry`:

* :func:`chrome_trace` — Chrome trace-event JSON (object form), loadable
  in Perfetto or ``chrome://tracing``.  Complete events (``ph="X"``) on
  one pid/tid; nesting is implied by interval containment, exactly how
  those viewers render flame charts.  The metrics snapshot rides along
  under a top-level ``"metrics"`` key (the format tolerates extra keys).
* :func:`flat_trace` — a flat JSON list of spans with explicit depth and
  path, convenient for scripting over without interval arithmetic.
* :func:`span_summary_table` / :func:`metrics_summary_table` — plain
  text via :func:`repro.utils.tables.format_table` for terminal output.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer
from repro.utils.tables import format_table

TRACE_SCHEMA = "repro/trace/v1"

__all__ = [
    "TRACE_SCHEMA",
    "chrome_trace",
    "flat_trace",
    "monitor_counter_events",
    "write_chrome_trace",
    "write_flat_trace",
    "metrics_json",
    "write_metrics_json",
    "span_summary_table",
    "metrics_summary_table",
]


def _json_safe(value: Any) -> Any:
    """Coerce numpy scalars etc. to plain JSON types."""
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()
        except (AttributeError, ValueError):  # pragma: no cover - defensive
            return str(value)
    return value


def _safe_attrs(attrs: dict[str, Any]) -> dict[str, Any]:
    return {k: _json_safe(v) for k, v in attrs.items()}


def _monitor_series(monitor: Any) -> list[dict[str, Any]]:
    """Normalise a monitor argument to a list of series dicts."""
    if monitor is None:
        return []
    if isinstance(monitor, list):
        return monitor
    return monitor.all_series()


def monitor_counter_events(
    monitor: Any, origin_s: float
) -> list[dict[str, Any]]:
    """Chrome counter events (``ph="C"``) from monitor resource series.

    One counter track per metric per series tag; timestamps are
    rebased onto the tracer origin (clamped at 0 — a monitor may start
    before the tracer).  ``monitor`` is a
    :class:`~repro.obs.monitor.ResourceMonitor` or a pre-extracted list
    of series dicts.
    """
    events: list[dict[str, Any]] = []
    for index, series in enumerate(_monitor_series(monitor)):
        tag = series.get("tag", f"series{index}")
        pid = series.get("pid", index)
        for sample in series.get("samples", []):
            ts = round(max(0.0, sample["t_s"] - origin_s) * 1e6, 3)
            for key, unit in (
                ("rss_mb", "mb"),
                ("cpu_s", "s"),
                ("open_fds", "fds"),
            ):
                value = sample.get(key)
                if value is None or value < 0:
                    continue
                events.append(
                    {
                        "name": f"{key} ({tag})",
                        "cat": "repro.monitor",
                        "ph": "C",
                        "ts": ts,
                        "pid": pid,
                        "tid": 0,
                        "args": {unit: value},
                    }
                )
    return events


def chrome_trace(
    tracer: Tracer,
    registry: MetricsRegistry | None = None,
    monitor: Any = None,
) -> dict[str, Any]:
    """Trace-event JSON dict (``traceEvents`` + metrics block).

    With a ``monitor`` (a :class:`~repro.obs.monitor.ResourceMonitor`
    or list of series dicts), resource time-series are appended as
    Chrome counter events — Perfetto renders them as per-process
    counter tracks under the flame chart.
    """
    origin = tracer.origin_s
    events = []
    for sp, _depth in tracer.all_spans():
        events.append(
            {
                "name": sp.name,
                "cat": "repro",
                "ph": "X",
                "ts": round((sp.start_s - origin) * 1e6, 3),
                "dur": round(sp.duration_s * 1e6, 3),
                "pid": 0,
                "tid": 0,
                "args": _safe_attrs(sp.attrs),
            }
        )
    events.extend(monitor_counter_events(monitor, origin))
    doc: dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": TRACE_SCHEMA, "origin_epoch_s": tracer.origin_epoch_s},
    }
    if registry is not None:
        doc["metrics"] = registry.snapshot()
    return doc


def flat_trace(
    tracer: Tracer, registry: MetricsRegistry | None = None
) -> dict[str, Any]:
    """Flat span list with explicit depth/path, plus the metrics block."""
    origin = tracer.origin_s
    spans = []

    def emit(sp: Span, depth: int, path: str) -> None:
        spans.append(
            {
                "name": sp.name,
                "path": path,
                "depth": depth,
                "start_s": round(sp.start_s - origin, 9),
                "duration_s": round(sp.duration_s, 9),
                "attrs": _safe_attrs(sp.attrs),
                "num_children": len(sp.children),
            }
        )
        for child in sp.children:
            emit(child, depth + 1, f"{path}/{child.name}")

    for root in tracer.roots:
        emit(root, 0, root.name)
    doc: dict[str, Any] = {"schema": TRACE_SCHEMA, "spans": spans}
    if registry is not None:
        doc["metrics"] = registry.snapshot()
    return doc


def write_chrome_trace(
    tracer: Tracer,
    path: str | Path,
    registry: MetricsRegistry | None = None,
    monitor: Any = None,
) -> Path:
    """Write :func:`chrome_trace` as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(chrome_trace(tracer, registry, monitor=monitor), indent=2) + "\n"
    )
    return path


def metrics_json(registry: MetricsRegistry) -> dict[str, Any]:
    """The final registry snapshot wrapped with a schema stamp."""
    return {"schema": TRACE_SCHEMA, "metrics": registry.snapshot()}


def write_metrics_json(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write :func:`metrics_json` (the ``--metrics PATH`` payload)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(metrics_json(registry), indent=2) + "\n")
    return path


def write_flat_trace(
    tracer: Tracer, path: str | Path, registry: MetricsRegistry | None = None
) -> Path:
    """Write :func:`flat_trace` as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(flat_trace(tracer, registry), indent=2) + "\n")
    return path


def span_summary_table(tracer: Tracer) -> str:
    """Per-span-name aggregate table: calls, total/self/mean/max seconds."""
    agg: dict[str, list[float]] = {}  # name -> [calls, total, self, max]
    order: list[str] = []
    for sp, _depth in tracer.all_spans():
        stats = agg.get(sp.name)
        if stats is None:
            agg[sp.name] = [1.0, sp.duration_s, sp.self_s, sp.duration_s]
            order.append(sp.name)
        else:
            stats[0] += 1.0
            stats[1] += sp.duration_s
            stats[2] += sp.self_s
            stats[3] = max(stats[3], sp.duration_s)
    rows = []
    for name in sorted(order, key=lambda n: -agg[n][1]):
        calls, total, self_s, longest = agg[name]
        rows.append(
            [
                name,
                int(calls),
                f"{total:.4f}",
                f"{self_s:.4f}",
                f"{total / calls:.4f}",
                f"{longest:.4f}",
            ]
        )
    return format_table(
        ["span", "calls", "total_s", "self_s", "mean_s", "max_s"], rows
    )


def metrics_summary_table(registry: MetricsRegistry) -> str:
    """Counters/gauges/histograms in one table."""
    snap = registry.snapshot()
    rows: list[list[object]] = []
    for name, value in snap["counters"].items():
        rows.append(["counter", name, _fmt(value)])
    for name, value in snap["gauges"].items():
        rows.append(["gauge", name, _fmt(value)])
    for name, stats in snap["histograms"].items():
        rows.append(
            [
                "histogram",
                name,
                f"n={stats['count']} mean={stats['mean']:.3f} "
                f"p50={_fmt(stats['p50'])} p90={_fmt(stats['p90'])} "
                f"p99={_fmt(stats['p99'])} "
                f"min={_fmt(stats['min'])} max={_fmt(stats['max'])}",
            ]
        )
    return format_table(["kind", "metric", "value"], rows)


def _fmt(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else f"{value:.4f}"
