"""Hierarchical embedding bookkeeping (Section IV-A).

After Algorithm 1 runs, each base user belongs to one cluster per level;
its *hierarchical user preference* is the concatenation of its own
level-1 embedding with its cluster embeddings at levels 2..L:
``z_u^H = CONCAT(z_u^1, z_u^2, ..., z_u^L)`` — and symmetrically the
*hierarchical item attractiveness* ``z_i^H``.  This module resolves the
level-wise membership chains and materialises those concatenations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.bipartite import BipartiteGraph

__all__ = ["LevelRecord", "HierarchicalEmbeddings"]


@dataclass
class LevelRecord:
    """Artifacts of one HiGNN level ``l`` (1-based).

    Attributes
    ----------
    graph:
        The input graph G^{l-1} this level's GraphSAGE ran on.
    user_embeddings, item_embeddings:
        Z_u^l, Z_i^l — embeddings of G^{l-1}'s vertices.
    user_assignment, item_assignment:
        K-means labels mapping G^{l-1} vertices to G^l vertices.
    coarse_graph:
        G^l, the coarsened output graph.
    """

    level: int
    graph: BipartiteGraph
    user_embeddings: np.ndarray
    item_embeddings: np.ndarray
    user_assignment: np.ndarray
    item_assignment: np.ndarray
    coarse_graph: BipartiteGraph


@dataclass
class HierarchicalEmbeddings:
    """The full output of Algorithm 1: G, Z_u, Z_i across levels."""

    levels: list[LevelRecord] = field(default_factory=list)

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def base_graph(self) -> BipartiteGraph:
        return self.levels[0].graph

    def _check(self) -> None:
        if not self.levels:
            raise ValueError("no levels recorded")

    # ------------------------------------------------------------------
    # Membership chains
    # ------------------------------------------------------------------
    def user_membership(self, level: int) -> np.ndarray:
        """Map base users to their vertex id in G^{level-1}.

        ``level=1`` is the identity (base users are G^0 vertices); higher
        levels compose the K-means assignments.
        """
        self._check()
        if not 1 <= level <= self.num_levels:
            raise ValueError(f"level must be in [1, {self.num_levels}]")
        membership = np.arange(self.base_graph.num_users)
        for record in self.levels[: level - 1]:
            membership = record.user_assignment[membership]
        return membership

    def item_membership(self, level: int) -> np.ndarray:
        """Map base items to their vertex id in G^{level-1}."""
        self._check()
        if not 1 <= level <= self.num_levels:
            raise ValueError(f"level must be in [1, {self.num_levels}]")
        membership = np.arange(self.base_graph.num_items)
        for record in self.levels[: level - 1]:
            membership = record.item_assignment[membership]
        return membership

    # ------------------------------------------------------------------
    # Per-level embeddings resolved to base vertices
    # ------------------------------------------------------------------
    def user_level_embeddings(self, level: int) -> np.ndarray:
        """z_u^level for every base user (cluster embedding for level>1)."""
        record = self.levels[level - 1]
        return record.user_embeddings[self.user_membership(level)]

    def item_level_embeddings(self, level: int) -> np.ndarray:
        """z_i^level for every base item."""
        record = self.levels[level - 1]
        return record.item_embeddings[self.item_membership(level)]

    # ------------------------------------------------------------------
    # Hierarchical concatenations (Section IV-A)
    # ------------------------------------------------------------------
    def hierarchical_user_embeddings(self, max_level: int | None = None) -> np.ndarray:
        """z_u^H = CONCAT(z_u^1 ... z_u^L) for every base user."""
        self._check()
        top = max_level or self.num_levels
        return np.concatenate(
            [self.user_level_embeddings(l) for l in range(1, top + 1)], axis=1
        )

    def hierarchical_item_embeddings(self, max_level: int | None = None) -> np.ndarray:
        """z_i^H = CONCAT(z_i^1 ... z_i^L) for every base item."""
        self._check()
        top = max_level or self.num_levels
        return np.concatenate(
            [self.item_level_embeddings(l) for l in range(1, top + 1)], axis=1
        )

    # ------------------------------------------------------------------
    # Cluster views (taxonomy support)
    # ------------------------------------------------------------------
    def item_clusters_at_level(self, level: int) -> dict[int, np.ndarray]:
        """Base items grouped by their G^level cluster id.

        ``level`` here counts coarsenings: level 1 groups by the first
        K-means pass, level L by the last.
        """
        membership = self.item_membership(level + 1) if level < self.num_levels else None
        if membership is None:
            # After the final level: compose through the last assignment.
            membership = self.levels[-1].item_assignment[self.item_membership(self.num_levels)]
        clusters: dict[int, np.ndarray] = {}
        for cluster in np.unique(membership):
            clusters[int(cluster)] = np.flatnonzero(membership == cluster)
        return clusters

    def user_clusters_at_level(self, level: int) -> dict[int, np.ndarray]:
        """Base users grouped by their G^level cluster id."""
        membership = self.user_membership(level + 1) if level < self.num_levels else None
        if membership is None:
            membership = self.levels[-1].user_assignment[self.user_membership(self.num_levels)]
        clusters: dict[int, np.ndarray] = {}
        for cluster in np.unique(membership):
            clusters[int(cluster)] = np.flatnonzero(membership == cluster)
        return clusters
