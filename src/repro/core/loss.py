"""The unsupervised bipartite-graph loss J_BG (Eq. 5 / Eq. 12).

A trainable similarity head ``f`` (an MLP) scores the concatenation of a
user embedding, an item embedding, and the edge-weight feature.  The
loss pushes the score of observed (u, i) pairs up and the score of
negative-sampled pairs down, with the negatives' edge-weight slot filled
by the hyper-parameter gamma and their terms weighted by the sample
counts Q_u / Q_i.

Note on fidelity: Eq. 5 as printed applies ``log sigma(f(...))`` to the
negative terms as well, which would reward *high* scores for negatives;
we read it with the standard negative-sampling sign convention
(``log sigma(-f)`` for negatives), matching the GraphSAGE loss the
construction is borrowed from and the stated intent that "embeddings of
disparate users and items are highly distinct".
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import MLP, Module
from repro.nn.losses import binary_cross_entropy_with_logits
from repro.nn.tensor import Tensor, concat

__all__ = ["EdgeSimilarityHead", "bipartite_graph_loss"]


class EdgeSimilarityHead(Module):
    """The similarity network ``f`` of Eq. 5.

    Three modes:

    * ``"mlp"``   — the paper-literal reading: an MLP over
      ``CONCAT(z_u, z_i, w)`` where ``w`` is the log-scaled edge weight
      (gamma for negatives).
    * ``"dot"``   — the classic GraphSAGE similarity ``z_u . z_i``
      (ignores the weight input).
    * ``"hybrid"`` (default) — dot product plus the MLP refinement.  The
      dot term anchors a metric embedding geometry, which the K-means
      stage of Algorithm 1 depends on; a pure MLP similarity can score
      edges well while leaving embeddings poorly clusterable (see
      DESIGN.md, substitution notes).
    """

    def __init__(
        self,
        embedding_dim: int,
        hidden: tuple[int, ...] = (32,),
        mode: str = "hybrid",
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if mode not in {"mlp", "dot", "hybrid"}:
            raise ValueError(f"unknown head mode {mode!r}")
        self.mode = mode
        self.scale = 1.0 / np.sqrt(embedding_dim)
        self.net = (
            MLP(
                in_features=2 * embedding_dim + 1,
                hidden=hidden,
                out_features=1,
                activation="leaky_relu",
                rng=rng,
            )
            if mode != "dot"
            else None
        )

    def forward(self, z_left: Tensor, z_right: Tensor, weights: np.ndarray) -> Tensor:
        """Logits of shape (n,) for n aligned (left, right, weight) rows."""
        if self.mode == "dot":
            return (z_left * z_right).sum(axis=-1) * self.scale
        w = np.log1p(np.asarray(weights, dtype=np.float64)).reshape(-1, 1)
        joined = concat([z_left, z_right, Tensor(w)], axis=-1)
        mlp_logit = self.net(joined).reshape(-1)
        if self.mode == "mlp":
            return mlp_logit
        return (z_left * z_right).sum(axis=-1) * self.scale + mlp_logit


def bipartite_graph_loss(
    head: EdgeSimilarityHead,
    z_users: Tensor,
    z_items: Tensor,
    edge_weights: np.ndarray,
    z_neg_users: Tensor,
    z_neg_items: Tensor,
    gamma: float,
    q_user_weight: float = 1.0,
    q_item_weight: float = 1.0,
) -> Tensor:
    """Assemble J_BG for one mini-batch.

    ``z_users``/``z_items`` are aligned positive pairs (B rows).
    ``z_neg_users`` holds negative users paired against the batch items
    (and symmetrically for ``z_neg_items``); both must already be aligned
    row-by-row with their positive counterpart (B * Q rows, produced by
    repeating each positive edge Q times).
    """
    batch = len(edge_weights)
    if batch == 0:
        raise ValueError("empty batch")
    pos_logits = head(z_users, z_items, edge_weights)
    pos_loss = binary_cross_entropy_with_logits(
        pos_logits, np.ones(batch), reduction="sum"
    )

    total = pos_loss
    if len(z_neg_users):
        n = z_neg_users.shape[0]
        reps = n // batch
        items_rep = _repeat_rows(z_items, reps)
        neg_user_logits = head(
            z_neg_users, items_rep, np.full(n, gamma, dtype=np.float64)
        )
        neg_loss_u = binary_cross_entropy_with_logits(
            neg_user_logits, np.zeros(n), reduction="sum"
        )
        total = total + neg_loss_u * (q_user_weight / max(reps, 1))
    if len(z_neg_items):
        n = z_neg_items.shape[0]
        reps = n // batch
        users_rep = _repeat_rows(z_users, reps)
        neg_item_logits = head(
            users_rep, z_neg_items, np.full(n, gamma, dtype=np.float64)
        )
        neg_loss_i = binary_cross_entropy_with_logits(
            neg_item_logits, np.zeros(n), reduction="sum"
        )
        total = total + neg_loss_i * (q_item_weight / max(reps, 1))
    return total * (1.0 / batch)


def _repeat_rows(t: Tensor, reps: int) -> Tensor:
    """Tile a (B, d) tensor to (B * reps, d) preserving gradients."""
    if reps <= 1:
        return t
    idx = np.tile(np.arange(t.shape[0]), reps)
    return t.gather_rows(idx)
