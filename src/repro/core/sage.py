"""Bipartite GraphSAGE (Section III-B, Eqs. 1–4).

Users aggregate embeddings from sampled item neighbours and vice versa.
Each side owns its aggregators, per-step weight matrices ``W_u^p`` /
``W_i^p`` and cross-space transformation matrices ``M_i^u`` / ``M_u^i``
(Eqs. 1–2).  The query–item variant of Section V-B shares one set of
matrices across both sides (Eqs. 8–11); enable it with
``SageConfig.shared_space=True`` (requires equal feature dimensions).

Mini-batch computation follows the standard GraphSAGE recipe: to embed
a batch at step ``p`` we recursively embed its sampled neighbours at
step ``p-1`` down to the raw features at step 0, with fan-outs
``K_1, ..., K_P`` (the K's of the paper's complexity analysis,
Section III-D).

Two hot-path optimisations keep this tractable at scale (Section III-D;
cf. Cascade-BGNN's redundancy elimination):

* **Frontier deduplication** — at every recursion level the flattened
  id frontier is reduced to its unique vertices with ``np.unique``;
  each unique vertex is embedded once and the rows are scattered back
  through the inverse index.  Popular vertices appear many times in a
  ``K_1 x K_2`` frontier, so this cuts forward *and* backward FLOPs
  superlinearly with graph skew.  The naive recursion is retained
  (``dedup=False``) as the reference for equivalence tests and the
  hot-path benchmark.
* **Layer-wise full-graph inference** — :meth:`embed_all` computes the
  step-``p`` matrices for *all* vertices from the cached step-``p-1``
  matrices, one pass per step, instead of re-expanding the whole
  receptive field per batch.  The sampled recursive path remains the
  training path (it builds the autograd graph).
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.graph.sampling import NeighborSampler
from repro.nn.layers import Activation, Linear, Module
from repro.obs import span
from repro.obs.metrics import counter_add, observe
from repro.obs.monitor import heartbeat
from repro.nn.tensor import Tensor, concat, no_grad, where
from repro.parallel import as_ndarray, get_pool, shared_arrays
from repro.utils.config import SageConfig
from repro.utils.rng import derive_rng, ensure_rng

__all__ = ["BipartiteGraphSAGE"]


# ---------------------------------------------------------------------------
# Layer-wise chunk kernel (plain numpy, runs in-process or in workers)
# ---------------------------------------------------------------------------
# These replicate the Tensor forward math operation-for-operation (same
# numpy expressions, same order) so chunk outputs are bitwise identical
# to the autograd path — and therefore identical for every worker count.

_NP_ACTIVATIONS = {
    "relu": lambda x: x * (x > 0),
    "leaky_relu": lambda x: np.where(x > 0, x, 0.01 * x),
    "tanh": np.tanh,
    "sigmoid": lambda x: np.where(
        x >= 0,
        1.0 / (1.0 + np.exp(-np.clip(x, -500, None))),
        np.exp(np.clip(x, None, 500)) / (1.0 + np.exp(np.clip(x, None, 500))),
    ),
    "identity": lambda x: x,
}


def _np_aggregate(stacked: np.ndarray, valid: np.ndarray, agg: str) -> np.ndarray:
    """Numpy mirror of :meth:`BipartiteGraphSAGE._aggregate`."""
    maskf = valid.astype(float)[:, :, None]
    if agg in ("mean", "weighted_mean"):
        counts = np.maximum(valid.sum(axis=1, keepdims=True), 1).astype(float)
        return (stacked * maskf).sum(axis=1) * (1.0 / counts)
    if agg == "sum":
        return (stacked * maskf).sum(axis=1)
    if agg == "max":
        masked = np.where(valid[:, :, None], stacked, np.full(stacked.shape, -1e30))
        any_valid = valid.any(axis=1)[:, None].astype(float)
        return masked.max(axis=1) * any_valid
    raise ValueError(f"unknown aggregator {agg!r}")


def _sharded_shard_task(task: tuple, context: tuple) -> int:
    """Run one shard's chunk list of a sharded layer-wise pass.

    ``task`` is ``(shard_id, chunks)`` with every chunk pre-sampled in
    the parent; ``context`` names the previous-step matrices and the
    output buffer as ``(path, shape)`` memmap specs plus the step's
    weights.  Each chunk writes a disjoint row range of the output, so
    results are independent of which worker runs what — and each chunk
    is computed by the exact dense-path kernel, so the bytes written are
    identical to the in-memory result.
    """
    from repro.obs.metrics import counter_add as _counter_add
    from repro.obs.monitor import heartbeat as _heartbeat
    from repro.shard.storage import open_block

    shard_id, chunks = task
    own_spec, other_spec, out_spec, params = context
    own_prev = open_block(own_spec[0], np.float64, own_spec[1], mode="r")
    other_prev = open_block(other_spec[0], np.float64, other_spec[1], mode="r")
    out = open_block(out_spec[0], np.float64, out_spec[1], mode="r+")
    read = written = 0
    total_rows = sum(stop - start for start, stop, _neigh in chunks)
    done_rows = 0
    for start, stop, neigh in chunks:
        out[start:stop] = _layerwise_chunk((start, stop, neigh), (own_prev, other_prev, params))
        read += ((stop - start) * own_prev.shape[1] + neigh.size * other_prev.shape[1]) * 8
        written += (stop - start) * out.shape[1] * 8
        done_rows += stop - start
        _heartbeat(
            f"shard{shard_id:03d}.embed",
            done_rows,
            total_rows,
            frontier=int(neigh.size),
        )
    if isinstance(out, np.memmap):
        out.flush()
    _counter_add("shard.mmap_bytes_read", read)
    _counter_add("shard.mmap_bytes_written", written)
    return shard_id


def _layerwise_chunk(task: tuple, context: tuple) -> np.ndarray:
    """Embed one pre-sampled vertex chunk at one step (Eqs. 1–4).

    ``task`` is ``(start, stop, neigh)`` with neighbours already sampled
    in the parent (fixed order, so the sampling stream is untouched by
    parallelism).  ``context`` carries the previous-step matrices —
    possibly as shared-memory handles — plus the step's weights.
    """
    start, stop, neigh = task
    own_handle, other_handle, params = context
    own_prev = as_ndarray(own_handle)
    other_prev = as_ndarray(other_handle)
    valid = neigh >= 0
    stacked = other_prev[np.where(valid, neigh, 0)]
    aggregated = _np_aggregate(stacked, valid, params["aggregator"])
    transformed = aggregated @ params["m_w"]  # Eq. 1 / Eq. 2 (M has no bias)
    if params["m_b"] is not None:
        transformed = transformed + params["m_b"]
    combined = np.concatenate([own_prev[start:stop], transformed], axis=-1)
    z = combined @ params["w_w"]
    if params["w_b"] is not None:
        z = z + params["w_b"]
    return _NP_ACTIVATIONS[params["activation"]](z)  # Eq. 3 / Eq. 4


class BipartiteGraphSAGE(Module):
    """The bipartite GraphSAGE module BG(G, X_u, X_i) of the paper.

    Parameters
    ----------
    user_dim, item_dim:
        Raw feature dimensions d_u and d_i.
    config:
        Hyper-parameters; see :class:`repro.utils.config.SageConfig`.
    rng:
        Seed / generator for weight init and neighbour sampling.
    """

    def __init__(
        self,
        user_dim: int,
        item_dim: int,
        config: SageConfig | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.config = config or SageConfig()
        cfg = self.config
        if cfg.shared_space and user_dim != item_dim:
            raise ValueError(
                "shared_space requires equal user/item feature dimensions "
                f"(got {user_dim} and {item_dim})"
            )
        rng = ensure_rng(rng)
        self.user_dim = user_dim
        self.item_dim = item_dim
        d = cfg.embedding_dim
        self.activation = Activation(cfg.activation)

        # Per-step dimensions: step 1 consumes raw features, later steps
        # consume d-dimensional embeddings from the previous step.
        user_dims = [user_dim] + [d] * cfg.num_steps
        item_dims = [item_dim] + [d] * cfg.num_steps

        self.user_transform: list[Linear] = []  # M_i^u per step (item -> user)
        self.item_transform: list[Linear] = []  # M_u^i per step (user -> item)
        self.user_weight: list[Linear] = []  # W_u^p
        self.item_weight: list[Linear] = []  # W_i^p
        for p in range(1, cfg.num_steps + 1):
            m_iu = Linear(item_dims[p - 1], d, bias=False, rng=rng)
            w_u = Linear(user_dims[p - 1] + d, d, rng=rng)
            if cfg.shared_space:
                m_ui, w_i = m_iu, w_u  # Eqs. 8-11: shared M^p and W^p
            else:
                m_ui = Linear(user_dims[p - 1], d, bias=False, rng=rng)
                w_i = Linear(item_dims[p - 1] + d, d, rng=rng)
            self.user_transform.append(m_iu)
            self.item_transform.append(m_ui)
            self.user_weight.append(w_u)
            self.item_weight.append(w_i)
        self._sample_rng = derive_rng(rng, 7)
        # One NeighborSampler per graph, built lazily on first use —
        # the recursion previously rebuilt a sampler at every step.
        self._sampler_cache: tuple[BipartiteGraph, NeighborSampler] | None = None
        self._shard_sampler_cache: tuple | None = None
        # Frontier deduplication toggle; the benchmark harness flips it
        # off to time the naive recursion.
        self.dedup_frontier = True

    # ------------------------------------------------------------------
    # Embedding computation
    # ------------------------------------------------------------------
    def embed_users(self, graph: BipartiteGraph, user_ids: np.ndarray) -> Tensor:
        """Final user embeddings z_u for ``user_ids`` (builds autograd graph)."""
        return self._embed(graph, np.asarray(user_ids), self.config.num_steps, "user")

    def embed_items(self, graph: BipartiteGraph, item_ids: np.ndarray) -> Tensor:
        """Final item embeddings z_i for ``item_ids`` (builds autograd graph)."""
        return self._embed(graph, np.asarray(item_ids), self.config.num_steps, "item")

    def embed_all(
        self,
        graph: BipartiteGraph,
        batch_size: int = 2048,
        mode: str = "layerwise",
        workers: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Inference-mode embeddings (Z_u, Z_i) for every vertex.

        ``mode="layerwise"`` (default) computes each step for the whole
        graph from the cached previous-step matrices — O(P·N·K·d) work
        instead of the recursive path's O(N·K_1·...·K_P·d).  Called at
        every HiGNN level (Algorithm 1), so it dominates hierarchy-build
        time.  ``mode="recursive"`` keeps the per-batch recursive
        expansion as a reference implementation.

        ``workers`` fans the layer-wise chunk loop out over a process
        pool (default: the globally configured count, usually 1 → runs
        in-process).  Chunk boundaries, sampling order and reduction
        order are independent of the worker count, so the result is
        bitwise identical for any ``workers`` given the same seed.

        ``mode="streaming"`` runs the same layer-wise computation
        through the cached :class:`~repro.streaming.StreamingEmbedder`,
        whose content-addressed per-chunk sampling makes the result the
        exact reference for :meth:`refresh` (delta refresh after a
        mutation is bitwise-identical to this mode on the mutated
        graph).
        """
        if mode == "streaming":
            return self.streaming_embedder().full_embed(graph, workers=workers)
        if mode not in {"layerwise", "recursive"}:
            raise ValueError(f"unknown embed_all mode {mode!r}")
        if not isinstance(graph, BipartiteGraph):
            # A ShardedCSR store (duck-checked lazily so repro.core does
            # not import repro.shard unless sharding is actually used).
            from repro.shard.storage import ShardedCSR

            if isinstance(graph, ShardedCSR):
                if mode != "layerwise":
                    raise ValueError(
                        "sharded stores only support layerwise embed_all"
                    )
                return self.embed_all_sharded(
                    graph, batch_size=batch_size, workers=workers
                )
        self.eval()
        with span(
            "sage.embed_all",
            mode=mode,
            num_users=graph.num_users,
            num_items=graph.num_items,
        ), no_grad():
            if mode == "layerwise":
                users, items = self._embed_all_layerwise(
                    graph, batch_size, get_pool(workers)
                )
            else:
                users = np.concatenate(
                    [
                        self.embed_users(graph, np.arange(s, min(s + batch_size, graph.num_users))).data
                        for s in range(0, graph.num_users, batch_size)
                    ]
                )
                items = np.concatenate(
                    [
                        self.embed_items(graph, np.arange(s, min(s + batch_size, graph.num_items))).data
                        for s in range(0, graph.num_items, batch_size)
                    ]
                )
        self.train()
        return users, items

    def embed_all_sharded(
        self,
        store,
        batch_size: int = 2048,
        workers: int | None = None,
        work_dir=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Layer-wise inference over a ``ShardedCSR`` store, out-of-core.

        Step matrices live in memory-mapped files (double-buffered under
        ``work_dir``, default ``<store>/embed``); each pass samples every
        chunk in the parent in the dense path's global order (the
        fixed-order cross-shard frontier exchange), then fans the chunks
        out one :mod:`repro.parallel` task per shard.  Workers read the
        previous-step mmaps and write disjoint row ranges, so the result
        is bitwise identical to ``embed_all`` on the equivalent dense
        graph at any worker count.  Returns read-only memmaps
        ``(Z_u, Z_i)``.
        """
        self.eval()
        with span(
            "sage.embed_all",
            mode="sharded",
            num_users=store.num_users,
            num_items=store.num_items,
        ), no_grad():
            users, items = self._embed_all_sharded(
                store, batch_size, get_pool(workers), work_dir
            )
        self.train()
        return users, items

    # ------------------------------------------------------------------
    # Streaming refresh (delegates to repro.streaming, imported lazily)
    # ------------------------------------------------------------------
    def streaming_embedder(
        self,
        sample_seed: int = 0,
        batch_size: int = 2048,
        degrade_threshold: float = 0.25,
    ):
        """The cached :class:`~repro.streaming.StreamingEmbedder` for
        this model (rebuilt when the parameters change)."""
        from repro.streaming.refresh import StreamingEmbedder

        cached = getattr(self, "_streaming", None)
        if (
            cached is None
            or cached.sample_seed != int(sample_seed)
            or cached.batch_size != int(batch_size)
            or cached.degrade_threshold != float(degrade_threshold)
        ):
            cached = StreamingEmbedder(
                self,
                sample_seed=sample_seed,
                batch_size=batch_size,
                degrade_threshold=degrade_threshold,
            )
            self._streaming = cached
        return cached

    def refresh(
        self,
        graph,
        dirty_users: np.ndarray | None = None,
        dirty_items: np.ndarray | None = None,
        workers: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Delta-aware update of the ``mode="streaming"`` embeddings.

        After the graph gained edges/vertices, recomputes only the
        chunks containing the P-hop out-neighbourhood of the dirty
        vertices — bitwise-identical to ``embed_all(mutated_graph,
        mode="streaming")`` at any worker count.  Accepts an
        :class:`~repro.streaming.IncrementalBipartiteGraph` (dirty
        frontier consumed and cleared) or a plain graph plus explicit
        dirty id arrays.  Stats land on
        ``self.streaming_embedder().last_stats``.
        """
        return self.streaming_embedder().refresh(
            graph, dirty_users, dirty_items, workers=workers
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _features(self, graph: BipartiteGraph, side: str) -> np.ndarray:
        feats = graph.user_features if side == "user" else graph.item_features
        if feats is None:
            raise ValueError(f"graph is missing {side} features")
        expected = self.user_dim if side == "user" else self.item_dim
        if feats.shape[1] != expected:
            raise ValueError(
                f"{side} features have dim {feats.shape[1]}, module expects {expected}"
            )
        return feats

    def _sampler(self, graph: BipartiteGraph) -> NeighborSampler:
        """The cached per-graph sampler (built once, reused everywhere)."""
        cached = self._sampler_cache
        if cached is None or cached[0] is not graph or cached[1].rng is not self._sample_rng:
            # Rebuilt when the graph changes *or* ``_sample_rng`` is
            # reassigned (tests freeze sampling by swapping the rng).
            self._sampler_cache = (graph, NeighborSampler(graph, rng=self._sample_rng))
            cached = self._sampler_cache
        return cached[1]

    def _step_modules(self, step: int, side: str) -> tuple[Linear, Linear]:
        """The (M, W) pair for ``step`` on ``side`` (Eqs. 1–4)."""
        if side == "user":
            return self.user_transform[step - 1], self.user_weight[step - 1]
        return self.item_transform[step - 1], self.item_weight[step - 1]

    def _embed(
        self,
        graph: BipartiteGraph,
        ids: np.ndarray,
        step: int,
        side: str,
        dedup: bool | None = None,
    ) -> Tensor:
        """h^step for ``ids`` on ``side``; -1 ids produce zero rows.

        The default path embeds each *unique* id once and scatters rows
        back through the inverse index; ``dedup=False`` selects the
        naive per-occurrence recursion (reference implementation).
        """
        if dedup is None:
            dedup = self.dedup_frontier
        ids = np.asarray(ids)
        if not dedup:
            counter_add("sage.vertices_embedded", len(ids))
            observe("sage.frontier_size", len(ids))
            return self._embed_naive(graph, ids, step, side)
        mask = ids >= 0
        safe = np.where(mask, ids, 0)
        unique, inverse = np.unique(safe, return_inverse=True)
        counter_add("sage.vertices_embedded", len(unique))
        observe("sage.frontier_size", len(unique))
        out = self._embed_frontier(graph, unique, step, side).gather_rows(inverse)
        if not mask.all():
            out = out * mask[:, None].astype(float)
        return out

    def _embed_frontier(
        self, graph: BipartiteGraph, ids: np.ndarray, step: int, side: str
    ) -> Tensor:
        """h^step for a frontier of unique, valid ids on ``side``."""
        cfg = self.config
        if step == 0:
            return Tensor(self._features(graph, side)[ids])

        # Own embedding at the previous step (the CONCAT left operand).
        own_prev = self._embed_frontier(graph, ids, step - 1, side)

        # Sampled neighbour embeddings at the previous step.
        fanout = cfg.neighbor_samples[cfg.num_steps - step]
        sampler = self._sampler(graph)
        if side == "user":
            neigh = sampler.sample_items_for_users(ids, fanout)
        else:
            neigh = sampler.sample_users_for_items(ids, fanout)
        other = "item" if side == "user" else "user"
        flat = self._embed(graph, neigh.reshape(-1), step - 1, other)
        stacked = flat.reshape(len(ids), fanout, flat.shape[1])
        aggregated = self._aggregate(stacked, neigh >= 0)

        transform, weight = self._step_modules(step, side)
        transformed = transform(aggregated)  # Eq. 1 / Eq. 2
        combined = concat([own_prev, transformed], axis=-1)
        return self.activation(weight(combined))  # Eq. 3 / Eq. 4

    def _embed_naive(
        self, graph: BipartiteGraph, ids: np.ndarray, step: int, side: str
    ) -> Tensor:
        """Reference recursion: every frontier occurrence embedded anew."""
        cfg = self.config
        mask = ids >= 0
        safe = np.where(mask, ids, 0)

        if step == 0:
            base = self._features(graph, side)[safe].copy()
            base[~mask] = 0.0
            return Tensor(base)

        own_prev = self._embed_naive(graph, ids, step - 1, side)

        fanout = cfg.neighbor_samples[cfg.num_steps - step]
        sampler = self._sampler(graph)
        if side == "user":
            neigh = sampler.sample_items_for_users(safe, fanout)
        else:
            neigh = sampler.sample_users_for_items(safe, fanout)
        neigh[~mask] = -1
        other = "item" if side == "user" else "user"
        flat = self._embed_naive(graph, neigh.reshape(-1), step - 1, other)
        stacked = flat.reshape(len(ids), fanout, flat.shape[1])
        aggregated = self._aggregate(stacked, neigh >= 0)

        transform, weight = self._step_modules(step, side)
        transformed = transform(aggregated)  # Eq. 1 / Eq. 2
        combined = concat([own_prev, transformed], axis=-1)
        out = self.activation(weight(combined))  # Eq. 3 / Eq. 4
        if not mask.all():
            out = out * mask[:, None].astype(float)
        return out

    # ------------------------------------------------------------------
    # Layer-wise full-graph inference
    # ------------------------------------------------------------------
    def _embed_all_layerwise(
        self, graph: BipartiteGraph, batch_size: int, pool=None
    ) -> tuple[np.ndarray, np.ndarray]:
        """One pass per step over the whole graph (inference only).

        At step ``p`` every vertex aggregates ``K`` sampled neighbours
        from the cached step-``p-1`` matrix of the opposite side, so the
        receptive field is never re-expanded.  Equivalent to the
        recursive path when sampling is a pure function of the vertex
        (e.g. exhaustive fan-outs); distributionally equivalent under
        sampling with replacement.
        """
        h_user = self._features(graph, "user")
        h_item = self._features(graph, "item")
        cfg = self.config
        for step in range(1, cfg.num_steps + 1):
            fanout = cfg.neighbor_samples[cfg.num_steps - step]
            new_user = self._layerwise_pass(
                graph, h_user, h_item, step, "user", fanout, batch_size, pool
            )
            new_item = self._layerwise_pass(
                graph, h_item, h_user, step, "item", fanout, batch_size, pool
            )
            h_user, h_item = new_user, new_item
        return h_user, h_item

    def _layerwise_pass(
        self,
        graph: BipartiteGraph,
        own_prev: np.ndarray,
        other_prev: np.ndarray,
        step: int,
        side: str,
        fanout: int,
        batch_size: int,
        pool=None,
    ) -> np.ndarray:
        """Step-``step`` embeddings for every vertex on ``side``.

        Neighbours for every chunk are sampled up front in the parent —
        in the same fixed order the serial loop used, so the sampling
        RNG stream is untouched by parallelism — then the chunks are
        mapped over ``pool`` (in-process when ``pool`` is serial) and
        written back in submission order.
        """
        sampler = self._sampler(graph)
        n = graph.num_users if side == "user" else graph.num_items
        transform, weight = self._step_modules(step, side)
        counter_add("sage.vertices_embedded", n)
        tasks = []
        for start in range(0, n, batch_size):
            stop = min(start + batch_size, n)
            observe("sage.frontier_size", stop - start)
            chunk = np.arange(start, stop)
            if side == "user":
                neigh = sampler.sample_items_for_users(chunk, fanout)
            else:
                neigh = sampler.sample_users_for_items(chunk, fanout)
            tasks.append((start, stop, neigh))
        params = {
            "m_w": transform.weight.data,
            "m_b": transform.bias.data if transform.bias is not None else None,
            "w_w": weight.weight.data,
            "w_b": weight.bias.data if weight.bias is not None else None,
            "activation": self.config.activation,
            "aggregator": self.config.aggregator,
        }
        if pool is None:
            pool = get_pool(1)
        out = np.empty((n, self.config.embedding_dim), dtype=np.float64)
        with shared_arrays(pool, own_prev, other_prev) as (own_h, other_h):
            rows = pool.map(
                _layerwise_chunk,
                tasks,
                context=(own_h, other_h, params),
                label="sage.layerwise_chunk",
            )
        for (start, stop, _), block in zip(tasks, rows):
            out[start:stop] = block
        return out

    # ------------------------------------------------------------------
    # Sharded layer-wise inference (out-of-core)
    # ------------------------------------------------------------------
    def _shard_sampler(self, store):
        """Cached per-store sampler over shard blocks (mirrors _sampler)."""
        from repro.shard.sampler import ShardedNeighborSampler

        cached = self._shard_sampler_cache
        if cached is None or cached[0] is not store or cached[1].rng is not self._sample_rng:
            self._shard_sampler_cache = (
                store,
                ShardedNeighborSampler(store, rng=self._sample_rng),
            )
            cached = self._shard_sampler_cache
        return cached[1]

    def _store_feature_spec(self, store, side: str) -> tuple[str, tuple[int, int]]:
        """(path, shape) of the store's step-0 matrix, validated."""
        dim = store.feature_dim(side)
        if dim is None:
            raise ValueError(f"graph is missing {side} features")
        expected = self.user_dim if side == "user" else self.item_dim
        if dim != expected:
            raise ValueError(
                f"{side} features have dim {dim}, module expects {expected}"
            )
        return str(store.feature_path(side)), (store.num(side), dim)

    def _embed_all_sharded(
        self, store, batch_size: int, pool, work_dir=None
    ) -> tuple[np.ndarray, np.ndarray]:
        """One mmap-to-mmap pass per step; see :meth:`embed_all_sharded`."""
        from pathlib import Path

        from repro.shard.storage import allocate_block, open_block

        cfg = self.config
        work = Path(work_dir) if work_dir is not None else store.path / "embed"
        work.mkdir(parents=True, exist_ok=True)
        sampler = self._shard_sampler(store)
        current = {
            side: self._store_feature_spec(store, side) for side in ("user", "item")
        }
        for step in range(1, cfg.num_steps + 1):
            fanout = cfg.neighbor_samples[cfg.num_steps - step]
            new: dict[str, tuple[str, tuple[int, int]]] = {}
            for side in ("user", "item"):
                other = "item" if side == "user" else "user"
                # Double-buffered by step parity: the file this step
                # overwrites held step-2's matrix, which nothing reads
                # any more.
                out_path = work / f"h_{side}_{step % 2}.bin"
                out_shape = (store.num(side), cfg.embedding_dim)
                allocate_block(out_path, np.float64, out_shape)
                self._sharded_pass(
                    store,
                    sampler,
                    current[side],
                    current[other],
                    (str(out_path), out_shape),
                    step,
                    side,
                    fanout,
                    batch_size,
                    pool,
                )
                new[side] = (str(out_path), out_shape)
            current = new
        return (
            open_block(current["user"][0], np.float64, current["user"][1], mode="r"),
            open_block(current["item"][0], np.float64, current["item"][1], mode="r"),
        )

    def _sharded_pass(
        self,
        store,
        sampler,
        own_spec: tuple[str, tuple[int, int]],
        other_spec: tuple[str, tuple[int, int]],
        out_spec: tuple[str, tuple[int, int]],
        step: int,
        side: str,
        fanout: int,
        batch_size: int,
        pool,
    ) -> None:
        """Step-``step`` matrices for ``side``, streamed through mmaps.

        Sampling happens here in the parent, chunk by chunk in the same
        global order as the dense :meth:`_layerwise_pass` — that is the
        fixed-order frontier exchange: the RNG stream, and therefore
        every sampled id, matches the dense path regardless of shard
        count or worker count.  Chunks are then grouped into one map
        task per shard (a chunk belongs to the shard owning most of its
        rows) so each worker streams one shard's blocks.
        """
        n = store.num(side)
        transform, weight = self._step_modules(step, side)
        counter_add("sage.vertices_embedded", n)
        own_shard = store.shard_of(side)
        other = "item" if side == "user" else "user"
        other_shard = store.shard_of(other)
        chunks_per_shard: list[list[tuple[int, int, np.ndarray]]] = [
            [] for s in range(store.num_shards)
        ]
        with span(
            "shard.frontier_exchange", side=side, step=step, fanout=fanout
        ):
            for start in range(0, n, batch_size):
                stop = min(start + batch_size, n)
                observe("sage.frontier_size", stop - start)
                heartbeat(
                    f"shard.frontier.{side}", stop, n, step=step, fanout=fanout
                )
                chunk = np.arange(start, stop)
                if side == "user":
                    neigh = sampler.sample_items_for_users(chunk, fanout)
                else:
                    neigh = sampler.sample_users_for_items(chunk, fanout)
                valid = neigh >= 0
                cross = valid & (
                    other_shard[np.where(valid, neigh, 0)]
                    != own_shard[start:stop, None]
                )
                counter_add("shard.frontier_rows", int(valid.sum()))
                counter_add("shard.frontier_cross_rows", int(cross.sum()))
                home = int(
                    np.bincount(
                        own_shard[start:stop], minlength=store.num_shards
                    ).argmax()
                )
                chunks_per_shard[home].append((start, stop, neigh))
        params = {
            "m_w": transform.weight.data,
            "m_b": transform.bias.data if transform.bias is not None else None,
            "w_w": weight.weight.data,
            "w_b": weight.bias.data if weight.bias is not None else None,
            "activation": self.config.activation,
            "aggregator": self.config.aggregator,
        }
        tasks = [
            (shard, chunks)
            for shard, chunks in enumerate(chunks_per_shard)
            if chunks
        ]
        pool.map(
            _sharded_shard_task,
            tasks,
            context=(own_spec, other_spec, out_spec, params),
            label="sage.sharded_shard",
        )

    def _aggregate(self, stacked: Tensor, valid: np.ndarray) -> Tensor:
        """AGGREGATE over the fan-out axis with a validity mask.

        ``stacked`` is (n, K, d); ``valid`` marks real neighbours (False
        entries are padding for isolated vertices).
        """
        agg = self.config.aggregator
        maskf = valid.astype(float)[:, :, None]
        if agg in ("mean", "weighted_mean"):
            # weighted_mean differs only in how neighbours are *sampled*
            # (importance sampling by edge weight happens upstream).
            counts = np.maximum(valid.sum(axis=1, keepdims=True), 1).astype(float)
            summed = (stacked * maskf).sum(axis=1)
            return summed * (1.0 / counts)
        if agg == "sum":
            return (stacked * maskf).sum(axis=1)
        if agg == "max":
            neg_inf = Tensor(np.full(stacked.shape, -1e30))
            masked = where(valid[:, :, None], stacked, neg_inf)
            out = masked.max(axis=1)
            any_valid = valid.any(axis=1)[:, None].astype(float)
            return out * any_valid
        raise ValueError(f"unknown aggregator {agg!r}")
