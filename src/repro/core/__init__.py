"""The paper's primary contribution: bipartite GraphSAGE + HiGNN stacking."""

from repro.core.sage import BipartiteGraphSAGE
from repro.core.loss import EdgeSimilarityHead, bipartite_graph_loss
from repro.core.trainer import SageTrainer, SageTrainResult
from repro.core.hierarchy import HierarchicalEmbeddings, LevelRecord
from repro.core.hignn import HiGNN
from repro.core.evaluate import (
    cluster_purity,
    item_retrieval_recall,
    link_prediction_auc,
    normalized_mutual_information,
)

__all__ = [
    "BipartiteGraphSAGE",
    "EdgeSimilarityHead",
    "bipartite_graph_loss",
    "SageTrainer",
    "SageTrainResult",
    "HierarchicalEmbeddings",
    "LevelRecord",
    "HiGNN",
    "cluster_purity",
    "item_retrieval_recall",
    "link_prediction_auc",
    "normalized_mutual_information",
]
