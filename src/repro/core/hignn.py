"""HiGNN — Algorithm 1 of the paper.

Stack bipartite GraphSAGE and deterministic clustering alternately:

1. ``(Z_u^l, Z_i^l) <- BG(G^{l-1}, X_u^{l-1}, X_i^{l-1})``
2. ``C_u^l, C_i^l <- Kmeans(Z_u^l), Kmeans(Z_i^l)``
3. ``(G^l, X_u^l, X_i^l) <- F(C_u^l, C_i^l, G^{l-1})``

repeated L times.  The output hierarchy (graphs, embeddings and cluster
assignments per level) is wrapped in
:class:`repro.core.hierarchy.HierarchicalEmbeddings`.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.autok import cluster_with_auto_k
from repro.clustering.kmeans import kmeans
from repro.core.hierarchy import HierarchicalEmbeddings, LevelRecord
from repro.core.sage import BipartiteGraphSAGE
from repro.core.trainer import SageTrainer
from repro.graph.bipartite import BipartiteGraph
from repro.graph.coarsen import coarsen
from repro.obs import span
from repro.utils.config import HiGNNConfig
from repro.utils.logging import get_logger
from repro.utils.rng import derive_rng, ensure_rng

__all__ = ["HiGNN"]

logger = get_logger("core.hignn")


class HiGNN:
    """Hierarchical bipartite graph neural network.

    Example
    -------
    >>> from repro.utils.config import HiGNNConfig
    >>> model = HiGNN(HiGNNConfig(levels=2), seed=0)      # doctest: +SKIP
    >>> hierarchy = model.fit(graph)                      # doctest: +SKIP
    >>> z_h_users = hierarchy.hierarchical_user_embeddings()  # doctest: +SKIP
    """

    def __init__(
        self,
        config: HiGNNConfig | None = None,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self.config = config or HiGNNConfig()
        self.rng = ensure_rng(seed)
        self.modules_: list[BipartiteGraphSAGE] = []

    def fit(self, graph: BipartiteGraph) -> HierarchicalEmbeddings:
        """Run Algorithm 1 on ``graph`` and return the hierarchy.

        The input graph must carry user and item feature matrices.
        Levels stop early if a graph degenerates below ``min_clusters``
        vertices on either side.
        """
        if graph.user_features is None or graph.item_features is None:
            raise ValueError("HiGNN.fit requires a graph with features on both sides")
        cfg = self.config
        self.modules_ = []
        hierarchy = HierarchicalEmbeddings()
        current = graph
        with span("hignn.fit", levels=cfg.levels) as fit_span:
            for level in range(1, cfg.levels + 1):
                record = self._run_level(current, level)
                hierarchy.levels.append(record)
                current = record.coarse_graph
                if (
                    current.num_users <= cfg.min_clusters
                    or current.num_items <= cfg.min_clusters
                ):
                    logger.info("stopping early at level %d: graph degenerated", level)
                    break
            fit_span.set(levels_built=len(hierarchy.levels))
        return hierarchy

    # ------------------------------------------------------------------
    def _run_level(self, graph: BipartiteGraph, level: int) -> LevelRecord:
        cfg = self.config
        rng = derive_rng(self.rng, level)
        logger.info(
            "level %d: training GraphSAGE on %d users x %d items (%d edges)",
            level,
            graph.num_users,
            graph.num_items,
            graph.num_edges,
        )
        with span(
            "hignn.level",
            level=level,
            num_users=graph.num_users,
            num_items=graph.num_items,
            num_edges=graph.num_edges,
        ) as level_span:
            module = BipartiteGraphSAGE(
                user_dim=graph.user_features.shape[1],
                item_dim=graph.item_features.shape[1],
                config=cfg.sage,
                rng=derive_rng(rng, 1),
            )
            trainer = SageTrainer(module, graph, cfg.train, rng=derive_rng(rng, 2))
            with span("hignn.train", level=level) as train_span:
                train_result = trainer.fit()
                train_span.set(final_loss=train_result.final_loss)
            self.modules_.append(module)
            z_users, z_items = module.embed_all(graph)

            with span("hignn.cluster", level=level, side="user") as cspan:
                user_labels = self._cluster(
                    z_users, graph.num_users, level, "user", derive_rng(rng, 3)
                )
                cspan.set(n_clusters=int(user_labels.max()) + 1)
            with span("hignn.cluster", level=level, side="item") as cspan:
                item_labels = self._cluster(
                    z_items, graph.num_items, level, "item", derive_rng(rng, 4)
                )
                cspan.set(n_clusters=int(item_labels.max()) + 1)
            with span("hignn.coarsen", level=level):
                result = coarsen(graph, user_labels, item_labels, z_users, z_items)
            level_span.set(
                coarse_users=result.graph.num_users,
                coarse_items=result.graph.num_items,
            )
        logger.info(
            "level %d: coarsened to %d x %d",
            level,
            result.graph.num_users,
            result.graph.num_items,
        )
        return LevelRecord(
            level=level,
            graph=graph,
            user_embeddings=z_users,
            item_embeddings=z_items,
            user_assignment=user_labels,
            item_assignment=item_labels,
            coarse_graph=result.graph,
        )

    def _cluster(
        self,
        embeddings: np.ndarray,
        n_vertices: int,
        level: int,
        side: str,
        rng: np.random.Generator,
    ) -> np.ndarray:
        cfg = self.config
        if cfg.kmeans.auto_k:
            if cfg.kmeans.auto_k_candidates:
                pool = cfg.kmeans.auto_k_candidates
            else:
                # CH-grid around the alpha-decay heuristic, scaled to the
                # *current* graph so deeper levels keep sensible choices.
                alpha = cfg.cluster_decay
                pool = {int(round(n_vertices / alpha**p)) for p in (0.5, 1.0, 1.5)}
            candidates = sorted(
                {k for k in pool if 2 <= k < n_vertices}
            ) or [max(2, min(n_vertices - 1, cfg.min_clusters))]
            result = cluster_with_auto_k(
                embeddings, candidates, config=cfg.kmeans, rng=rng
            )
        else:
            k = cfg.clusters_at(level, n_vertices, side)
            result = kmeans(embeddings, k, config=cfg.kmeans, rng=rng)
        # Re-index labels densely in case clusters collapsed.
        _, dense = np.unique(result.labels, return_inverse=True)
        return dense.astype(np.int64)
