"""Unsupervised training loop for bipartite GraphSAGE (Section III-B).

One epoch visits every edge once in shuffled mini-batches.  For each
batch the trainer embeds the positive users/items, draws Q_u negative
users and Q_i negative items from P_n, and minimises J_BG with the
optimiser named in :class:`repro.utils.config.TrainConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.core.loss import EdgeSimilarityHead, bipartite_graph_loss
from repro.core.sage import BipartiteGraphSAGE
from repro.graph.bipartite import BipartiteGraph
from repro.graph.sampling import NegativeSampler, sample_edge_batches
from repro.nn.losses import l2_penalty
from repro.obs import span
from repro.obs.metrics import counter_add
from repro.obs.monitor import heartbeat
from repro.nn.optim import build_optimizer, clip_grad_norm
from repro.utils.config import SageConfig, TrainConfig
from repro.utils.logging import get_logger
from repro.utils.rng import derive_rng, ensure_rng

__all__ = ["SageTrainer", "SageTrainResult"]

logger = get_logger("core.trainer")


@dataclass
class SageTrainResult:
    """Training diagnostics: per-epoch mean batch losses."""

    epoch_losses: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


class SageTrainer:
    """Fits one :class:`BipartiteGraphSAGE` module on one graph."""

    def __init__(
        self,
        module: BipartiteGraphSAGE,
        graph: BipartiteGraph,
        train_config: TrainConfig | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        self.module = module
        self.graph = graph
        self.train_config = train_config or TrainConfig()
        self.rng = ensure_rng(rng)
        cfg: SageConfig = module.config
        self.head = EdgeSimilarityHead(
            cfg.embedding_dim, mode=cfg.similarity_head, rng=derive_rng(self.rng, 1)
        )
        self.negative_sampler = NegativeSampler(
            graph, distribution=cfg.negative_distribution, rng=derive_rng(self.rng, 2)
        )
        params = self.module.parameters() + self.head.parameters()
        self.optimizer = build_optimizer(
            self.train_config.optimizer, params, self.train_config.learning_rate
        )

    def fit(self) -> SageTrainResult:
        """Run the configured number of epochs; returns loss history."""
        result = SageTrainResult()
        tcfg = self.train_config
        for epoch in range(tcfg.epochs):
            losses = []
            edges_seen = 0
            t0 = perf_counter()
            with span("train.epoch", epoch=epoch) as epoch_span:
                batches = sample_edge_batches(
                    self.graph, tcfg.batch_size, rng=derive_rng(self.rng, 10 + epoch)
                )
                for step, (users, items, weights) in enumerate(batches):
                    losses.append(self._step(users, items, weights))
                    edges_seen += len(users)
                    if tcfg.log_every and (step + 1) % tcfg.log_every == 0:
                        logger.info(
                            "epoch %d step %d loss %.4f", epoch, step + 1, losses[-1]
                        )
                mean_loss = float(np.mean(losses)) if losses else float("nan")
                elapsed = perf_counter() - t0
                epoch_span.set(
                    loss=mean_loss,
                    edges=edges_seen,
                    edges_per_sec=edges_seen / elapsed if elapsed > 0 else 0.0,
                )
            counter_add("train.edges_seen", edges_seen)
            counter_add("train.epochs", 1)
            heartbeat(
                "train.fit",
                epoch + 1,
                tcfg.epochs,
                loss=round(mean_loss, 4),
                edges=edges_seen,
            )
            result.epoch_losses.append(mean_loss)
            logger.info("epoch %d mean loss %.4f", epoch, mean_loss)
        return result

    def _step(self, users: np.ndarray, items: np.ndarray, weights: np.ndarray) -> float:
        cfg = self.module.config
        batch = len(users)
        z_users = self.module.embed_users(self.graph, users)
        z_items = self.module.embed_items(self.graph, items)

        neg_users = self.negative_sampler.sample_users(batch * cfg.negative_samples_user)
        neg_items = self.negative_sampler.sample_items(batch * cfg.negative_samples_item)
        z_neg_users = self.module.embed_users(self.graph, neg_users)
        z_neg_items = self.module.embed_items(self.graph, neg_items)

        loss = bipartite_graph_loss(
            self.head,
            z_users,
            z_items,
            weights,
            z_neg_users,
            z_neg_items,
            gamma=cfg.negative_weight,
            q_user_weight=float(cfg.negative_samples_user),
            q_item_weight=float(cfg.negative_samples_item),
        )
        if cfg.l2 > 0:
            loss = loss + l2_penalty(self.module.parameters(), cfg.l2)
        self.optimizer.zero_grad()
        loss.backward()
        if self.train_config.gradient_clip:
            clip_grad_norm(self.optimizer.params, self.train_config.gradient_clip)
        self.optimizer.step()
        return loss.item()
