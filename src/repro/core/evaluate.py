"""Diagnostics for unsupervised embeddings.

The paper never evaluates its unsupervised stage in isolation, but
practitioners need to: these helpers score a fitted GraphSAGE module (or
raw embedding matrices) on link reconstruction and neighbourhood
ranking, and score cluster assignments against any reference labelling.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.metrics.auc import auc
from repro.metrics.ranking import recall_at_k
from repro.utils.rng import ensure_rng

__all__ = [
    "link_prediction_auc",
    "item_retrieval_recall",
    "cluster_purity",
    "normalized_mutual_information",
]


def link_prediction_auc(
    graph: BipartiteGraph,
    user_embeddings: np.ndarray,
    item_embeddings: np.ndarray,
    num_samples: int = 2000,
    rng: int | np.random.Generator | None = 0,
) -> float:
    """AUC of dot-product scores: observed edges vs random non-pairs.

    The standard sanity check for edge-reconstruction embeddings —
    roughly 0.5 means the embeddings carry no structure.
    """
    rng = ensure_rng(rng)
    n = min(num_samples, graph.num_edges)
    if n == 0:
        raise ValueError("graph has no edges")
    pos_idx = rng.choice(graph.num_edges, size=n, replace=False)
    pos_pairs = graph.edges[pos_idx]
    neg_users = rng.integers(0, graph.num_users, size=n)
    neg_items = rng.integers(0, graph.num_items, size=n)

    pos_scores = np.einsum(
        "ij,ij->i", user_embeddings[pos_pairs[:, 0]], item_embeddings[pos_pairs[:, 1]]
    )
    neg_scores = np.einsum(
        "ij,ij->i", user_embeddings[neg_users], item_embeddings[neg_items]
    )
    labels = np.concatenate([np.ones(n), np.zeros(n)])
    return auc(labels, np.concatenate([pos_scores, neg_scores]))


def item_retrieval_recall(
    graph: BipartiteGraph,
    user_embeddings: np.ndarray,
    item_embeddings: np.ndarray,
    k: int = 10,
    num_users: int = 200,
    rng: int | np.random.Generator | None = 0,
) -> float:
    """Mean recall@k of each user's true items under dot-product ranking."""
    rng = ensure_rng(rng)
    users = rng.choice(
        graph.num_users, size=min(num_users, graph.num_users), replace=False
    )
    recalls = []
    for user in users:
        relevant = set(int(i) for i in graph.item_neighbors(int(user)))
        if not relevant:
            continue
        scores = item_embeddings @ user_embeddings[int(user)]
        recalls.append(recall_at_k(relevant, scores, k))
    if not recalls:
        raise ValueError("no sampled user has any neighbours")
    return float(np.mean(recalls))


def cluster_purity(labels: np.ndarray, reference: np.ndarray) -> float:
    """Fraction of points whose cluster's majority reference label matches."""
    labels = np.asarray(labels)
    reference = np.asarray(reference)
    if labels.shape != reference.shape:
        raise ValueError("labels and reference must align")
    total = 0
    for c in np.unique(labels):
        members = reference[labels == c]
        total += np.bincount(members).max()
    return total / len(labels)


def normalized_mutual_information(labels: np.ndarray, reference: np.ndarray) -> float:
    """NMI in [0, 1] between two hard clusterings (arithmetic mean norm)."""
    labels = np.asarray(labels)
    reference = np.asarray(reference)
    if labels.shape != reference.shape:
        raise ValueError("labels and reference must align")
    n = len(labels)
    if n == 0:
        raise ValueError("empty labelings")
    eps = 1e-15

    def entropy(arr: np.ndarray) -> float:
        probs = np.bincount(arr) / n
        probs = probs[probs > 0]
        return float(-np.sum(probs * np.log(probs)))

    h_l, h_r = entropy(labels), entropy(reference)
    if h_l < eps or h_r < eps:
        return 1.0 if h_l < eps and h_r < eps else 0.0
    mutual = 0.0
    for c in np.unique(labels):
        mask = labels == c
        p_c = mask.mean()
        sub = reference[mask]
        for r in np.unique(sub):
            p_joint = np.sum(sub == r) / n
            p_r = np.mean(reference == r)
            mutual += p_joint * np.log(p_joint / (p_c * p_r) + eps)
    return float(mutual / (0.5 * (h_l + h_r)))
