"""Finding and severity types shared by every part of the analyzer.

A :class:`Finding` is one rule violation at one source location.  It is
deliberately a plain, JSON-friendly record: the runner, the baseline
store, the CLI and the test helpers all exchange findings rather than
AST nodes, so each layer stays independently testable.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Severity", "Finding", "normalize_line", "assign_fingerprints"]


class Severity(enum.IntEnum):
    """How bad a finding is; ordering follows the integer value."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, value: "str | int | Severity") -> "Severity":
        if isinstance(value, Severity):
            return value
        if isinstance(value, int):
            return cls(value)
        return cls[value.upper()]


@dataclass
class Finding:
    """One rule violation at one location.

    ``fingerprint`` identifies the finding across line-number drift: it
    hashes the file, the rule code and the *normalized text* of the
    offending line (plus an occurrence index for duplicates), so
    inserting unrelated lines above a baselined finding does not turn it
    into a "new" one.  Fingerprints are assigned by
    :func:`assign_fingerprints` after a file has been fully linted.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    severity: Severity = Severity.WARNING
    source_line: str = ""
    fingerprint: str = field(default="", compare=False)

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "source_line": self.source_line,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} [{self.severity}] {self.message}"
        )


def normalize_line(text: str) -> str:
    """Whitespace-insensitive form of a source line (fingerprint input)."""
    return " ".join(text.split())


def assign_fingerprints(findings: list[Finding]) -> list[Finding]:
    """Fill in :attr:`Finding.fingerprint` for a batch of findings.

    Findings that share ``(path, code, normalized line text)`` — e.g. the
    same violation pattern repeated verbatim — are disambiguated by an
    occurrence index counted in line order, keeping fingerprints stable
    under edits elsewhere in the file.
    """
    ordered = sorted(findings, key=Finding.sort_key)
    seen: dict[tuple[str, str, str], int] = {}
    for finding in ordered:
        norm = normalize_line(finding.source_line)
        key = (finding.path, finding.code, norm)
        index = seen.get(key, 0)
        seen[key] = index + 1
        raw = f"{finding.path}|{finding.code}|{norm}|{index}"
        finding.fingerprint = hashlib.sha1(raw.encode("utf-8")).hexdigest()[:16]
    return ordered
