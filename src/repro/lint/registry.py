"""Rule registry: codes, metadata and per-node-type checker dispatch.

A rule is a metadata record (:class:`Rule`) plus a checker function
registered for one or more AST node types::

    @rule(
        code="RPR999",
        name="example",
        severity=Severity.WARNING,
        family="determinism",
        description="what the rule enforces",
        nodes=(ast.Call,),
    )
    def check_example(node, ctx):
        if looks_bad(node):
            yield node, "message for this occurrence"

Checkers are generators over ``(ast_node, message)`` pairs; the visitor
turns each pair into a :class:`~repro.lint.findings.Finding` carrying the
rule's code and severity.  Registration happens at import time of the
:mod:`repro.lint.rules` package, so importing :mod:`repro.lint` is enough
to have the full rule set available.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.lint.findings import Severity

__all__ = ["Rule", "rule", "all_rules", "get_rule", "checkers_for", "RULES"]

Checker = Callable[[ast.AST, object], "Iterator[tuple[ast.AST, str]] | None"]


@dataclass(frozen=True)
class Rule:
    """Metadata for one lint rule."""

    code: str
    name: str
    severity: Severity
    family: str
    description: str


RULES: dict[str, Rule] = {}
_CHECKERS: dict[type, list[tuple[Rule, Checker]]] = {}


def rule(
    *,
    code: str,
    name: str,
    severity: Severity,
    family: str,
    description: str,
    nodes: Iterable[type],
) -> Callable[[Checker], Checker]:
    """Register a checker for ``nodes`` under rule ``code``."""

    def register(fn: Checker) -> Checker:
        if code in RULES:
            raise ValueError(f"duplicate rule code {code}")
        meta = Rule(code, name, severity, family, description)
        RULES[code] = meta
        for node_type in nodes:
            _CHECKERS.setdefault(node_type, []).append((meta, fn))
        return fn

    return register


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by code."""
    return [RULES[code] for code in sorted(RULES)]


def get_rule(code: str) -> Rule:
    try:
        return RULES[code]
    except KeyError:
        raise KeyError(f"unknown rule code {code!r}") from None


def checkers_for(
    node_type: type, enabled: "set[str] | None" = None
) -> list[tuple[Rule, Checker]]:
    """Checkers registered for ``node_type`` (optionally filtered)."""
    pairs = _CHECKERS.get(node_type, [])
    if enabled is None:
        return list(pairs)
    return [(meta, fn) for meta, fn in pairs if meta.code in enabled]
