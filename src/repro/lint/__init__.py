"""Static analysis enforcing the repo's runtime contracts.

A visitor-based analyzer over Python's :mod:`ast` with four rule
families, each policing an invariant the test suite can only spot-check:

* **determinism** (RPR1xx) — all randomness flows through
  :mod:`repro.utils.rng`; no wall-clock reads or hash-order iteration in
  numeric paths (the ``workers=1`` vs ``workers=N`` bitwise guarantee).
* **fork-safety** (RPR2xx) — pool tasks are module-level and side-effect
  free; shared-memory segments have owned cleanup paths.
* **obs hygiene** (RPR3xx) — spans are ``with``-scoped, logging is
  lazily formatted, metrics go through the installed registry.
* **numeric API** (RPR4xx) — no autograd-bypassing ``.data`` writes
  outside sanctioned layers, no bare ``assert`` in library code.

Entry points: ``python -m repro.cli lint src/`` (text/JSON output,
baseline, exit codes), the pytest self-lint gate
(``tests/lint/test_self_lint.py``), and :func:`lint_source` for
fixture-driven rule tests.  Suppress single findings with
``# repro-lint: disable=RPR103`` (same line) or a
``# repro-lint: disable-file=...`` comment; park pre-existing debt in
the JSON baseline (``--write-baseline``).
"""

from __future__ import annotations

from repro.lint import rules  # noqa: F401  (registers every rule)
from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig, find_pyproject, load_config
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding, Severity, assign_fingerprints
from repro.lint.registry import RULES, Rule, all_rules, get_rule
from repro.lint.runner import LintResult, iter_python_files, lint_source, run_lint

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintResult",
    "ModuleContext",
    "RULES",
    "Rule",
    "Severity",
    "all_rules",
    "assign_fingerprints",
    "find_pyproject",
    "get_rule",
    "iter_python_files",
    "lint_source",
    "load_config",
    "run_lint",
]
