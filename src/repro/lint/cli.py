"""The ``repro lint`` subcommand: text/JSON output, baseline, exit codes.

Exit codes: ``0`` clean (no findings outside the baseline), ``1`` fresh
findings, ``2`` usage or I/O errors.  ``--write-baseline`` snapshots the
current findings into the baseline file and exits 0.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.config import load_config
from repro.lint.registry import RULES, all_rules
from repro.lint.runner import LintResult, run_lint

__all__ = ["configure_parser", "cmd_lint"]


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the lint subcommand's arguments to ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        default="text",
        choices=("text", "json"),
        help="output format",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline JSON (default: [tool.repro.lint].baseline)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all enabled)",
    )
    parser.add_argument(
        "--disable",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )


def _resolve_enabled(args: argparse.Namespace, config) -> "set[str] | None":
    enabled = config.enabled_codes(sorted(RULES))
    if args.select:
        selected = {code.strip().upper() for code in args.select.split(",") if code.strip()}
        unknown = selected - set(RULES)
        if unknown:
            raise SystemExit(_usage_error(f"unknown rule codes: {sorted(unknown)}"))
        enabled = selected
    if args.disable:
        enabled = enabled - {
            code.strip().upper() for code in args.disable.split(",") if code.strip()
        }
    return enabled


def _usage_error(message: str) -> int:
    print(f"repro lint: {message}", file=sys.stderr)
    return 2


def _print_rule_table() -> None:
    print(f"{'code':<8} {'severity':<8} {'family':<13} description")
    for meta in all_rules():
        print(f"{meta.code:<8} {meta.severity!s:<8} {meta.family:<13} {meta.description}")


def _render_text(result: LintResult, baseline_used: bool) -> str:
    lines: list[str] = []
    for finding in result.fresh:
        lines.append(finding.render())
        if finding.source_line:
            lines.append(f"    {finding.source_line}")
    summary = (
        f"{len(result.fresh)} fresh finding(s) in {result.files_checked} file(s)"
    )
    extras = []
    if baseline_used:
        extras.append(f"{len(result.baselined)} baselined")
        if result.stale_baseline:
            extras.append(f"{len(result.stale_baseline)} stale baseline entrie(s)")
    if result.suppressed:
        extras.append(f"{len(result.suppressed)} suppressed")
    if extras:
        summary += " (" + ", ".join(extras) + ")"
    lines.append(summary)
    for entry in result.stale_baseline:
        lines.append(
            f"stale baseline entry: {entry.get('path')}:{entry.get('line')} "
            f"{entry.get('code')} — remove it from the baseline"
        )
    return "\n".join(lines)


def _render_json(result: LintResult, baseline_used: bool) -> str:
    return json.dumps(
        {
            "fresh": [f.to_dict() for f in result.fresh],
            "baselined": [f.to_dict() for f in result.baselined],
            "suppressed": [f.to_dict() for f in result.suppressed],
            "stale_baseline": result.stale_baseline,
            "files_checked": result.files_checked,
            "baseline_used": baseline_used,
            "clean": result.clean,
        },
        indent=2,
    )


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        _print_rule_table()
        return 0
    config = load_config(Path.cwd())
    try:
        enabled = _resolve_enabled(args, config)
    except SystemExit as exc:
        return int(exc.code or 2)

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        return _usage_error(f"no such path(s): {missing}")

    baseline_path = None
    if not args.no_baseline:
        if args.baseline is not None:
            baseline_path = Path(args.baseline)
        else:
            baseline_path = config.baseline_path()

    if args.write_baseline:
        if baseline_path is None:
            return _usage_error("--write-baseline requires a baseline path")
        result = run_lint(args.paths, config=config, baseline=None, enabled=enabled)
        Baseline.from_findings(result.fresh).write(baseline_path)
        print(
            f"wrote {len(result.fresh)} finding(s) to {baseline_path} "
            f"({result.files_checked} file(s) checked)"
        )
        return 0

    baseline = None
    if baseline_path is not None and baseline_path.is_file():
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, json.JSONDecodeError) as exc:
            return _usage_error(f"cannot read baseline {baseline_path}: {exc}")

    result = run_lint(args.paths, config=config, baseline=baseline, enabled=enabled)
    if args.output_format == "json":
        print(_render_json(result, baseline is not None))
    else:
        print(_render_text(result, baseline is not None))
    return 0 if result.clean else 1
