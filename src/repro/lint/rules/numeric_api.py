"""Numeric API discipline rules (RPR4xx).

Guard rails around the autograd layer: ``Tensor.data`` writes bypass the
graph (gradients silently stop flowing through whatever was overwritten)
and are sanctioned only inside the optimizer/serialization layers; bare
``assert`` statements in library code evaporate under ``python -O``, so
invariants that matter must raise real exceptions.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.findings import Severity
from repro.lint.registry import rule

__all__ = []


def _data_attribute(target: ast.AST) -> ast.Attribute | None:
    """The ``<expr>.data`` attribute written by ``target``, if any.

    Catches both direct writes (``p.data = x``, ``p.data -= g``) and
    element writes through the attribute (``p.data[idx] = x``).
    """
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Attribute) and target.attr == "data":
        return target
    return None


@rule(
    code="RPR401",
    name="tensor-data-write",
    severity=Severity.WARNING,
    family="numeric-api",
    description=(
        "Writing <tensor>.data bypasses autograd; mutation is sanctioned "
        "only in the optimizer/serialization layers"
    ),
    nodes=(ast.Assign, ast.AugAssign),
)
def check_tensor_data_write(
    node: ast.Assign | ast.AugAssign, ctx: ModuleContext
) -> Iterator[tuple[ast.AST, str]]:
    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
    for target in targets:
        attr = _data_attribute(target)
        if attr is not None:
            yield node, (
                "write to .data bypasses autograd (gradients stop flowing "
                "through the overwritten values); use Tensor ops, or keep "
                "sanctioned mutation inside the optimizer/serialization layer"
            )


@rule(
    code="RPR402",
    name="bare-assert",
    severity=Severity.WARNING,
    family="numeric-api",
    description=(
        "assert in library (non-test) code disappears under python -O; "
        "raise an explicit exception for real invariants"
    ),
    nodes=(ast.Assert,),
)
def check_bare_assert(
    node: ast.Assert, ctx: ModuleContext
) -> Iterator[tuple[ast.AST, str]]:
    if ctx.is_test:
        return
    yield node, (
        "bare assert is stripped under python -O; raise ValueError/"
        "RuntimeError so the invariant survives optimised runs"
    )
