"""Determinism rules (RPR1xx).

The repo's reproducibility contract: every stochastic call threads an
explicit ``numpy.random.Generator`` created by :mod:`repro.utils.rng`,
no code reads wall-clock time inside numeric paths, and nothing
materialises a ``set`` into an ordered sequence without ``sorted()``.
One unseeded draw or hash-order iteration silently breaks the
``workers=1`` vs ``workers=4`` bitwise-equivalence guarantee.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.findings import Severity
from repro.lint.registry import rule

__all__ = []

# Consumers whose result order follows the iterable's order.
_ORDER_SENSITIVE_BUILTINS = {"list", "tuple", "enumerate", "iter", "next", "reversed"}
# Consumers whose result does not depend on iteration order.
_ORDER_FREE_CALLS = {
    "sorted",
    "set",
    "frozenset",
    "sum",
    "min",
    "max",
    "any",
    "all",
    "len",
}
_ORDER_SENSITIVE_NUMPY = {
    "numpy.array",
    "numpy.asarray",
    "numpy.asanyarray",
    "numpy.fromiter",
    "numpy.stack",
    "numpy.concatenate",
}
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}


@rule(
    code="RPR101",
    name="global-numpy-rng",
    severity=Severity.ERROR,
    family="determinism",
    description=(
        "Calls into numpy.random.* use the process-global (or ad-hoc) RNG; "
        "thread a Generator from repro.utils.rng instead"
    ),
    nodes=(ast.Call,),
)
def check_numpy_random_call(
    node: ast.Call, ctx: ModuleContext
) -> Iterator[tuple[ast.AST, str]]:
    name = ctx.qualname(node.func)
    if name is not None and name.startswith("numpy.random."):
        yield node, (
            f"call to {name} bypasses repro.utils.rng; accept a seed/Generator "
            "and route it through ensure_rng()/derive_rng()"
        )


@rule(
    code="RPR102",
    name="stdlib-random",
    severity=Severity.ERROR,
    family="determinism",
    description=(
        "The stdlib random module is process-global, unseeded here, and "
        "invisible to the repo's RNG plumbing"
    ),
    nodes=(ast.Import, ast.ImportFrom),
)
def check_stdlib_random_import(
    node: ast.Import | ast.ImportFrom, ctx: ModuleContext
) -> Iterator[tuple[ast.AST, str]]:
    if isinstance(node, ast.ImportFrom):
        if node.level == 0 and (node.module or "").split(".")[0] == "random":
            yield node, (
                "import from stdlib random; use repro.utils.rng generators instead"
            )
        return
    for alias in node.names:
        if alias.name.split(".")[0] == "random":
            yield node, (
                "import of stdlib random; use repro.utils.rng generators instead"
            )


@rule(
    code="RPR103",
    name="wall-clock-call",
    severity=Severity.WARNING,
    family="determinism",
    description=(
        "Wall-clock reads (time.time, datetime.now) are nondeterministic "
        "inputs; use time.perf_counter for durations or pass timestamps in"
    ),
    nodes=(ast.Call,),
)
def check_wall_clock(
    node: ast.Call, ctx: ModuleContext
) -> Iterator[tuple[ast.AST, str]]:
    name = ctx.qualname(node.func)
    if name in _WALL_CLOCK_CALLS:
        yield node, (
            f"{name}() reads the wall clock; use time.perf_counter for "
            "durations, or make the timestamp an explicit input"
        )


@rule(
    code="RPR104",
    name="set-order-iteration",
    severity=Severity.WARNING,
    family="determinism",
    description=(
        "Iterating or materialising a set produces hash-order-dependent "
        "sequences; wrap the set in sorted() at the boundary"
    ),
    nodes=(ast.For, ast.Call, ast.ListComp, ast.GeneratorExp),
)
def check_set_order(
    node: ast.AST, ctx: ModuleContext
) -> Iterator[tuple[ast.AST, str]]:
    if isinstance(node, ast.For):
        if ctx.is_set_expr(node.iter):
            yield node.iter, (
                "for-loop over a set iterates in hash order; loop over "
                "sorted(...) when order can reach results"
            )
        return
    if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
        if isinstance(node, ast.GeneratorExp):
            parent = ctx.parent(node)
            if (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in _ORDER_FREE_CALLS
            ):
                return
        for comp in node.generators:
            if ctx.is_set_expr(comp.iter):
                yield comp.iter, (
                    "comprehension over a set yields hash-ordered elements; "
                    "iterate sorted(...) instead"
                )
        return
    # ast.Call: ordered materialisers fed a set.
    func = node.func
    if not node.args:
        return
    first = node.args[0]
    target: str | None = None
    if isinstance(func, ast.Name) and func.id in _ORDER_SENSITIVE_BUILTINS:
        target = func.id
    else:
        qual = ctx.qualname(func)
        if qual in _ORDER_SENSITIVE_NUMPY:
            target = qual
        elif isinstance(func, ast.Attribute) and func.attr == "join":
            target = "str.join"
    if target is not None and ctx.is_set_expr(first):
        yield node, (
            f"{target}() over a set materialises hash order; use sorted(...) "
            "to fix a canonical order"
        )
