"""Observability-hygiene rules (RPR3xx).

The obs layer's cost model assumes three conventions: spans are opened
with ``with`` (a span's clock starts at creation, so parking one in a
variable inflates its duration and risks leaking it open), log messages
are lazily %-formatted (an f-string pays string formatting even when the
logger is disabled — the no-op fast path must stay one global read), and
metrics flow through the installed registry helpers rather than ad-hoc
``MetricsRegistry`` instances that nothing exports.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext, dotted_name
from repro.lint.findings import Severity
from repro.lint.registry import rule

__all__ = []

_SPAN_QUALNAMES = {"span", "repro.obs.span", "repro.obs.trace.span"}
_LOG_METHODS = {"debug", "info", "warning", "error", "exception", "critical", "log"}
_REGISTRY_QUALNAMES = {
    "MetricsRegistry",
    "repro.obs.MetricsRegistry",
    "repro.obs.metrics.MetricsRegistry",
}


def _is_logger_name(name: str) -> bool:
    last = name.split(".")[-1]
    return last == "logging" or "log" in last.lower()


@rule(
    code="RPR301",
    name="span-not-with",
    severity=Severity.WARNING,
    family="obs-hygiene",
    description=(
        "span() starts timing at the call; anything but `with span(...)` "
        "inflates the measured interval or leaks the span open"
    ),
    nodes=(ast.Call,),
)
def check_span_with(
    node: ast.Call, ctx: ModuleContext
) -> Iterator[tuple[ast.AST, str]]:
    name = ctx.qualname(node.func)
    if name not in _SPAN_QUALNAMES:
        return
    if ctx.in_with_item(node):
        return
    yield node, (
        "span() outside a with-block: the span's clock is already running "
        "and nothing guarantees it closes — use `with span(...) as sp:`"
    )


@rule(
    code="RPR302",
    name="eager-log-formatting",
    severity=Severity.WARNING,
    family="obs-hygiene",
    description=(
        "Pre-formatted log messages (f-string/%/.format/concat) pay "
        "formatting even when the logger is disabled; pass lazy %-args"
    ),
    nodes=(ast.Call,),
)
def check_eager_log_formatting(
    node: ast.Call, ctx: ModuleContext
) -> Iterator[tuple[ast.AST, str]]:
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr in _LOG_METHODS):
        return
    owner = dotted_name(func.value)
    if owner is None or not _is_logger_name(owner):
        return
    if not node.args:
        return
    msg = node.args[0] if func.attr != "log" else (
        node.args[1] if len(node.args) > 1 else None
    )
    if msg is None:
        return
    kind: str | None = None
    if isinstance(msg, ast.JoinedStr):
        kind = "f-string"
    elif isinstance(msg, ast.BinOp) and isinstance(msg.op, ast.Mod):
        kind = "%-formatted string"
    elif isinstance(msg, ast.BinOp) and isinstance(msg.op, ast.Add):
        kind = "concatenated string"
    elif (
        isinstance(msg, ast.Call)
        and isinstance(msg.func, ast.Attribute)
        and msg.func.attr == "format"
    ):
        kind = ".format() call"
    if kind is not None:
        yield msg, (
            f"{owner}.{func.attr}() given a pre-formatted {kind}; use lazy "
            f'formatting ({owner}.{func.attr}("... %s", value)) so the '
            "disabled path stays free"
        )


_MONITOR_QUALNAMES = {
    "ResourceMonitor",
    "repro.obs.ResourceMonitor",
    "repro.obs.monitor.ResourceMonitor",
}


def _is_enter_context_arg(node: ast.Call, ctx: ModuleContext) -> bool:
    """Whether ``node`` is passed to an ``ExitStack.enter_context(...)``."""
    parent = ctx.parent(node)
    return (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Attribute)
        and parent.func.attr == "enter_context"
        and parent.args
        and parent.args[0] is node
    )


@rule(
    code="RPR304",
    name="unowned-monitor",
    severity=Severity.WARNING,
    family="obs-hygiene",
    description=(
        "ResourceMonitor() starts a sampling thread; anything but "
        "`with ResourceMonitor(...)` (or ExitStack.enter_context) risks "
        "the thread outliving its work and surviving into forked workers"
    ),
    nodes=(ast.Call,),
)
def check_unowned_monitor(
    node: ast.Call, ctx: ModuleContext
) -> Iterator[tuple[ast.AST, str]]:
    name = ctx.qualname(node.func)
    if name not in _MONITOR_QUALNAMES:
        return
    if ctx.in_with_item(node) or _is_enter_context_arg(node, ctx):
        return
    yield node, (
        "ResourceMonitor outside an owning with-block: the sampler thread "
        "has no guaranteed stop point and a fork while it runs duplicates "
        "its state — use `with ResourceMonitor(...) as mon:` (or "
        "stack.enter_context)"
    )


_CACHE_CLASS_SUFFIXES = ("Recommender", "Frontend")
_DICT_FACTORY_NAMES = {"dict", "OrderedDict", "defaultdict", "Counter"}


def _enclosing_class(node: ast.AST, ctx: ModuleContext) -> ast.ClassDef | None:
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, ast.ClassDef):
            return ancestor
    return None


def _is_serving_class(cls: ast.ClassDef) -> bool:
    """A recommender/frontend by name, or by inheriting one."""
    if cls.name.endswith(_CACHE_CLASS_SUFFIXES):
        return True
    for base in cls.bases:
        name = dotted_name(base)
        if name is not None and name.split(".")[-1].endswith(_CACHE_CLASS_SUFFIXES):
            return True
    return False


def _is_dict_expr(value: ast.AST, ctx: ModuleContext) -> bool:
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return True
    if isinstance(value, ast.Call):
        name = ctx.qualname(value.func)
        return name is not None and name.split(".")[-1] in _DICT_FACTORY_NAMES
    return False


@rule(
    code="RPR305",
    name="unbounded-serving-cache",
    severity=Severity.WARNING,
    family="obs-hygiene",
    description=(
        "a dict used as a cache on a recommender/frontend class grows one "
        "entry per distinct key and is never evicted — a memory leak under "
        "production traffic; use repro.streaming.lru.LRUCache"
    ),
    nodes=(ast.Assign, ast.AnnAssign),
)
def check_unbounded_serving_cache(
    node: ast.Assign | ast.AnnAssign, ctx: ModuleContext
) -> Iterator[tuple[ast.AST, str]]:
    value = node.value
    if value is None or not _is_dict_expr(value, ctx):
        return
    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
    for target in targets:
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and "cache" in target.attr.lower()
        ):
            continue
        cls = _enclosing_class(node, ctx)
        if cls is None or not _is_serving_class(cls):
            continue
        yield target, (
            f"self.{target.attr} on {cls.name} is a plain dict used as a "
            "cache: it holds one entry per distinct key forever (unbounded "
            "under real traffic) — use repro.streaming.lru.LRUCache with a "
            "maxsize bound and eviction counters"
        )


@rule(
    code="RPR303",
    name="ad-hoc-registry",
    severity=Severity.WARNING,
    family="obs-hygiene",
    description=(
        "MetricsRegistry() outside the obs/parallel infrastructure records "
        "metrics nothing exports; use counter_add/gauge_set/observe_value"
    ),
    nodes=(ast.Call,),
)
def check_ad_hoc_registry(
    node: ast.Call, ctx: ModuleContext
) -> Iterator[tuple[ast.AST, str]]:
    name = ctx.qualname(node.func)
    if name in _REGISTRY_QUALNAMES:
        yield node, (
            "ad-hoc MetricsRegistry(); counters created here never reach an "
            "exporter — record through repro.obs counter_add/gauge_set/"
            "observe_value against the installed registry"
        )
