"""Rule families.  Importing this package registers every rule.

Modules register checkers with :func:`repro.lint.registry.rule` at import
time; nothing here is called directly.
"""

from __future__ import annotations

from repro.lint.rules import (  # noqa: F401  (imported for registration)
    determinism,
    fork_safety,
    numeric_api,
    obs_hygiene,
)

__all__ = ["determinism", "fork_safety", "obs_hygiene", "numeric_api"]
