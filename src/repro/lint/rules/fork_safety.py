"""Fork-safety rules (RPR2xx).

The parallel layer's contract (see :mod:`repro.parallel.pool`): task
callables must be module-level (workers import them by reference),
worker task functions must not write process-global state (the write
lands in the forked copy and is silently lost), and shared-memory
segments must have an owner with a guaranteed cleanup path.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext, dotted_name
from repro.lint.findings import Severity
from repro.lint.registry import rule

__all__ = []

_MAP_METHODS = {"map", "map_async", "imap", "imap_unordered", "starmap", "apply_async"}


@rule(
    code="RPR201",
    name="unpicklable-task",
    severity=Severity.ERROR,
    family="fork-safety",
    description=(
        "Lambdas and nested functions submitted to a pool map cannot be "
        "pickled by reference; use a module-level task function"
    ),
    nodes=(ast.Call,),
)
def check_unpicklable_task(
    node: ast.Call, ctx: ModuleContext
) -> Iterator[tuple[ast.AST, str]]:
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr in _MAP_METHODS):
        return
    if not node.args:
        return
    task = node.args[0]
    if isinstance(task, ast.Lambda):
        yield task, (
            f".{func.attr}() given a lambda; workers import tasks by "
            "reference — move the body to a module-level function"
        )
    elif isinstance(task, ast.Name) and task.id in ctx.nested_functions:
        yield task, (
            f".{func.attr}() given nested function {task.id!r}; closures do "
            "not pickle — move it to module level and pass state via context"
        )


@rule(
    code="RPR202",
    name="task-mutates-global",
    severity=Severity.WARNING,
    family="fork-safety",
    description=(
        "Worker task functions writing module-level mutable state mutate "
        "the forked copy; results must travel via return values"
    ),
    nodes=(ast.FunctionDef, ast.AsyncFunctionDef),
)
def check_task_global_mutation(
    node: ast.FunctionDef | ast.AsyncFunctionDef, ctx: ModuleContext
) -> Iterator[tuple[ast.AST, str]]:
    if node.name not in ctx.task_functions:
        return
    for stmt in ast.walk(node):
        if isinstance(stmt, ast.Global):
            yield stmt, (
                f"worker task {node.name!r} declares global "
                f"{', '.join(stmt.names)}; writes are lost in the fork — "
                "return the value instead"
            )
        elif isinstance(stmt, (ast.Assign, ast.AugAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                root = target
                while isinstance(root, (ast.Subscript, ast.Attribute)):
                    root = root.value
                if (
                    isinstance(root, ast.Name)
                    and root is not target
                    and root.id in ctx.module_level_mutables
                ):
                    yield stmt, (
                        f"worker task {node.name!r} writes module-level "
                        f"{root.id!r}; the mutation stays in the worker — "
                        "return the value instead"
                    )


@rule(
    code="RPR203",
    name="unowned-shared-segment",
    severity=Severity.WARNING,
    family="fork-safety",
    description=(
        "SharedMatrix segments need an owner with a cleanup path; create "
        "them through the shared_arrays() context manager"
    ),
    nodes=(ast.Call,),
)
def check_shared_matrix_lifecycle(
    node: ast.Call, ctx: ModuleContext
) -> Iterator[tuple[ast.AST, str]]:
    name = dotted_name(node.func)
    if name is None:
        return
    parts = name.split(".")
    is_ctor = parts[-1] == "SharedMatrix"
    is_factory = len(parts) >= 2 and parts[-2] == "SharedMatrix" and parts[-1] == "from_array"
    if not (is_ctor or is_factory):
        return
    if ctx.in_with_item(node):
        return
    yield node, (
        f"{name}() outside a with-block leaks the segment on error paths; "
        "use shared_arrays(pool, ...) or guarantee destroy() in a finally"
    )


_MEMMAP_CTORS = {"numpy.memmap", "numpy.lib.format.open_memmap"}


@rule(
    code="RPR205",
    name="unowned-memmap",
    severity=Severity.WARNING,
    family="fork-safety",
    description=(
        "np.memmap opened outside an owning context keeps the mapping "
        "(and its file handle) alive until GC; go through the shard "
        "storage helpers or a with-block"
    ),
    nodes=(ast.Call,),
)
def check_unowned_memmap(
    node: ast.Call, ctx: ModuleContext
) -> Iterator[tuple[ast.AST, str]]:
    name = ctx.qualname(node.func)
    if name not in _MEMMAP_CTORS:
        return
    if ctx.in_with_item(node):
        return
    yield node, (
        f"{name}() outside an owning context; forked workers inherit the "
        "mapping and the file cannot be reclaimed deterministically — use "
        "repro.shard.storage.open_block() or wrap the mapping's lifetime "
        "in a with-block"
    )
