"""File discovery + orchestration: parse, check, suppress, baseline.

The pipeline for each file: parse → :func:`~repro.lint.visitor.lint_module`
→ drop per-rule path excludes → split off suppressed findings → assign
fingerprints → split against the baseline.  Unparseable files surface as
an ``RPR001`` error finding rather than crashing the run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint import rules  # noqa: F401  (registers every rule)
from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding, Severity, assign_fingerprints
from repro.lint.registry import RULES
from repro.lint.visitor import lint_module

__all__ = ["LintResult", "run_lint", "lint_source", "iter_python_files"]

PARSE_ERROR_CODE = "RPR001"


@dataclass
class LintResult:
    """Outcome of one analyzer run."""

    fresh: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    stale_baseline: list[dict] = field(default_factory=list)
    files_checked: int = 0

    @property
    def all_findings(self) -> list[Finding]:
        """Every non-suppressed finding (fresh + baselined)."""
        return sorted(self.fresh + self.baselined, key=Finding.sort_key)

    @property
    def clean(self) -> bool:
        return not self.fresh


def iter_python_files(paths: "list[Path]", config: LintConfig) -> "list[Path]":
    """Python files under ``paths``, minus config excludes, sorted."""
    files: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
    return [
        file
        for file in sorted(files)
        if not config.is_excluded(_relpath(file, config.root))
    ]


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _apply_suppressions(
    findings: "list[Finding]", ctx: ModuleContext
) -> "tuple[list[Finding], list[Finding]]":
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        line_codes = ctx.line_suppressions.get(finding.line, set())
        if (
            "all" in ctx.file_suppressions
            or finding.code in ctx.file_suppressions
            or "all" in line_codes
            or finding.code in line_codes
        ):
            suppressed.append(finding)
        else:
            kept.append(finding)
    return kept, suppressed


def lint_file(
    path: Path, config: LintConfig, enabled: "set[str]"
) -> "tuple[list[Finding], list[Finding]]":
    """Findings for one file as ``(kept, suppressed)``."""
    rel = _relpath(path, config.root)
    source = path.read_text(encoding="utf-8")
    return lint_source(source, rel, config=config, enabled=enabled)


def lint_source(
    source: str,
    path: str = "<string>",
    config: "LintConfig | None" = None,
    enabled: "set[str] | None" = None,
) -> "tuple[list[Finding], list[Finding]]":
    """Lint a source string; returns ``(kept, suppressed)`` findings.

    The unit-test entry point: fixtures feed flagged / non-flagged
    snippets straight through without touching the filesystem.
    """
    config = config or LintConfig()
    if enabled is None:
        enabled = config.enabled_codes(sorted(RULES))
    try:
        ctx = ModuleContext(path, source)
    except SyntaxError as exc:
        finding = Finding(
            path=path,
            line=int(exc.lineno or 1),
            col=int(exc.offset or 1),
            code=PARSE_ERROR_CODE,
            message=f"file does not parse: {exc.msg}",
            severity=Severity.ERROR,
            source_line=(exc.text or "").strip(),
        )
        return assign_fingerprints([finding]), []
    findings = lint_module(ctx, enabled)
    findings = [
        f for f in findings if not config.rule_excluded(f.code, path)
    ]
    kept, suppressed = _apply_suppressions(findings, ctx)
    return assign_fingerprints(kept), suppressed


def run_lint(
    paths: "list[Path | str]",
    config: "LintConfig | None" = None,
    baseline: "Baseline | None" = None,
    enabled: "set[str] | None" = None,
) -> LintResult:
    """Lint ``paths`` and split the findings against ``baseline``."""
    config = config or LintConfig()
    if enabled is None:
        enabled = config.enabled_codes(sorted(RULES))
    result = LintResult()
    all_kept: list[Finding] = []
    for file in iter_python_files([Path(p) for p in paths], config):
        kept, suppressed = lint_file(file, config, enabled)
        all_kept.extend(kept)
        result.suppressed.extend(suppressed)
        result.files_checked += 1
    all_kept = assign_fingerprints(all_kept)
    if baseline is None:
        result.fresh = sorted(all_kept, key=Finding.sort_key)
    else:
        fresh, baselined, stale = baseline.split(all_kept)
        result.fresh = sorted(fresh, key=Finding.sort_key)
        result.baselined = sorted(baselined, key=Finding.sort_key)
        result.stale_baseline = stale
    return result
