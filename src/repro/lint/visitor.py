"""Single-pass AST walk dispatching to registered rule checkers."""

from __future__ import annotations

import ast

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, checkers_for

__all__ = ["lint_module"]


def _location(node: ast.AST, fallback: ast.AST) -> tuple[int, int]:
    lineno = getattr(node, "lineno", None)
    if lineno is None:
        lineno = getattr(fallback, "lineno", 1)
    col = getattr(node, "col_offset", 0)
    return int(lineno), int(col) + 1


def lint_module(ctx: ModuleContext, enabled: set[str] | None = None) -> list[Finding]:
    """Run every enabled checker over ``ctx`` and collect raw findings.

    Suppression comments, path excludes and the baseline are applied by
    the runner — this layer reports everything it sees so the runner can
    also count what was suppressed.
    """
    findings: list[Finding] = []
    dispatch: dict[type, list] = {}
    for node in ast.walk(ctx.tree):
        node_type = type(node)
        pairs = dispatch.get(node_type)
        if pairs is None:
            pairs = dispatch[node_type] = checkers_for(node_type, enabled)
        for meta, checker in pairs:
            results = checker(node, ctx)
            if results is None:
                continue
            for target, message in results:
                findings.append(_make_finding(meta, target, node, message, ctx))
    findings.sort(key=Finding.sort_key)
    return findings


def _make_finding(
    meta: Rule, target: ast.AST, visited: ast.AST, message: str, ctx: ModuleContext
) -> Finding:
    line, col = _location(target, visited)
    return Finding(
        path=ctx.path,
        line=line,
        col=col,
        code=meta.code,
        message=message,
        severity=meta.severity,
        source_line=ctx.source_line(line),
    )
