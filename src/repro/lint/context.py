"""Per-module analysis context shared by every rule checker.

One :class:`ModuleContext` is built per linted file.  It owns the parsed
tree plus the cheap whole-module indexes the rules need:

* a parent map (AST nodes do not know their parents),
* an import table so ``np.random.default_rng`` and
  ``numpy.random.default_rng`` resolve to the same dotted name,
* per-scope tracking of names that are (or may be) ``set``-typed, fed by
  annotations and assignments,
* the set of worker-task function names (anything passed by name to a
  ``.map`` / ``.map_async`` call),
* module-level mutable names (for the fork-safety rules),
* suppression comments (``# repro-lint: disable=...``).

Everything is computed in two linear passes over the tree at
construction; checkers then do O(1)-ish lookups.
"""

from __future__ import annotations

import ast
import re
from pathlib import PurePosixPath
from typing import Iterator

__all__ = ["ModuleContext", "dotted_name"]

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?P<file>-file)?\s*=\s*(?P<codes>[A-Za-z0-9_,\s]+|all)"
)

_SCOPE_TYPES = (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

_SET_TYPE_NAMES = {"set", "Set", "frozenset", "FrozenSet", "AbstractSet", "MutableSet"}

_MUTABLE_LITERALS = (
    ast.Dict,
    ast.List,
    ast.Set,
    ast.DictComp,
    ast.ListComp,
    ast.SetComp,
)

_MAP_METHOD_NAMES = {"map", "map_async", "imap", "imap_unordered", "starmap"}


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ModuleContext:
    """Parsed module plus the indexes rule checkers consult."""

    def __init__(self, path: str, source: str, tree: ast.Module | None = None) -> None:
        self.path = str(PurePosixPath(path))
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree if tree is not None else ast.parse(source, filename=path)
        parts = PurePosixPath(self.path).parts
        name = PurePosixPath(self.path).name
        self.is_test = (
            name.startswith("test_")
            or name == "conftest.py"
            or "tests" in parts
        )

        self.parents: dict[ast.AST, ast.AST] = {}
        self.imports: dict[str, str] = {}  # local alias -> module dotted path
        self.module_level_mutables: set[str] = set()
        self.task_functions: set[str] = set()
        self.nested_functions: set[str] = set()
        self._scope_sets: dict[ast.AST, set[str]] = {}
        self.line_suppressions: dict[int, set[str]] = {}
        self.file_suppressions: set[str] = set()

        self._index_tree()
        self._parse_suppressions()

    # -- construction passes -------------------------------------------
    def _index_tree(self) -> None:
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self._scope_sets[self.tree] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.level == 0:
                    for alias in node.names:
                        self.imports[alias.asname or alias.name] = (
                            f"{node.module}.{alias.name}"
                        )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scope_sets.setdefault(node, set())
                scope = self.enclosing_scope(node)
                if not isinstance(scope, ast.Module):
                    self.nested_functions.add(node.name)
                self._collect_arg_annotations(node)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and self._is_set_annotation(
                    node.annotation
                ):
                    self._mark_set_name(node, node.target.id)
            elif isinstance(node, ast.Assign):
                self._collect_assignment(node)
            elif isinstance(node, ast.Call):
                self._collect_map_call(node)

    def _collect_arg_annotations(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        args = fn.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is not None and self._is_set_annotation(arg.annotation):
                self._scope_sets.setdefault(fn, set()).add(arg.arg)

    def _collect_assignment(self, node: ast.Assign) -> None:
        scope = self.enclosing_scope(node)
        for target in node.targets:
            if not isinstance(target, ast.Name):
                continue
            if self.is_set_expr(node.value, scope=scope):
                self._mark_set_name(node, target.id)
            if isinstance(scope, ast.Module) and (
                isinstance(node.value, _MUTABLE_LITERALS)
                or (
                    isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Name)
                    and node.value.func.id in {"dict", "list", "set"}
                )
            ):
                self.module_level_mutables.add(target.id)

    def _collect_map_call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MAP_METHOD_NAMES
            and node.args
            and isinstance(node.args[0], ast.Name)
        ):
            self.task_functions.add(node.args[0].id)

    def _mark_set_name(self, node: ast.AST, name: str) -> None:
        scope = self.enclosing_scope(node)
        self._scope_sets.setdefault(scope, set()).add(name)

    def _parse_suppressions(self) -> None:
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            codes = {
                code.strip().upper()
                for code in match.group("codes").split(",")
                if code.strip()
            }
            if "ALL" in codes:
                codes = {"all"}
            if match.group("file"):
                self.file_suppressions |= codes
            else:
                self.line_suppressions.setdefault(lineno, set()).update(codes)

    # -- lookups --------------------------------------------------------
    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def enclosing_scope(self, node: ast.AST) -> ast.AST:
        """The innermost function (or the module) containing ``node``."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, _SCOPE_TYPES):
                return ancestor
        return self.tree

    def qualname(self, node: ast.AST) -> str | None:
        """Dotted name with the leading import alias resolved.

        ``np.random.default_rng`` becomes ``numpy.random.default_rng``
        when the module did ``import numpy as np``; ``span`` becomes
        ``repro.obs.span`` after ``from repro.obs import span``.  Names
        with no matching import resolve to their literal dotted form.
        """
        name = dotted_name(node)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        resolved = self.imports.get(head)
        if resolved is None:
            return name
        return f"{resolved}.{rest}" if rest else resolved

    def is_set_expr(self, node: ast.AST, scope: ast.AST | None = None) -> bool:
        """Whether ``node`` statically looks like a ``set`` value."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in {"set", "frozenset"}:
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)
        ):
            return self.is_set_expr(node.left, scope) or self.is_set_expr(
                node.right, scope
            )
        if isinstance(node, ast.Name):
            lookup = scope if scope is not None else self.enclosing_scope(node)
            while True:
                if node.id in self._scope_sets.get(lookup, ()):
                    return True
                if isinstance(lookup, ast.Module):
                    return False
                lookup = self.enclosing_scope(lookup)
        return False

    def _is_set_annotation(self, annotation: ast.AST) -> bool:
        """True when an annotation names (or includes, via ``|``) a set type."""
        if isinstance(annotation, ast.Name):
            return annotation.id in _SET_TYPE_NAMES
        if isinstance(annotation, ast.Subscript):
            return self._is_set_annotation(annotation.value)
        if isinstance(annotation, ast.Attribute):
            return annotation.attr in _SET_TYPE_NAMES
        if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
            return self._is_set_annotation(annotation.left) or self._is_set_annotation(
                annotation.right
            )
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            # String annotation: cheap textual check.
            return any(name in annotation.value for name in ("set[", "Set["))
        return False

    def in_with_item(self, call: ast.AST) -> bool:
        """Whether ``call`` is directly a ``with`` statement's context expr."""
        parent = self.parent(call)
        return isinstance(parent, ast.withitem) and parent.context_expr is call

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""
