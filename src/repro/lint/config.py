"""Lint configuration: defaults plus the ``[tool.repro.lint]`` block.

Example ``pyproject.toml`` block::

    [tool.repro.lint]
    baseline = "LINT_BASELINE.json"
    exclude = ["src/repro/_vendored"]
    disabled = []

    [tool.repro.lint.per_rule_excludes]
    RPR101 = ["src/repro/utils/rng.py"]

``exclude`` removes paths from the walk entirely; ``per_rule_excludes``
turns individual rules off for the named paths (prefix or glob match) —
the escape hatch for modules that *define* the sanctioned API a rule
polices elsewhere.
"""

from __future__ import annotations

import fnmatch
import tomllib
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

__all__ = ["LintConfig", "load_config", "find_pyproject"]

DEFAULT_BASELINE = "LINT_BASELINE.json"


@dataclass
class LintConfig:
    """Resolved analyzer configuration."""

    root: Path = field(default_factory=Path.cwd)
    enabled: list[str] | None = None  # None = all registered rules
    disabled: list[str] = field(default_factory=list)
    exclude: list[str] = field(default_factory=list)
    per_rule_excludes: dict[str, list[str]] = field(default_factory=dict)
    baseline: str | None = DEFAULT_BASELINE

    def enabled_codes(self, all_codes: "list[str]") -> set[str]:
        codes = set(self.enabled) if self.enabled is not None else set(all_codes)
        return codes - set(self.disabled)

    def baseline_path(self) -> Path | None:
        if not self.baseline:
            return None
        path = Path(self.baseline)
        return path if path.is_absolute() else self.root / path

    def is_excluded(self, relpath: str) -> bool:
        return _matches_any(relpath, self.exclude)

    def rule_excluded(self, code: str, relpath: str) -> bool:
        return _matches_any(relpath, self.per_rule_excludes.get(code, ()))


def _matches_any(relpath: str, patterns) -> bool:
    path = PurePosixPath(relpath).as_posix()
    for pattern in patterns:
        pat = PurePosixPath(pattern).as_posix().rstrip("/")
        if path == pat or path.startswith(pat + "/"):
            return True
        if fnmatch.fnmatch(path, pat):
            return True
    return False


def find_pyproject(start: Path) -> Path | None:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for directory in [current, *current.parents]:
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def load_config(start: "Path | str | None" = None) -> LintConfig:
    """Config from the nearest pyproject.toml (defaults when absent)."""
    base = Path(start) if start is not None else Path.cwd()
    pyproject = find_pyproject(base)
    if pyproject is None:
        root = base if base.is_dir() else base.parent
        return LintConfig(root=root.resolve())
    with pyproject.open("rb") as handle:
        data = tomllib.load(handle)
    section = data.get("tool", {}).get("repro", {}).get("lint", {})
    return LintConfig(
        root=pyproject.parent,
        enabled=list(section["enabled"]) if "enabled" in section else None,
        disabled=[str(c) for c in section.get("disabled", [])],
        exclude=[str(p) for p in section.get("exclude", [])],
        per_rule_excludes={
            str(code): [str(p) for p in paths]
            for code, paths in section.get("per_rule_excludes", {}).items()
        },
        baseline=section.get("baseline", DEFAULT_BASELINE),
    )
