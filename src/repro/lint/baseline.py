"""Checked-in JSON baseline: pre-existing findings that don't block CI.

The baseline stores fingerprints (file + rule + normalized source line +
occurrence index — see :func:`repro.lint.findings.assign_fingerprints`),
so it survives line-number drift but *not* edits to the offending line:
touch a baselined line and its finding comes back fresh, which is the
point — debt must be re-justified when the code around it changes.

Workflow: ``repro lint src/ --write-baseline`` snapshots the current
findings; subsequent runs report only findings whose fingerprint is not
in the file.  Entries whose finding disappeared are reported as stale so
the file can be shrunk.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.lint.findings import Finding

__all__ = ["Baseline", "BASELINE_VERSION"]

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """Fingerprint-keyed set of accepted findings."""

    entries: dict[str, dict[str, Any]] = field(default_factory=dict)
    path: Path | None = None

    @classmethod
    def load(cls, path: "Path | str") -> "Baseline":
        path = Path(path)
        if not path.is_file():
            return cls(path=path)
        data = json.loads(path.read_text())
        version = data.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"baseline {path} has version {version!r}; "
                f"this tool reads version {BASELINE_VERSION}"
            )
        entries = {entry["fingerprint"]: entry for entry in data.get("entries", [])}
        return cls(entries=entries, path=path)

    @classmethod
    def from_findings(cls, findings: "list[Finding]", path: "Path | None" = None) -> "Baseline":
        entries = {
            f.fingerprint: {
                "fingerprint": f.fingerprint,
                "code": f.code,
                "path": f.path,
                "line": f.line,
                "message": f.message,
            }
            for f in findings
        }
        return cls(entries=entries, path=path)

    def split(
        self, findings: "list[Finding]"
    ) -> "tuple[list[Finding], list[Finding], list[dict[str, Any]]]":
        """Partition into ``(fresh, baselined)`` plus stale entries."""
        fresh: list[Finding] = []
        baselined: list[Finding] = []
        seen: set[str] = set()
        for finding in findings:
            if finding.fingerprint in self.entries:
                baselined.append(finding)
                seen.add(finding.fingerprint)
            else:
                fresh.append(finding)
        stale = [
            entry for fp, entry in sorted(self.entries.items()) if fp not in seen
        ]
        return fresh, baselined, stale

    def to_json(self) -> dict[str, Any]:
        ordered = sorted(
            self.entries.values(),
            key=lambda e: (e.get("path", ""), e.get("line", 0), e.get("code", "")),
        )
        return {"version": BASELINE_VERSION, "tool": "repro.lint", "entries": ordered}

    def write(self, path: "Path | str | None" = None) -> Path:
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("no baseline path to write to")
        target.write_text(json.dumps(self.to_json(), indent=2, sort_keys=False) + "\n")
        return target
