"""Evaluation metrics: AUC, classification, ranking."""

from repro.metrics.auc import auc, roc_curve
from repro.metrics.classification import (
    accuracy,
    confusion_matrix,
    log_loss,
    precision_recall_f1,
)
from repro.metrics.ranking import hit_rate_at_k, ndcg_at_k, precision_at_k, recall_at_k

__all__ = [
    "auc",
    "roc_curve",
    "accuracy",
    "confusion_matrix",
    "log_loss",
    "precision_recall_f1",
    "hit_rate_at_k",
    "ndcg_at_k",
    "precision_at_k",
    "recall_at_k",
]
