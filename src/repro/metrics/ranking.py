"""Top-K ranking metrics for recommendation slates."""

from __future__ import annotations

import numpy as np

__all__ = ["recall_at_k", "precision_at_k", "ndcg_at_k", "hit_rate_at_k"]


def _top_k(scores: np.ndarray, k: int) -> np.ndarray:
    if k < 1:
        raise ValueError("k must be >= 1")
    k = min(k, len(scores))
    return np.argsort(-scores, kind="mergesort")[:k]


def recall_at_k(relevant: set[int], scores: np.ndarray, k: int) -> float:
    """|top-k ∩ relevant| / |relevant| (0.0 when nothing is relevant)."""
    if not relevant:
        return 0.0
    top = _top_k(scores, k)
    hits = sum(1 for item in top if int(item) in relevant)
    return hits / len(relevant)


def precision_at_k(relevant: set[int], scores: np.ndarray, k: int) -> float:
    """|top-k ∩ relevant| / k."""
    top = _top_k(scores, k)
    hits = sum(1 for item in top if int(item) in relevant)
    return hits / max(len(top), 1)


def hit_rate_at_k(relevant: set[int], scores: np.ndarray, k: int) -> float:
    """1.0 if any relevant item appears in the top-k."""
    top = _top_k(scores, k)
    return 1.0 if any(int(item) in relevant for item in top) else 0.0


def ndcg_at_k(relevant: set[int], scores: np.ndarray, k: int) -> float:
    """Binary-relevance normalised discounted cumulative gain."""
    if not relevant:
        return 0.0
    top = _top_k(scores, k)
    dcg = sum(
        1.0 / np.log2(rank + 2.0)
        for rank, item in enumerate(top)
        if int(item) in relevant
    )
    ideal_hits = min(len(relevant), len(top))
    idcg = sum(1.0 / np.log2(rank + 2.0) for rank in range(ideal_hits))
    return float(dcg / idcg) if idcg else 0.0
