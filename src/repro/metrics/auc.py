"""Area under the ROC curve — the paper's offline metric (Section IV-B-1)."""

from __future__ import annotations

import numpy as np

__all__ = ["auc", "roc_curve"]


def auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """AUC via the rank-sum (Mann–Whitney) formulation.

    Ties in ``scores`` receive mid-ranks, so the value matches the
    trapezoidal ROC integral exactly.  Raises if only one class is
    present (AUC undefined).
    """
    labels = np.asarray(labels).astype(bool)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same shape")
    n_pos = int(labels.sum())
    n_neg = len(labels) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("AUC requires both positive and negative samples")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(len(scores), dtype=np.float64)
    sorted_scores = scores[order]
    # Mid-ranks for ties.
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    rank_sum_pos = ranks[labels].sum()
    return float((rank_sum_pos - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def roc_curve(
    labels: np.ndarray, scores: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(fpr, tpr, thresholds) at every distinct score cut."""
    labels = np.asarray(labels).astype(bool)
    scores = np.asarray(scores, dtype=np.float64)
    order = np.argsort(-scores, kind="mergesort")
    sorted_labels = labels[order]
    sorted_scores = scores[order]
    distinct = np.flatnonzero(np.diff(sorted_scores)) if len(scores) > 1 else np.array([], dtype=int)
    cut_idx = np.concatenate([distinct, [len(labels) - 1]])
    tps = np.cumsum(sorted_labels)[cut_idx]
    fps = (cut_idx + 1) - tps
    n_pos = max(int(labels.sum()), 1)
    n_neg = max(len(labels) - int(labels.sum()), 1)
    tpr = np.concatenate([[0.0], tps / n_pos])
    fpr = np.concatenate([[0.0], fps / n_neg])
    thresholds = np.concatenate([[np.inf], sorted_scores[cut_idx]])
    return fpr, tpr, thresholds
