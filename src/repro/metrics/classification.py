"""Binary-classification metrics beyond AUC."""

from __future__ import annotations

import numpy as np

__all__ = ["log_loss", "accuracy", "precision_recall_f1", "confusion_matrix"]


def log_loss(labels: np.ndarray, probs: np.ndarray, eps: float = 1e-12) -> float:
    """Mean negative log-likelihood of Bernoulli labels under ``probs``."""
    labels = np.asarray(labels, dtype=np.float64)
    probs = np.clip(np.asarray(probs, dtype=np.float64), eps, 1.0 - eps)
    if labels.shape != probs.shape:
        raise ValueError("labels and probs must have the same shape")
    return float(-np.mean(labels * np.log(probs) + (1 - labels) * np.log(1 - probs)))


def accuracy(labels: np.ndarray, probs: np.ndarray, threshold: float = 0.5) -> float:
    """Fraction of correct hard decisions at ``threshold``."""
    labels = np.asarray(labels).astype(int)
    preds = (np.asarray(probs) >= threshold).astype(int)
    return float(np.mean(labels == preds))


def confusion_matrix(
    labels: np.ndarray, probs: np.ndarray, threshold: float = 0.5
) -> np.ndarray:
    """2x2 matrix [[tn, fp], [fn, tp]]."""
    labels = np.asarray(labels).astype(int)
    preds = (np.asarray(probs) >= threshold).astype(int)
    tp = int(np.sum((labels == 1) & (preds == 1)))
    tn = int(np.sum((labels == 0) & (preds == 0)))
    fp = int(np.sum((labels == 0) & (preds == 1)))
    fn = int(np.sum((labels == 1) & (preds == 0)))
    return np.array([[tn, fp], [fn, tp]])


def precision_recall_f1(
    labels: np.ndarray, probs: np.ndarray, threshold: float = 0.5
) -> tuple[float, float, float]:
    """(precision, recall, F1) at ``threshold``; 0.0 on empty denominators."""
    (_, fp), (fn, tp) = confusion_matrix(labels, probs, threshold)
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return float(precision), float(recall), float(f1)
