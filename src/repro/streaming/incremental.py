"""Incremental bipartite graph: O(delta) appends over a frozen CSR.

:class:`~repro.graph.bipartite.BipartiteGraph` is immutable — its twin
CSR layout is what makes neighbour queries O(degree) — so streaming
updates are staged *next to* it: appended edges and vertices land in
per-side overlay buffers (O(delta) per append, no CSR rebuild), and
neighbour queries concatenate the frozen CSR row with the overlay row.
Periodic **compaction** folds the overlay into a fresh CSR once it grows
past a configurable fraction of the base graph, amortising the rebuild
over many appends.

Every mutation records its endpoints in a **dirty-vertex frontier**
(:attr:`dirty_users` / :attr:`dirty_items`), which is exactly the seed
set :meth:`repro.streaming.StreamingEmbedder.refresh` propagates P hops
to find the embedding rows that need recomputation.  The frontier
survives compaction and is cleared only by :meth:`clear_dirty` (i.e. by
a successful refresh).
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.obs.metrics import counter_add

__all__ = ["IncrementalBipartiteGraph"]


class IncrementalBipartiteGraph:
    """A :class:`BipartiteGraph` plus an O(delta) mutation overlay.

    Parameters
    ----------
    base:
        The frozen starting graph.
    compact_threshold:
        Auto-compact when pending edges exceed this fraction of the base
        graph's edge count (``None`` disables auto-compaction; call
        :meth:`compact` manually).

    Semantics mirror the immutable constructor: re-adding an existing
    (user, item) edge *increases its weight* (duplicates merge by
    summing), and edge weights must be positive.
    """

    def __init__(
        self,
        base: BipartiteGraph,
        compact_threshold: float | None = 0.25,
    ) -> None:
        if compact_threshold is not None and compact_threshold <= 0:
            raise ValueError("compact_threshold must be positive (or None)")
        self._base = base
        self.compact_threshold = compact_threshold
        self.compactions = 0
        # Overlay state: appended edges as (user, item, weight) column
        # buffers plus per-row adjacency for O(degree + delta) queries.
        self._pending_edges: list[np.ndarray] = []
        self._pending_weights: list[np.ndarray] = []
        self._pending_user_adj: dict[int, list[tuple[int, float]]] = {}
        self._pending_item_adj: dict[int, list[tuple[int, float]]] = {}
        self._pending_user_features: list[np.ndarray] = []
        self._pending_item_features: list[np.ndarray] = []
        self._extra_users = 0
        self._extra_items = 0
        self._pending_edge_count = 0
        self._dirty_users: set[int] = set()
        self._dirty_items: set[int] = set()
        self._materialised: BipartiteGraph | None = base

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def num_users(self) -> int:
        return self._base.num_users + self._extra_users

    @property
    def num_items(self) -> int:
        return self._base.num_items + self._extra_items

    @property
    def pending_edges(self) -> int:
        """Appended edges not yet folded into the base CSR."""
        return self._pending_edge_count

    @property
    def num_edges(self) -> int:
        """Deduplicated edge count (materialises the overlay if pending)."""
        return self.graph.num_edges

    @property
    def dirty_users(self) -> np.ndarray:
        """Sorted user ids touched since the last :meth:`clear_dirty`."""
        return np.fromiter(sorted(self._dirty_users), dtype=np.int64, count=len(self._dirty_users))

    @property
    def dirty_items(self) -> np.ndarray:
        """Sorted item ids touched since the last :meth:`clear_dirty`."""
        return np.fromiter(sorted(self._dirty_items), dtype=np.int64, count=len(self._dirty_items))

    @property
    def dirty_fraction(self) -> float:
        """Dirty vertices / all vertices — the degradation signal."""
        return (len(self._dirty_users) + len(self._dirty_items)) / (
            self.num_users + self.num_items
        )

    def clear_dirty(self) -> None:
        """Reset the dirty frontier (call after a successful refresh)."""
        self._dirty_users.clear()
        self._dirty_items.clear()

    # ------------------------------------------------------------------
    # Mutation (O(delta) per call)
    # ------------------------------------------------------------------
    def add_edges(
        self, edges: np.ndarray, weights: np.ndarray | None = None
    ) -> None:
        """Append (user, item) edges; duplicates merge by weight sum."""
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if weights is None:
            weights = np.ones(len(edges), dtype=np.float64)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != (len(edges),):
                raise ValueError("weights must align one-to-one with edges")
            if len(weights) and weights.min() <= 0:
                raise ValueError("edge weights must be positive")
        if not len(edges):
            return
        if edges[:, 0].min() < 0 or edges[:, 0].max() >= self.num_users:
            raise ValueError("user index out of range")
        if edges[:, 1].min() < 0 or edges[:, 1].max() >= self.num_items:
            raise ValueError("item index out of range")
        self._pending_edges.append(edges)
        self._pending_weights.append(weights)
        self._pending_edge_count += len(edges)
        for (u, i), w in zip(edges, weights):
            u, i, w = int(u), int(i), float(w)
            self._pending_user_adj.setdefault(u, []).append((i, w))
            self._pending_item_adj.setdefault(i, []).append((u, w))
        self._dirty_users.update(int(u) for u in edges[:, 0])
        self._dirty_items.update(int(i) for i in edges[:, 1])
        self._materialised = None
        counter_add("streaming.edges_appended", len(edges))
        self._maybe_compact()

    def add_users(
        self, count: int = 1, features: np.ndarray | None = None
    ) -> np.ndarray:
        """Append ``count`` isolated users; returns their new ids."""
        return self._add_vertices("user", count, features)

    def add_items(
        self, count: int = 1, features: np.ndarray | None = None
    ) -> np.ndarray:
        """Append ``count`` isolated items; returns their new ids."""
        return self._add_vertices("item", count, features)

    def _add_vertices(
        self, side: str, count: int, features: np.ndarray | None
    ) -> np.ndarray:
        if count < 1:
            raise ValueError("count must be >= 1")
        base_feats = (
            self._base.user_features if side == "user" else self._base.item_features
        )
        if base_feats is not None:
            if features is None:
                raise ValueError(
                    f"base graph has {side} features; new {side}s need feature rows"
                )
            features = np.asarray(features, dtype=np.float64).reshape(count, -1)
            if features.shape[1] != base_feats.shape[1]:
                raise ValueError(
                    f"{side} features must have dim {base_feats.shape[1]}, "
                    f"got {features.shape[1]}"
                )
        elif features is not None:
            raise ValueError(f"base graph has no {side} features to extend")
        start = self.num_users if side == "user" else self.num_items
        ids = np.arange(start, start + count, dtype=np.int64)
        if side == "user":
            self._extra_users += count
            if features is not None:
                self._pending_user_features.append(features)
            self._dirty_users.update(int(v) for v in ids)
        else:
            self._extra_items += count
            if features is not None:
                self._pending_item_features.append(features)
            self._dirty_items.update(int(v) for v in ids)
        self._materialised = None
        counter_add(f"streaming.{side}s_appended", count)
        return ids

    # ------------------------------------------------------------------
    # Overlay queries (O(degree + per-row delta))
    # ------------------------------------------------------------------
    def item_neighbors(self, user: int) -> np.ndarray:
        """Items adjacent to ``user``: frozen CSR row + overlay appends."""
        pending = self._pending_user_adj.get(int(user))
        base = (
            self._base.item_neighbors(user)
            if user < self._base.num_users
            else np.empty(0, dtype=np.int64)
        )
        if not pending:
            return base
        return np.concatenate([base, np.array([i for i, _ in pending], dtype=np.int64)])

    def user_neighbors(self, item: int) -> np.ndarray:
        """Users adjacent to ``item``: frozen CSR row + overlay appends."""
        pending = self._pending_item_adj.get(int(item))
        base = (
            self._base.user_neighbors(item)
            if item < self._base.num_items
            else np.empty(0, dtype=np.int64)
        )
        if not pending:
            return base
        return np.concatenate([base, np.array([u for u, _ in pending], dtype=np.int64)])

    def user_degree(self, user: int) -> int:
        base = self._base.user_degree(user) if user < self._base.num_users else 0
        return base + len(self._pending_user_adj.get(int(user), ()))

    def item_degree(self, item: int) -> int:
        base = self._base.item_degree(item) if item < self._base.num_items else 0
        return base + len(self._pending_item_adj.get(int(item), ()))

    # ------------------------------------------------------------------
    # Materialisation and compaction
    # ------------------------------------------------------------------
    @property
    def graph(self) -> BipartiteGraph:
        """The current graph as an immutable :class:`BipartiteGraph`.

        Cached between mutations; when the overlay is empty this *is*
        the base graph (no copy).  Samplers and embedders consume this
        view — the refresh path builds it once per refresh, so the
        rebuild cost is amortised exactly like compaction.
        """
        if self._materialised is None:
            self._materialised = self._materialise()
        return self._materialised

    def _materialise(self) -> BipartiteGraph:
        base = self._base
        if self._pending_edge_count:
            edges = np.concatenate([base.edges] + self._pending_edges)
            weights = np.concatenate([base.edge_weights] + self._pending_weights)
        else:
            edges, weights = base.edges, base.edge_weights
        return BipartiteGraph(
            self.num_users,
            self.num_items,
            edges,
            weights,
            self._extended_features("user"),
            self._extended_features("item"),
        )

    def _extended_features(self, side: str) -> np.ndarray | None:
        base = self._base.user_features if side == "user" else self._base.item_features
        if base is None:
            return None
        pending = (
            self._pending_user_features
            if side == "user"
            else self._pending_item_features
        )
        if not pending:
            return base
        return np.concatenate([base] + pending)

    def compact(self) -> BipartiteGraph:
        """Fold the overlay into a fresh base CSR; returns the new base.

        The dirty frontier is *not* cleared — compaction changes the
        storage layout, not which embedding rows are stale.
        """
        if self._pending_edge_count or self._extra_users or self._extra_items:
            self._base = self.graph  # materialises (and caches) first
            self._pending_edges.clear()
            self._pending_weights.clear()
            self._pending_user_adj.clear()
            self._pending_item_adj.clear()
            self._pending_user_features.clear()
            self._pending_item_features.clear()
            self._extra_users = 0
            self._extra_items = 0
            self._pending_edge_count = 0
            self.compactions += 1
            counter_add("streaming.compactions", 1)
        return self._base

    def _maybe_compact(self) -> None:
        if self.compact_threshold is None:
            return
        if self._pending_edge_count > self.compact_threshold * max(
            self._base.num_edges, 1
        ):
            self.compact()

    def __repr__(self) -> str:
        return (
            f"IncrementalBipartiteGraph(users={self.num_users}, "
            f"items={self.num_items}, pending_edges={self.pending_edges}, "
            f"dirty={len(self._dirty_users)}u/{len(self._dirty_items)}i, "
            f"compactions={self.compactions})"
        )
