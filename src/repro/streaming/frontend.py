"""Micro-batched serving frontend over streaming embeddings.

:class:`ServingFrontend` is the request-side of the streaming stack: it
owns an :class:`IncrementalBipartiteGraph` (edges keep arriving), a
:class:`StreamingEmbedder` (embeddings follow via delta refresh), and a
bounded LRU slate cache.  Requests are served in **micro-batches** — one
``Z_u[batch] @ Z_cand.T`` matmul scores a whole batch of cache-missing
users at once — with per-request latency (amortised over the batch for
misses) recorded in the ``serving.latency_ms`` histogram, so the load
bench reads p50/p99 straight from :mod:`repro.obs`.

Cold-start admission: a user added since the last refresh has no
embedding row yet; those requests are admitted through the ``fallback``
recommender (the taxonomy recommender in the load bench) instead of
being dropped, until the next refresh embeds them.

Graceful degradation: when the graph's dirty fraction exceeds
``refresh_dirty_threshold`` the frontend refreshes before serving, and
the embedder itself degrades a too-large delta to a full recompute — so
a flood of updates costs one full pass, never a wrong slate.
"""

from __future__ import annotations

import time

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.obs import span
from repro.obs.metrics import counter_add, observe
from repro.streaming.incremental import IncrementalBipartiteGraph
from repro.streaming.lru import LRUCache
from repro.streaming.refresh import RefreshStats, StreamingEmbedder

__all__ = ["ServingFrontend"]


class ServingFrontend:
    """Serve top-k slates from continuously refreshed embeddings.

    Parameters
    ----------
    graph:
        The serving graph; a plain :class:`BipartiteGraph` is wrapped in
        an :class:`IncrementalBipartiteGraph` automatically.
    embedder:
        The delta-refresh embedder (its model scores via inner product
        of the final-step user/item embeddings).
    candidate_items:
        Fixed candidate pool to rank.  ``None`` ranks every item in the
        graph (the pool grows as items are ingested and refreshed).
    fallback:
        Cold-start recommender (anything with the
        :class:`~repro.serving.environment.Recommender` interface) for
        users with no embedding row yet.  ``None`` serves cold users an
        empty slate.
    cache_size:
        Bound of the LRU slate cache (0 disables caching).
    microbatch:
        Maximum number of cache-missing requests scored per matmul.
    refresh_dirty_threshold:
        When set, :meth:`serve` refreshes first whenever the graph's
        dirty fraction exceeds this value.
    """

    def __init__(
        self,
        graph: BipartiteGraph | IncrementalBipartiteGraph,
        embedder: StreamingEmbedder,
        candidate_items: np.ndarray | None = None,
        fallback=None,
        cache_size: int = 4096,
        microbatch: int = 256,
        refresh_dirty_threshold: float | None = None,
    ) -> None:
        if microbatch < 1:
            raise ValueError("microbatch must be >= 1")
        if not isinstance(graph, IncrementalBipartiteGraph):
            graph = IncrementalBipartiteGraph(graph)
        self.graph = graph
        self.embedder = embedder
        self.fallback = fallback
        self.microbatch = int(microbatch)
        self.refresh_dirty_threshold = refresh_dirty_threshold
        self._fixed_candidates = (
            np.asarray(candidate_items, dtype=np.int64)
            if candidate_items is not None
            else None
        )
        # user -> (k, slate); a cached slate serves any request with a
        # smaller or equal k (prefix of the same ranking).
        self._slates = LRUCache(cache_size, metric_prefix="serving.slate")
        self._z_user: np.ndarray | None = None
        self._candidates: np.ndarray | None = None
        self._z_cand: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Embedding lifecycle
    # ------------------------------------------------------------------
    def warm(self, workers: int | None = None) -> None:
        """Full embedding pass; must run once before serving."""
        self.embedder.full_embed(self.graph.graph, workers=workers)
        self.graph.clear_dirty()
        self._adopt_embeddings()

    def refresh(self, workers: int | None = None) -> RefreshStats:
        """Delta-refresh embeddings and invalidate stale slates.

        Any recomputed row can reorder any slate (scores are inner
        products against the candidate matrix), so the slate cache is
        cleared whenever the refresh changed anything.
        """
        self.embedder.refresh(self.graph, workers=workers)
        stats = self.embedder.last_stats
        if stats.rows_recomputed:
            self._slates.clear()
            counter_add("serving.cache_invalidations", 1)
        self._adopt_embeddings()
        return stats

    def _adopt_embeddings(self) -> None:
        z_user, z_item = self.embedder.embeddings
        self._z_user = z_user
        self._candidates = (
            self._fixed_candidates
            if self._fixed_candidates is not None
            else np.arange(len(z_item), dtype=np.int64)
        )
        self._z_cand = z_item[self._candidates]

    # ------------------------------------------------------------------
    # Graph updates
    # ------------------------------------------------------------------
    def ingest(self, edges: np.ndarray, weights: np.ndarray | None = None) -> None:
        """Append interaction edges; embeddings go stale until refresh."""
        self.graph.add_edges(edges, weights)

    @property
    def hit_rate(self) -> float:
        return self._slates.hit_rate

    @property
    def cache(self) -> LRUCache:
        return self._slates

    # ------------------------------------------------------------------
    # Request loop
    # ------------------------------------------------------------------
    def request(self, user: int, k: int) -> np.ndarray:
        """Serve a single request (a micro-batch of one)."""
        return self.serve(np.asarray([user]), k)[0]

    def serve(self, users: np.ndarray, k: int) -> list[np.ndarray]:
        """Serve one slate per requested user, in request order.

        Cache hits are answered immediately; misses are scored in
        micro-batches of ``microbatch`` users per matmul.  Every request
        records a ``serving.latency_ms`` observation (micro-batch time
        amortised per request for misses).
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if self._z_user is None:
            raise RuntimeError("frontend is cold — call warm() first")
        if (
            self.refresh_dirty_threshold is not None
            and self.graph.dirty_fraction > self.refresh_dirty_threshold
        ):
            self.refresh()
        users = np.asarray(users, dtype=np.int64)
        with span("serving.serve", requests=len(users), k=k):
            slates: list[np.ndarray | None] = [None] * len(users)
            pending: list[tuple[int, int]] = []
            # Micro-batches flush as they fill (not after scanning the
            # whole request list), so a repeat visitor later in the same
            # call hits the slate cached by an earlier batch.
            for pos, user in enumerate(users):
                user = int(user)
                t0 = time.perf_counter()
                cached = self._slates.get_if(user, lambda v: v[0] >= k)
                if cached is not None:
                    slates[pos] = cached[1][:k]
                    counter_add("serving.requests", 1)
                    observe(
                        "serving.latency_ms", (time.perf_counter() - t0) * 1e3
                    )
                else:
                    pending.append((pos, user))
                    if len(pending) >= self.microbatch:
                        self._serve_batch(pending, k, slates)
                        pending = []
            if pending:
                self._serve_batch(pending, k, slates)
        return slates

    def _serve_batch(
        self,
        batch: list[tuple[int, int]],
        k: int,
        slates: list[np.ndarray | None],
    ) -> None:
        """Score one micro-batch of cache misses and fill ``slates``."""
        # Imported here: repro.serving.recommend itself uses the
        # streaming LRU, so a module-level import would be circular.
        from repro.serving.recommend import stable_topk

        t0 = time.perf_counter()
        num_embedded = len(self._z_user)
        warm = [(pos, user) for pos, user in batch if user < num_embedded]
        cold = [(pos, user) for pos, user in batch if user >= num_embedded]
        if warm:
            rows = self._z_user[np.asarray([u for _, u in warm])]
            scores = rows @ self._z_cand.T
            for (pos, user), row in zip(warm, scores):
                slate = self._candidates[stable_topk(row, k)]
                self._slates.put(user, (k, slate))
                slates[pos] = slate
        for pos, user in cold:
            counter_add("serving.cold_start", 1)
            if self.fallback is not None:
                slate = np.asarray(self.fallback.recommend(user, k), dtype=np.int64)
            else:
                slate = np.empty(0, dtype=np.int64)
            self._slates.put(user, (k, slate))
            slates[pos] = slate
        counter_add("serving.requests", len(batch))
        elapsed_ms = (time.perf_counter() - t0) * 1e3
        observe("serving.batch_ms", elapsed_ms)
        per_request = elapsed_ms / len(batch)
        for _ in batch:
            observe("serving.latency_ms", per_request)
