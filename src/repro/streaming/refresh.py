"""Delta-aware online embedding refresh over cached layer-wise matrices.

The layer-wise inference of PR 1 already caches the step ``p-1`` matrix
while computing step ``p`` — exactly the structure Cascade-BGNN exploits
for cheap per-layer recomputation.  :class:`StreamingEmbedder` keeps
*all* per-step matrices alive between calls so that after a graph delta
only the rows whose inputs could have changed are recomputed.

Two design decisions make :meth:`StreamingEmbedder.refresh` **bitwise
identical** to a full pass over the mutated graph (not merely close):

1. **Content-addressed sampling.**  ``BipartiteGraphSAGE`` draws
   neighbours from one sequential RNG stream, so recomputing a subset of
   chunks would consume a different part of the stream than a full pass.
   Here the RNG for every chunk is derived *purely from its coordinates*
   — ``derive_rng(sample_seed, key, side, step, chunk_index)`` — so a
   full pass and a delta pass draw identical neighbours for the same
   chunk, and chunks left untouched keep draws identical to what a full
   pass would have drawn for them.

2. **Whole-chunk recomputation.**  BLAS matmuls are not guaranteed
   bitwise-stable across operand shapes, so refreshing individual rows
   through a smaller matmul could differ in the last ulp.  Refresh
   instead recomputes every chunk containing at least one affected row
   with the *exact same* ``(start, stop, neigh)`` task shape through the
   same :func:`repro.core.sage._layerwise_chunk` kernel — identical
   inputs through identical code is identical bytes, at any worker
   count (tasks are materialised and reduced in fixed submission order).

The affected set is propagated conservatively: a row is affected at step
``p`` if it is new, its adjacency changed (dirty), it was affected at
step ``p-1``, or it is adjacent to a vertex of the opposite side that
was affected at step ``p-1``.  Sampled neighbours are a subset of actual
neighbours, so this is a superset of the rows whose values can change —
every untouched row provably reads only unchanged inputs.

When the affected fraction exceeds ``degrade_threshold`` the refresh
gracefully degrades to a full pass (same result, simpler execution).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.sage import _layerwise_chunk
from repro.graph.bipartite import BipartiteGraph
from repro.graph.sampling import NeighborSampler
from repro.obs import span
from repro.obs.metrics import counter_add, observe
from repro.parallel import get_pool, shared_arrays
from repro.streaming.incremental import IncrementalBipartiteGraph
from repro.utils.rng import derive_rng

__all__ = ["RefreshStats", "StreamingEmbedder"]

# Key separating the streaming sampling stream from every other
# derive_rng consumer (the trainer uses small integer keys).
_STREAM_KEY = 0x51BE
_SIDE_ID = {"user": 0, "item": 1}
_SIDES = ("user", "item")


def _csr_neighbors(csr, vertices: np.ndarray) -> np.ndarray:
    """Concatenated CSR adjacency rows for ``vertices`` (vectorised)."""
    if len(vertices) == 0:
        return np.empty(0, dtype=np.int64)
    starts = csr.indptr[vertices]
    counts = csr.indptr[vertices + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    return csr.indices[np.repeat(starts, counts) + offsets]


@dataclass(frozen=True)
class RefreshStats:
    """What a :meth:`StreamingEmbedder.refresh` call actually did."""

    mode: str  # "delta" or "full"
    degraded: bool  # True when a delta request fell back to a full pass
    dirty_users: int
    dirty_items: int
    affected_rows: int  # conservative affected set, summed over steps
    rows_recomputed: int  # chunk-rounded rows actually recomputed
    rows_total: int  # all rows across all steps and both sides
    chunks_recomputed: int
    chunks_total: int

    @property
    def recompute_fraction(self) -> float:
        return self.rows_recomputed / self.rows_total if self.rows_total else 0.0


class StreamingEmbedder:
    """Layer-wise embeddings with delta-aware refresh for a SAGE model.

    Parameters
    ----------
    model:
        A :class:`~repro.core.sage.BipartiteGraphSAGE` whose weights are
        treated as frozen between :meth:`full_embed` and
        :meth:`refresh` (retrain → call :meth:`full_embed` again).
    sample_seed:
        Root of the content-addressed sampling stream.  Two embedders
        with the same seed, model, and graph produce identical bytes.
    batch_size:
        Chunk size of the layer-wise passes; also the refresh
        granularity (whole chunks are recomputed).
    degrade_threshold:
        Fall back to a full pass when the chunk-rounded recompute
        fraction exceeds this value.
    """

    def __init__(
        self,
        model,
        sample_seed: int = 0,
        batch_size: int = 2048,
        degrade_threshold: float = 0.25,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not 0.0 < degrade_threshold <= 1.0:
            raise ValueError("degrade_threshold must be in (0, 1]")
        self.model = model
        self.sample_seed = int(sample_seed)
        self.batch_size = int(batch_size)
        self.degrade_threshold = float(degrade_threshold)
        # Per-step matrices for steps 0..P ({"user": ..., "item": ...});
        # step 0 aliases the graph's feature matrices (immutable).
        self._h: list[dict[str, np.ndarray]] | None = None
        self._shape: tuple[int, int] | None = None
        self.last_stats: RefreshStats | None = None

    # ------------------------------------------------------------------
    # Full pass
    # ------------------------------------------------------------------
    def full_embed(
        self, graph: BipartiteGraph, workers: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Embed every vertex, caching all per-step matrices.

        Mathematically the same computation as
        ``model.embed_all(mode="layerwise")`` — only the neighbour draws
        come from the content-addressed stream instead of the model's
        sequential one, which is what makes partial recomputation
        exact.
        """
        pool = get_pool(workers)
        cfg = self.model.config
        with span(
            "streaming.full_embed",
            num_users=graph.num_users,
            num_items=graph.num_items,
        ):
            h: list[dict[str, np.ndarray]] = [
                {side: self.model._features(graph, side) for side in _SIDES}
            ]
            for step in range(1, cfg.num_steps + 1):
                h.append(
                    {
                        side: self._pass(
                            graph,
                            h[step - 1][side],
                            h[step - 1]["item" if side == "user" else "user"],
                            step,
                            side,
                            pool,
                        )
                        for side in _SIDES
                    }
                )
        self._h = h
        self._shape = (graph.num_users, graph.num_items)
        counter_add("streaming.full_passes", 1)
        return self.embeddings

    @property
    def embeddings(self) -> tuple[np.ndarray, np.ndarray]:
        """The cached final-step ``(Z_u, Z_i)``."""
        if self._h is None:
            raise RuntimeError("no embeddings yet — call full_embed() first")
        return self._h[-1]["user"], self._h[-1]["item"]

    # ------------------------------------------------------------------
    # Delta refresh
    # ------------------------------------------------------------------
    def refresh(
        self,
        graph: BipartiteGraph | IncrementalBipartiteGraph,
        dirty_users: np.ndarray | None = None,
        dirty_items: np.ndarray | None = None,
        workers: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Bring the cached embeddings up to date with a mutated graph.

        Accepts an :class:`IncrementalBipartiteGraph` directly (its
        dirty frontier is consumed and cleared on success) or a plain
        graph plus explicit dirty user/item id arrays.  Returns the
        refreshed ``(Z_u, Z_i)``; inspect :attr:`last_stats` for what
        was recomputed.
        """
        inc: IncrementalBipartiteGraph | None = None
        if isinstance(graph, IncrementalBipartiteGraph):
            inc = graph
            if dirty_users is None:
                dirty_users = inc.dirty_users
            if dirty_items is None:
                dirty_items = inc.dirty_items
            graph = inc.graph
        dirty_users = np.unique(
            np.asarray([] if dirty_users is None else dirty_users, dtype=np.int64)
        )
        dirty_items = np.unique(
            np.asarray([] if dirty_items is None else dirty_items, dtype=np.int64)
        )
        with span(
            "streaming.refresh",
            dirty_users=len(dirty_users),
            dirty_items=len(dirty_items),
        ):
            out = self._refresh(graph, dirty_users, dirty_items, workers)
        if inc is not None:
            inc.clear_dirty()
        counter_add("streaming.refreshes", 1)
        counter_add("streaming.rows_recomputed", self.last_stats.rows_recomputed)
        observe("streaming.recompute_fraction", self.last_stats.recompute_fraction)
        return out

    def _refresh(
        self,
        graph: BipartiteGraph,
        dirty_users: np.ndarray,
        dirty_items: np.ndarray,
        workers: int | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        cfg = self.model.config
        nu, ni = graph.num_users, graph.num_items
        steps = cfg.num_steps
        rows_total = (nu + ni) * steps
        if self._h is None:
            # Cold start: nothing cached, a full pass is the refresh.
            out = self.full_embed(graph, workers)
            self.last_stats = RefreshStats(
                mode="full",
                degraded=False,
                dirty_users=len(dirty_users),
                dirty_items=len(dirty_items),
                affected_rows=rows_total,
                rows_recomputed=rows_total,
                rows_total=rows_total,
                chunks_recomputed=self._num_chunks(nu, ni) * steps,
                chunks_total=self._num_chunks(nu, ni) * steps,
            )
            return out
        old_nu, old_ni = self._shape
        if nu < old_nu or ni < old_ni:
            raise ValueError(
                "streaming graphs only grow: cached shape "
                f"({old_nu}, {old_ni}) vs graph ({nu}, {ni})"
            )
        if len(dirty_users) and (dirty_users[0] < 0 or dirty_users[-1] >= nu):
            raise ValueError("dirty user id out of range")
        if len(dirty_items) and (dirty_items[0] < 0 or dirty_items[-1] >= ni):
            raise ValueError("dirty item id out of range")

        # Conservative affected-set propagation, one mask pair per step.
        # base = adjacency-dirty ∪ new rows (affects every step >= 1);
        # aff_p = base ∪ aff_{p-1} ∪ neighbours(aff_{p-1} of other side).
        base_u = np.zeros(nu, dtype=bool)
        base_u[dirty_users] = True
        base_u[old_nu:] = True
        base_i = np.zeros(ni, dtype=bool)
        base_i[dirty_items] = True
        base_i[old_ni:] = True
        aff_u = np.zeros(nu, dtype=bool)  # step 0: only new feature rows
        aff_u[old_nu:] = True
        aff_i = np.zeros(ni, dtype=bool)
        aff_i[old_ni:] = True
        per_step: list[dict[str, np.ndarray]] = []
        for _p in range(1, steps + 1):
            next_u = base_u | aff_u
            next_u[_csr_neighbors(graph._item_csr, np.flatnonzero(aff_i))] = True
            next_i = base_i | aff_i
            next_i[_csr_neighbors(graph._user_csr, np.flatnonzero(aff_u))] = True
            per_step.append({"user": next_u, "item": next_i})
            aff_u, aff_i = next_u, next_i

        # Chunk-round the affected rows and decide delta vs full.
        bs = self.batch_size
        affected_rows = 0
        rows_recomputed = 0
        chunks_recomputed = 0
        plan: list[dict[str, np.ndarray]] = []
        for masks in per_step:
            chunk_ids: dict[str, np.ndarray] = {}
            for side in _SIDES:
                mask = masks[side]
                affected_rows += int(mask.sum())
                n = len(mask)
                ids = np.unique(np.flatnonzero(mask) // bs)
                chunk_ids[side] = ids
                chunks_recomputed += len(ids)
                rows_recomputed += sum(
                    min((k + 1) * bs, n) - k * bs for k in ids
                )
            plan.append(chunk_ids)
        chunks_total = self._num_chunks(nu, ni) * steps
        fraction = rows_recomputed / rows_total if rows_total else 0.0
        if fraction > self.degrade_threshold:
            counter_add("streaming.degradations", 1)
            out = self.full_embed(graph, workers)
            self.last_stats = RefreshStats(
                mode="full",
                degraded=True,
                dirty_users=len(dirty_users),
                dirty_items=len(dirty_items),
                affected_rows=affected_rows,
                rows_recomputed=rows_total,
                rows_total=rows_total,
                chunks_recomputed=chunks_total,
                chunks_total=chunks_total,
            )
            return out

        # Delta pass: copy cached rows, recompute affected chunks with
        # the exact full-pass task shapes.  New rows (>= old_n) are
        # always inside recomputed chunks — they are marked affected at
        # every step.
        pool = get_pool(workers)
        h = self._h
        new_h: list[dict[str, np.ndarray]] = [
            {side: self.model._features(graph, side) for side in _SIDES}
        ]
        for step in range(1, steps + 1):
            chunk_ids = plan[step - 1]
            new_step: dict[str, np.ndarray] = {}
            for side in _SIDES:
                ids = chunk_ids[side]
                cached = h[step][side]
                if len(ids) == 0:
                    new_step[side] = cached  # shape unchanged: no new rows
                    continue
                new_step[side] = self._pass(
                    graph,
                    new_h[step - 1][side],
                    new_h[step - 1]["item" if side == "user" else "user"],
                    step,
                    side,
                    pool,
                    chunk_ids=ids,
                    cached=cached,
                )
            new_h.append(new_step)
        self._h = new_h
        self._shape = (nu, ni)
        self.last_stats = RefreshStats(
            mode="delta",
            degraded=False,
            dirty_users=len(dirty_users),
            dirty_items=len(dirty_items),
            affected_rows=affected_rows,
            rows_recomputed=rows_recomputed,
            rows_total=rows_total,
            chunks_recomputed=chunks_recomputed,
            chunks_total=chunks_total,
        )
        return self.embeddings

    # ------------------------------------------------------------------
    # Shared pass machinery
    # ------------------------------------------------------------------
    def _num_chunks(self, nu: int, ni: int) -> int:
        bs = self.batch_size
        return (nu + bs - 1) // bs + (ni + bs - 1) // bs

    def _chunk_rng(self, side: str, step: int, chunk: int) -> np.random.Generator:
        """The pure-function RNG for one chunk's neighbour draw."""
        return derive_rng(
            self.sample_seed, _STREAM_KEY, _SIDE_ID[side], step, chunk
        )

    def _pass(
        self,
        graph: BipartiteGraph,
        own_prev: np.ndarray,
        other_prev: np.ndarray,
        step: int,
        side: str,
        pool,
        chunk_ids: np.ndarray | None = None,
        cached: np.ndarray | None = None,
    ) -> np.ndarray:
        """Step-``step`` matrix for ``side``; optionally only some chunks.

        With ``chunk_ids``/``cached`` set, rows outside the listed
        chunks are copied from ``cached`` (which may be shorter when the
        graph grew — the tail rows are always inside listed chunks).
        """
        cfg = self.model.config
        n = graph.num_users if side == "user" else graph.num_items
        fanout = cfg.neighbor_samples[cfg.num_steps - step]
        transform, weight = self.model._step_modules(step, side)
        bs = self.batch_size
        if chunk_ids is None:
            chunk_ids = np.arange((n + bs - 1) // bs)
        sampler = NeighborSampler(graph, rng=0)
        tasks = []
        for k in chunk_ids:
            start = int(k) * bs
            stop = min(start + bs, n)
            chunk = np.arange(start, stop)
            sampler.rng = self._chunk_rng(side, step, int(k))
            if side == "user":
                neigh = sampler.sample_items_for_users(chunk, fanout)
            else:
                neigh = sampler.sample_users_for_items(chunk, fanout)
            tasks.append((start, stop, neigh))
        params = {
            "m_w": transform.weight.data,
            "m_b": transform.bias.data if transform.bias is not None else None,
            "w_w": weight.weight.data,
            "w_b": weight.bias.data if weight.bias is not None else None,
            "activation": cfg.activation,
            "aggregator": cfg.aggregator,
        }
        out = np.empty((n, cfg.embedding_dim), dtype=np.float64)
        if cached is not None:
            out[: len(cached)] = cached
        with shared_arrays(pool, own_prev, other_prev) as (own_h, other_h):
            rows = pool.map(
                _layerwise_chunk,
                tasks,
                context=(own_h, other_h, params),
                label="streaming.layerwise_chunk",
            )
        for (start, stop, _), block in zip(tasks, rows):
            out[start:stop] = block
        return out
