"""Bounded least-recently-used cache with :mod:`repro.obs` counters.

The serving layer keeps several per-user caches (top-k slates, score
rows).  An unbounded dict is a memory leak under million-user traffic —
one entry per unique visitor, never evicted — so every cache in the
serving path goes through this class: a hard ``maxsize`` bound, LRU
eviction, and hit/miss/eviction counters published under a caller-chosen
metric prefix (``<prefix>.hits`` / ``.misses`` / ``.evictions``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Iterator

from repro.obs.metrics import counter_add

__all__ = ["LRUCache"]

_MISSING = object()


class LRUCache:
    """A dict bounded to ``maxsize`` entries with LRU eviction.

    ``maxsize=0`` disables caching entirely (every ``get`` misses, every
    ``put`` is dropped) — used by benchmarks to time the uncached path
    through otherwise identical code.

    Parameters
    ----------
    maxsize:
        Hard bound on entry count; least-recently-*used* entries are
        evicted first (both ``get`` hits and ``put`` updates refresh
        recency).
    metric_prefix:
        Optional :mod:`repro.obs` counter prefix.  When set, hits,
        misses and evictions are counted on the installed registry
        (no-ops when observability is off).
    """

    def __init__(self, maxsize: int, metric_prefix: str | None = None) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = int(maxsize)
        self.metric_prefix = metric_prefix
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (refreshing recency) or ``default``."""
        return self.get_if(key, None, default)

    def get_if(self, key: Hashable, predicate, default: Any = None) -> Any:
        """Like :meth:`get`, but a present entry only *hits* when
        ``predicate(value)`` holds — a present-but-unusable entry (e.g. a
        cached slate shorter than the requested k) counts as a miss."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING or (predicate is not None and not predicate(value)):
            self.misses += 1
            if self.metric_prefix:
                counter_add(f"{self.metric_prefix}.misses", 1)
            return default
        self._data.move_to_end(key)
        self.hits += 1
        if self.metric_prefix:
            counter_add(f"{self.metric_prefix}.hits", 1)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/overwrite ``key``, evicting the LRU entry when full."""
        if self.maxsize == 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
            self._data[key] = value
            return
        if len(self._data) >= self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1
            if self.metric_prefix:
                counter_add(f"{self.metric_prefix}.evictions", 1)
        self._data[key] = value

    def invalidate(self, key: Hashable) -> bool:
        """Drop ``key`` if present; returns whether it existed."""
        return self._data.pop(key, _MISSING) is not _MISSING

    def invalidate_where(self, predicate) -> int:
        """Drop every entry where ``predicate(key, value)``; returns count.

        Cost is bounded by ``maxsize`` — the point of a bounded cache is
        that a full scan stays O(cache), never O(traffic).
        """
        stale = [k for k, v in self._data.items() if predicate(k, v)]
        for key in stale:
            del self._data[key]
        return len(stale)

    def clear(self) -> None:
        self._data.clear()

    @property
    def hit_rate(self) -> float:
        """hits / (hits + misses); 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def keys(self) -> Iterator[Hashable]:
        """Keys from least- to most-recently used (no recency update)."""
        return iter(self._data.keys())

    def __repr__(self) -> str:
        return (
            f"LRUCache(size={len(self._data)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )
