"""Streaming serving stack: incremental graphs, online refresh, frontend.

Production serving means edges arriving continuously, not a frozen
graph.  This package layers three pieces over the reproduction:

* :class:`IncrementalBipartiteGraph` — O(delta) edge/vertex appends over
  an existing :class:`~repro.graph.bipartite.BipartiteGraph` with a
  dirty-vertex frontier and periodic compaction.
* :class:`StreamingEmbedder` — layer-wise inference with cached per-step
  matrices and a delta-aware :meth:`~StreamingEmbedder.refresh` that
  recomputes only the P-hop out-neighbourhood of the dirty frontier,
  bitwise-identical to a full pass on the mutated graph.
* :class:`ServingFrontend` — a micro-batched request loop with a bounded
  LRU slate cache (hit/miss/eviction counters and latency histograms in
  :mod:`repro.obs`), cold-start admission via a fallback recommender,
  and graceful degradation to full recompute when the dirty frontier
  grows too large.

See README "Streaming & serving".
"""

from repro.streaming.frontend import ServingFrontend
from repro.streaming.incremental import IncrementalBipartiteGraph
from repro.streaming.lru import LRUCache
from repro.streaming.refresh import RefreshStats, StreamingEmbedder

__all__ = [
    "IncrementalBipartiteGraph",
    "LRUCache",
    "RefreshStats",
    "ServingFrontend",
    "StreamingEmbedder",
]
