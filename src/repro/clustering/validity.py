"""Cluster validity indices.

``calinski_harabasz`` implements Eq. 13 of the paper — the criterion the
taxonomy pipeline maximises to select the number of clusters per level:
CH = (D_B(k) / D_W(k)) * ((N - k) / (k - 1)).
"""

from __future__ import annotations

import numpy as np

__all__ = ["calinski_harabasz", "davies_bouldin", "silhouette"]


def _check(points: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if points.ndim != 2:
        raise ValueError("points must be 2-D")
    if labels.shape != (len(points),):
        raise ValueError("labels must align with points")
    k = len(np.unique(labels))
    return points, labels, k


def calinski_harabasz(points: np.ndarray, labels: np.ndarray) -> float:
    """Calinski–Harabasz index (Eq. 13); higher is better.

    Returns 0.0 for the degenerate single-cluster case.
    """
    points, labels, k = _check(points, labels)
    n = len(points)
    if k < 2 or n <= k:
        return 0.0
    overall = points.mean(axis=0)
    between = 0.0
    within = 0.0
    for cluster in np.unique(labels):
        members = points[labels == cluster]
        center = members.mean(axis=0)
        between += len(members) * float(np.sum((center - overall) ** 2))
        within += float(np.sum((members - center) ** 2))
    if within <= 0:
        return float("inf")
    return (between / within) * ((n - k) / (k - 1))


def davies_bouldin(points: np.ndarray, labels: np.ndarray) -> float:
    """Davies–Bouldin index; lower is better."""
    points, labels, k = _check(points, labels)
    if k < 2:
        return 0.0
    unique = np.unique(labels)
    centers = np.stack([points[labels == c].mean(axis=0) for c in unique])
    scatters = np.array(
        [
            np.sqrt(np.mean(np.sum((points[labels == c] - centers[j]) ** 2, axis=1)))
            for j, c in enumerate(unique)
        ]
    )
    total = 0.0
    for i in range(k):
        ratios = []
        for j in range(k):
            if i == j:
                continue
            dist = float(np.linalg.norm(centers[i] - centers[j]))
            if dist == 0:
                ratios.append(float("inf"))
            else:
                ratios.append((scatters[i] + scatters[j]) / dist)
        total += max(ratios)
    return total / k


def silhouette(points: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient in [-1, 1]; higher is better.

    O(n^2) — intended for the modest point counts of the test suite and
    taxonomy levels, not raw datasets.
    """
    points, labels, k = _check(points, labels)
    n = len(points)
    if k < 2 or n < 3:
        return 0.0
    dists = np.sqrt(
        np.maximum(
            np.sum(points**2, axis=1)[:, None]
            - 2 * points @ points.T
            + np.sum(points**2, axis=1)[None, :],
            0.0,
        )
    )
    scores = np.zeros(n)
    unique = np.unique(labels)
    for idx in range(n):
        own = labels[idx]
        own_mask = labels == own
        n_own = own_mask.sum()
        if n_own <= 1:
            scores[idx] = 0.0
            continue
        a = dists[idx][own_mask].sum() / (n_own - 1)
        b = min(
            dists[idx][labels == other].mean() for other in unique if other != own
        )
        scores[idx] = (b - a) / max(a, b) if max(a, b) > 0 else 0.0
    return float(scores.mean())
