"""Automatic cluster-count selection via the Calinski–Harabasz index.

Implements the Eq. 13 objective the paper uses for the taxonomy task:
pick the k maximising CH(k) over a candidate set.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.kmeans import KMeansResult, kmeans
from repro.clustering.validity import calinski_harabasz
from repro.obs import span
from repro.utils.config import KMeansConfig
from repro.utils.rng import derive_rng, ensure_rng

__all__ = ["select_k", "cluster_with_auto_k"]


def select_k(
    points: np.ndarray,
    candidates: list[int] | tuple[int, ...],
    config: KMeansConfig | None = None,
    rng: int | np.random.Generator | None = None,
) -> tuple[int, dict[int, float]]:
    """Return the CH-maximising k and the full candidate->score map.

    Candidates that collapse to fewer than 2 effective clusters score 0.
    """
    if not candidates:
        raise ValueError("candidates must be non-empty")
    rng = ensure_rng(rng)
    points = np.asarray(points, dtype=np.float64)
    with span("kmeans.select_k", candidates=list(map(int, candidates))) as kspan:
        scores: dict[int, float] = {}
        for k in candidates:
            if k < 2 or k >= len(points):
                scores[k] = 0.0
                continue
            result = kmeans(points, k, config=config, rng=derive_rng(rng, k))
            scores[k] = calinski_harabasz(points, result.labels)
        best = max(scores, key=lambda k: scores[k])
        kspan.set(best_k=int(best))
    return best, scores


def cluster_with_auto_k(
    points: np.ndarray,
    candidates: list[int] | tuple[int, ...],
    config: KMeansConfig | None = None,
    rng: int | np.random.Generator | None = None,
) -> KMeansResult:
    """Cluster with the k chosen by :func:`select_k` (one final fit)."""
    rng = ensure_rng(rng)
    best, _ = select_k(points, candidates, config=config, rng=rng)
    return kmeans(points, best, config=config, rng=rng)
