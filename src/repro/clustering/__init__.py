"""Deterministic clustering: K-means variants, validity indices, HAC."""

from repro.clustering.kmeans import KMeansResult, assign_to_centers, kmeans, kmeans_plus_plus
from repro.clustering.validity import calinski_harabasz, davies_bouldin, silhouette
from repro.clustering.agglomerative import agglomerative_cluster, agglomerative_levels
from repro.clustering.autok import cluster_with_auto_k, select_k

__all__ = [
    "KMeansResult",
    "kmeans",
    "kmeans_plus_plus",
    "assign_to_centers",
    "calinski_harabasz",
    "davies_bouldin",
    "silhouette",
    "agglomerative_cluster",
    "agglomerative_levels",
    "select_k",
    "cluster_with_auto_k",
]
