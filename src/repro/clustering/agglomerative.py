"""Hierarchical agglomerative clustering.

This is the clustering engine of the SHOAL baseline (Section II-C /
Section V-D): the paper characterises SHOAL as performing "parallel
hierarchical agglomerative clustering" over fixed metric embeddings.
Built on scipy's linkage for correctness and speed.
"""

from __future__ import annotations

import numpy as np
from scipy.cluster.hierarchy import fcluster, linkage

__all__ = ["agglomerative_cluster", "agglomerative_levels"]

_LINKAGES = {"average", "complete", "single", "ward"}


def agglomerative_cluster(
    points: np.ndarray,
    n_clusters: int,
    method: str = "average",
) -> np.ndarray:
    """Cut an agglomerative dendrogram into ``n_clusters`` flat labels.

    Labels are re-indexed to a dense 0-based range.
    """
    if method not in _LINKAGES:
        raise ValueError(f"unknown linkage {method!r}; choose from {sorted(_LINKAGES)}")
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be 2-D")
    n = len(points)
    if n == 0:
        raise ValueError("cannot cluster an empty point set")
    n_clusters = max(1, min(n_clusters, n))
    if n == 1 or n_clusters == n:
        return np.arange(n) if n_clusters == n else np.zeros(n, dtype=np.int64)
    tree = linkage(points, method=method)
    raw = fcluster(tree, t=n_clusters, criterion="maxclust")
    _, dense = np.unique(raw, return_inverse=True)
    return dense.astype(np.int64)


def agglomerative_levels(
    points: np.ndarray,
    cluster_counts: list[int],
    method: str = "average",
) -> list[np.ndarray]:
    """Cut the same dendrogram at several granularities.

    ``cluster_counts`` should be decreasing (fine -> coarse);
    returns one dense label array per requested level, computed from a
    single linkage so the levels are nested the way a taxonomy expects.
    """
    if not cluster_counts:
        raise ValueError("cluster_counts must be non-empty")
    return [agglomerative_cluster(points, k, method=method) for k in cluster_counts]
