"""K-means clustering — the deterministic clustering stage of HiGNN.

Three variants are provided:

* ``lloyd`` — classic batch Lloyd iterations with k-means++ seeding.
* ``minibatch`` — Sculley-style mini-batch updates.
* ``single_pass`` — the paper's scalability choice (Section III-D):
  "we use the single-pass version which estimates the cluster centers
  with a single pass over all data".  Centres are k-means++-seeded, then
  each point is assigned once and pulls its centre with a per-centre
  decaying learning rate; a final assignment pass labels every point.

All variants are deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import span
from repro.obs.metrics import counter_add
from repro.parallel import as_ndarray, get_pool, shared_arrays
from repro.utils.config import KMeansConfig
from repro.utils.rng import clone_rng, derive_rng, ensure_rng

__all__ = ["KMeansResult", "kmeans", "kmeans_plus_plus", "assign_to_centers"]

# Assignment passes over fewer points than this stay one-shot; larger
# ones are split into fixed 2048-point chunks.  Both constants depend
# only on n — never on the worker count — so serial and parallel runs
# execute the same per-chunk computations and stay bitwise equal.
_ASSIGN_MIN_N = 4096
_ASSIGN_CHUNK = 2048


@dataclass(frozen=True)
class KMeansResult:
    """Clustering output.

    Attributes
    ----------
    centers:
        ``(k, d)`` centroid matrix.
    labels:
        Per-point cluster ids in ``[0, k)``.
    inertia:
        Sum of squared distances of points to their assigned centroid.
    n_iter:
        Lloyd iterations executed (1 for single-pass, batches for minibatch).
    """

    centers: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iter: int

    @property
    def n_clusters(self) -> int:
        return len(self.centers)


def kmeans(
    points: np.ndarray,
    n_clusters: int,
    config: KMeansConfig | None = None,
    rng: int | np.random.Generator | None = None,
    workers: int | None = None,
) -> KMeansResult:
    """Cluster ``points`` into ``n_clusters`` groups.

    Dispatches on ``config.algorithm``; runs ``config.n_init`` restarts
    and keeps the lowest-inertia result.  ``n_clusters`` is clamped to
    the number of distinct points.

    ``workers`` selects the pool (default: the globally configured
    count).  With ``n_init > 1`` the restarts run concurrently, each on
    its own pre-derived RNG stream; the first restart clones the caller's
    generator so ``n_init=1`` results are reproduced exactly.  Large
    assignment passes are additionally chunked.  Results are bitwise
    identical for every worker count given the same seed.
    """
    config = config or KMeansConfig()
    rng = ensure_rng(rng)
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be a 2-D array")
    if len(points) == 0:
        raise ValueError("cannot cluster an empty point set")
    if n_clusters < 1:
        raise ValueError("n_clusters must be >= 1")
    n_clusters = _clamp_to_distinct(points, n_clusters)
    pool = get_pool(workers)
    n_init = max(1, config.n_init)
    # Restart 0 clones the caller's generator (bit-identical to the
    # single-restart path); the rest get streams derived in the parent,
    # so every restart's stream is fixed before any fan-out.
    if n_init == 1:
        rngs = [rng]
    else:
        rngs = [clone_rng(rng)] + [derive_rng(rng, i) for i in range(1, n_init)]

    with span(
        "kmeans",
        algorithm=config.algorithm,
        n=len(points),
        k=n_clusters,
        n_init=n_init,
    ) as kspan:
        tasks = list(enumerate(rngs))
        if pool.parallel and len(tasks) > 1:
            with shared_arrays(pool, points) as (points_h,):
                results = pool.map(
                    _restart_task,
                    tasks,
                    context=(points_h, n_clusters, config, None),
                    label="kmeans.restart",
                )
        else:
            results = [
                _restart_task(task, (points, n_clusters, config, pool))
                for task in tasks
            ]
        if not results:
            raise RuntimeError("k-means fan-out returned no restart results")
        best = results[0]
        for result in results[1:]:  # submission order -> deterministic ties
            if result.inertia < best.inertia:
                best = result
        counter_add("kmeans.runs", 1)
        counter_add("kmeans.points_assigned", len(points))
        kspan.set(n_iter=best.n_iter, inertia=best.inertia)
    return best


def _restart_task(task: tuple, context: tuple) -> KMeansResult:
    """One k-means restart (module-level so workers can run it)."""
    _, rng = task
    points_h, n_clusters, config, pool = context
    points = as_ndarray(points_h)
    if config.algorithm == "lloyd":
        result = _lloyd(points, n_clusters, config, rng, pool)
    elif config.algorithm == "minibatch":
        result = _minibatch(points, n_clusters, config, rng, pool)
    else:
        result = _single_pass(points, n_clusters, rng, config.chunk_size, pool)
    counter_add("kmeans.iterations", result.n_iter)
    return result


def _clamp_to_distinct(points: np.ndarray, n_clusters: int) -> int:
    """Clamp ``n_clusters`` to the number of distinct points — cheaply.

    The exact distinct-row count (``np.unique(points, axis=0)``) costs a
    full lexicographic row sort, which used to run on *every* call.  The
    distinct-value count of a fixed 1-D projection lower-bounds the
    distinct-row count (equal rows project equally), so the expensive
    exact count only runs when that cheap bound says clamping might be
    needed.  No RNG is consumed, so seeded results are unchanged.
    """
    if n_clusters <= 1:
        return n_clusters
    projection = points @ np.linspace(1.0, 2.0, points.shape[1])
    if len(np.unique(projection)) >= n_clusters:
        return n_clusters
    return min(n_clusters, len(np.unique(points, axis=0)))


def kmeans_plus_plus(
    points: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding (Arthur & Vassilvitskii, 2007)."""
    n = len(points)
    centers = np.empty((n_clusters, points.shape[1]))
    first = int(rng.integers(n))
    centers[0] = points[first]
    closest_sq = _sq_dist_to(points, centers[0])
    for c in range(1, n_clusters):
        total = closest_sq.sum()
        if total <= 0:
            # All remaining points coincide with an existing centre.
            centers[c:] = points[rng.integers(n, size=n_clusters - c)]
            break
        probs = closest_sq / total
        idx = int(rng.choice(n, p=probs))
        centers[c] = points[idx]
        closest_sq = np.minimum(closest_sq, _sq_dist_to(points, centers[c]))
    return centers


def _assign_chunk(task: tuple, context: tuple) -> tuple[np.ndarray, float]:
    """Assign one fixed-bounds chunk of points to its nearest centres."""
    start, stop = task
    points_h, centers_h = context
    chunk = as_ndarray(points_h)[start:stop]
    centers = as_ndarray(centers_h)
    dists = _pairwise_sq_dists(chunk, centers)
    labels = dists.argmin(axis=1)
    inertia = float(dists[np.arange(len(chunk)), labels].sum())
    return labels, inertia


def assign_to_centers(
    points: np.ndarray, centers: np.ndarray, pool=None
) -> tuple[np.ndarray, float]:
    """Nearest-centre labels and the resulting inertia.

    Small inputs are assigned in one shot.  From ``_ASSIGN_MIN_N``
    points the pass is split into fixed chunks (boundaries depend only
    on ``len(points)``) which fan out over ``pool`` when it is parallel;
    labels and the chunk-inertia sum are reduced in chunk order either
    way, so the result never depends on the worker count.
    """
    n = len(points)
    if n < _ASSIGN_MIN_N:
        dists = _pairwise_sq_dists(points, centers)
        labels = dists.argmin(axis=1)
        inertia = float(dists[np.arange(n), labels].sum())
        return labels, inertia
    tasks = [(start, min(start + _ASSIGN_CHUNK, n)) for start in range(0, n, _ASSIGN_CHUNK)]
    if pool is not None and pool.parallel:
        with shared_arrays(pool, points, centers) as (points_h, centers_h):
            parts = pool.map(
                _assign_chunk,
                tasks,
                context=(points_h, centers_h),
                label="kmeans.assign_chunk",
            )
    else:
        parts = [_assign_chunk(task, (points, centers)) for task in tasks]
    labels = np.concatenate([part[0] for part in parts])
    inertia = float(sum(part[1] for part in parts))
    return labels, inertia


def _lloyd(
    points: np.ndarray,
    n_clusters: int,
    config: KMeansConfig,
    rng: np.random.Generator,
    pool=None,
) -> KMeansResult:
    centers = kmeans_plus_plus(points, n_clusters, rng)
    labels, inertia = assign_to_centers(points, centers, pool)
    for iteration in range(1, config.max_iter + 1):
        centers = _recompute_centers(points, labels, centers, rng)
        new_labels, new_inertia = assign_to_centers(points, centers, pool)
        counter_add("kmeans.reassignments", int((new_labels != labels).sum()))
        labels = new_labels
        if abs(inertia - new_inertia) <= config.tol * max(inertia, 1e-12):
            inertia = new_inertia
            break
        inertia = new_inertia
    return KMeansResult(centers=centers, labels=labels, inertia=inertia, n_iter=iteration)


def _running_mean_update(
    centers: np.ndarray, counts: np.ndarray, batch: np.ndarray, labels: np.ndarray
) -> None:
    """Fold ``batch`` into ``centers`` with per-centre decaying rates.

    Vectorised (``np.add.at`` scatter) equivalent of processing the
    batch point-by-point with ``eta = 1/count``: a centre that absorbs
    ``m`` points with sum ``s`` ends at ``(c0*v0 + s) / (c0 + m)`` — the
    same running mean the sequential loop converges to, applied in one
    shot.  For a single-point batch the arithmetic is identical to the
    sequential update.
    """
    k, dim = centers.shape
    added = np.bincount(labels, minlength=k).astype(np.float64)
    sums = np.zeros((k, dim))
    np.add.at(sums, labels, batch)
    touched = added > 0
    new_counts = counts + added
    centers[touched] += (
        sums[touched] - added[touched, None] * centers[touched]
    ) / new_counts[touched, None]
    counts[:] = new_counts


def _minibatch(
    points: np.ndarray,
    n_clusters: int,
    config: KMeansConfig,
    rng: np.random.Generator,
    pool=None,
) -> KMeansResult:
    centers = kmeans_plus_plus(points, n_clusters, rng)
    counts = np.zeros(n_clusters)
    n_batches = max(1, config.max_iter)
    for _ in range(n_batches):
        batch_idx = rng.integers(len(points), size=min(config.batch_size, len(points)))
        batch = points[batch_idx]
        labels, _ = assign_to_centers(batch, centers)
        _running_mean_update(centers, counts, batch, labels)
    labels, inertia = assign_to_centers(points, centers, pool)
    return KMeansResult(centers=centers, labels=labels, inertia=inertia, n_iter=n_batches)


def _minibatch_loop(
    points: np.ndarray,
    n_clusters: int,
    config: KMeansConfig,
    rng: np.random.Generator,
) -> KMeansResult:
    """Per-point reference implementation (equivalence tests + bench)."""
    centers = kmeans_plus_plus(points, n_clusters, rng)
    counts = np.zeros(n_clusters)
    n_batches = max(1, config.max_iter)
    for _ in range(n_batches):
        batch_idx = rng.integers(len(points), size=min(config.batch_size, len(points)))
        batch = points[batch_idx]
        labels, _ = assign_to_centers(batch, centers)
        for label, point in zip(labels, batch):
            counts[label] += 1.0
            eta = 1.0 / counts[label]
            centers[label] = (1.0 - eta) * centers[label] + eta * point
    labels, inertia = assign_to_centers(points, centers)
    return KMeansResult(centers=centers, labels=labels, inertia=inertia, n_iter=n_batches)


def _single_pass(
    points: np.ndarray,
    n_clusters: int,
    rng: np.random.Generator,
    chunk_size: int = 256,
    pool=None,
) -> KMeansResult:
    """Single-pass K-means (Section III-D) with chunked assignment.

    Points are still visited exactly once in a random permutation and
    centres still move with per-centre decaying rates; points are merely
    assigned ``chunk_size`` at a time against the chunk-start centres so
    the distance computation is one matrix product per chunk instead of
    one row per point.  ``chunk_size=1`` reproduces the fully sequential
    reference bit-for-bit.
    """
    centers = kmeans_plus_plus(points, n_clusters, rng)
    counts = np.ones(n_clusters)  # seeds count as one observation
    order = rng.permutation(len(points))
    for start in range(0, len(order), max(1, chunk_size)):
        chunk = points[order[start : start + max(1, chunk_size)]]
        labels, _ = assign_to_centers(chunk, centers)
        _running_mean_update(centers, counts, chunk, labels)
    labels, inertia = assign_to_centers(points, centers, pool)
    return KMeansResult(centers=centers, labels=labels, inertia=inertia, n_iter=1)


def _single_pass_loop(
    points: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> KMeansResult:
    """Per-point reference implementation (equivalence tests + bench)."""
    centers = kmeans_plus_plus(points, n_clusters, rng)
    counts = np.ones(n_clusters)  # seeds count as one observation
    order = rng.permutation(len(points))
    for idx in order:
        point = points[idx]
        label = int(_sq_dist_to_many(point, centers).argmin())
        counts[label] += 1.0
        centers[label] += (point - centers[label]) / counts[label]
    labels, inertia = assign_to_centers(points, centers)
    return KMeansResult(centers=centers, labels=labels, inertia=inertia, n_iter=1)


def _recompute_centers(
    points: np.ndarray,
    labels: np.ndarray,
    old_centers: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    k, dim = old_centers.shape
    sums = np.zeros((k, dim))
    np.add.at(sums, labels, points)
    counts = np.bincount(labels, minlength=k).astype(np.float64)
    centers = old_centers.copy()
    occupied = counts > 0
    centers[occupied] = sums[occupied] / counts[occupied, None]
    # Re-seed empty clusters at the points farthest from their centres.
    empty = np.flatnonzero(~occupied)
    if len(empty):
        dists = _pairwise_sq_dists(points, centers).min(axis=1)
        farthest = np.argsort(dists)[::-1]
        for slot, point_idx in zip(empty, farthest[: len(empty)]):
            centers[slot] = points[point_idx]
    return centers


def _sq_dist_to(points: np.ndarray, center: np.ndarray) -> np.ndarray:
    diff = points - center
    return np.einsum("ij,ij->i", diff, diff)


def _sq_dist_to_many(point: np.ndarray, centers: np.ndarray) -> np.ndarray:
    diff = centers - point
    return np.einsum("ij,ij->i", diff, diff)


def _pairwise_sq_dists(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2, clipped at 0 for fp safety.
    sq = (
        np.einsum("ij,ij->i", points, points)[:, None]
        - 2.0 * points @ centers.T
        + np.einsum("ij,ij->i", centers, centers)[None, :]
    )
    return np.maximum(sq, 0.0)
