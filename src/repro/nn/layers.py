"""Neural-network modules built on :mod:`repro.nn.tensor`.

The module system mirrors the familiar torch-style API at a much smaller
scale: a :class:`Module` owns named :class:`Parameter` tensors and child
modules, and ``parameters()`` walks the tree.  Only the layers the HiGNN
reproduction needs are provided.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn import init as _init
from repro.nn.tensor import Tensor
from repro.utils.rng import ensure_rng

__all__ = [
    "Parameter",
    "Module",
    "Linear",
    "MLP",
    "Embedding",
    "Dropout",
    "Sequential",
    "Activation",
]


class Parameter(Tensor):
    """A tensor registered as trainable state of a module."""

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; they are discovered automatically by :meth:`parameters`
    and :meth:`named_parameters`.
    """

    def __init__(self) -> None:
        self.training = True

    # -- state traversal ------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs in definition order.

        Each parameter object is yielded once even when a module is
        shared under several attributes (e.g. the shared-space GraphSAGE
        variant registers one Linear on both sides) — otherwise
        optimisers would apply duplicate updates.
        """
        seen: set[int] = set()
        for name, param in self._named_parameters_impl(prefix):
            if id(param) in seen:
                continue
            seen.add(id(param))
            yield name, param

    def _named_parameters_impl(
        self, prefix: str = ""
    ) -> Iterator[tuple[str, Parameter]]:
        for key, value in vars(self).items():
            if key == "training":
                continue
            full = f"{prefix}{key}" if not prefix else f"{prefix}.{key}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value._named_parameters_impl(full)
            elif isinstance(value, (list, tuple)):
                for i, element in enumerate(value):
                    if isinstance(element, Parameter):
                        yield f"{full}.{i}", element
                    elif isinstance(element, Module):
                        yield from element._named_parameters_impl(f"{full}.{i}")
            elif isinstance(value, dict):
                for k, element in value.items():
                    if isinstance(element, Parameter):
                        yield f"{full}.{k}", element
                    elif isinstance(element, Module):
                        yield from element._named_parameters_impl(f"{full}.{k}")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- train/eval mode -------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._children():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def _children(self) -> Iterator["Module"]:
        for value in vars(self).values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for element in value:
                    if isinstance(element, Module):
                        yield element
            elif isinstance(value, dict):
                for element in value.values():
                    if isinstance(element, Module):
                        yield element

    # -- state dict ------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameter arrays keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load arrays produced by :meth:`state_dict` (strict matching)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, array in state.items():
            if own[name].data.shape != array.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected "
                    f"{own[name].data.shape}, got {array.shape}"
                )
            # Sanctioned .data write: loading replaces parameter values
            # wholesale, outside any live graph.
            own[name].data = (  # repro-lint: disable=RPR401
                np.asarray(array, dtype=np.float64).copy()
            )

    def __call__(self, *args: object, **kwargs: object) -> Tensor:
        return self.forward(*args, **kwargs)

    def forward(self, *args: object, **kwargs: object) -> Tensor:
        raise NotImplementedError


_ACTIVATIONS = {
    "relu": lambda x: x.relu(),
    "leaky_relu": lambda x: x.leaky_relu(),
    "tanh": lambda x: x.tanh(),
    "sigmoid": lambda x: x.sigmoid(),
    "identity": lambda x: x,
}


class Activation(Module):
    """A named activation function as a module."""

    def __init__(self, name: str) -> None:
        super().__init__()
        if name not in _ACTIVATIONS:
            raise ValueError(
                f"unknown activation {name!r}; choose from {sorted(_ACTIVATIONS)}"
            )
        self.name_ = name

    def forward(self, x: Tensor) -> Tensor:
        return _ACTIVATIONS[self.name_](x)


class Linear(Module):
    """Affine map ``y = x W + b``.

    ``W`` has shape ``(in_features, out_features)`` and is Xavier-uniform
    initialised; ``b`` starts at zero and can be disabled.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear dimensions must be positive")
        rng = ensure_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            _init.xavier_uniform((in_features, out_features), rng), name="weight"
        )
        self.bias = Parameter(_init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode or at rate 0."""

    def __init__(self, rate: float = 0.5, rng: int | np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self.rng = ensure_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        keep = 1.0 - self.rate
        mask = (self.rng.random(x.shape) < keep) / keep
        return x * mask


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]


class MLP(Module):
    """Multi-layer perceptron with a configurable activation.

    The paper's prediction head uses fully connected sizes 256/128/64 with
    Leaky ReLU (Section IV-B-2); this class is also the similarity head
    ``f`` of Eq. 5 / Eq. 12.
    """

    def __init__(
        self,
        in_features: int,
        hidden: tuple[int, ...],
        out_features: int,
        activation: str = "leaky_relu",
        output_activation: str = "identity",
        dropout: float = 0.0,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = ensure_rng(rng)
        sizes = [in_features, *hidden, out_features]
        layers: list[Module] = []
        for i, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            layers.append(Linear(fan_in, fan_out, rng=rng))
            last = i == len(sizes) - 2
            layers.append(Activation(output_activation if last else activation))
            if dropout > 0.0 and not last:
                layers.append(Dropout(dropout, rng=rng))
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        std: float = 0.01,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError("Embedding dimensions must be positive")
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            _init.normal((num_embeddings, embedding_dim), std, ensure_rng(rng)),
            name="embedding",
        )

    def forward(self, indices: np.ndarray) -> Tensor:
        idx = np.asarray(indices)
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings})"
            )
        return self.weight.gather_rows(idx)

