"""Saving and loading module state dicts via ``numpy.savez``."""

from __future__ import annotations

import os

import numpy as np

from repro.nn.layers import Module

__all__ = ["save_module", "load_module"]


def save_module(module: Module, path: str | os.PathLike) -> None:
    """Serialise ``module.state_dict()`` to an ``.npz`` archive."""
    state = module.state_dict()
    # np.savez forbids some characters in keys on load; encode dots safely.
    np.savez(path, **{_encode(k): v for k, v in state.items()})


def load_module(module: Module, path: str | os.PathLike) -> None:
    """Restore parameters saved by :func:`save_module` (strict)."""
    with np.load(path) as archive:
        state = {_decode(k): archive[k] for k in archive.files}
    module.load_state_dict(state)


def _encode(key: str) -> str:
    return key.replace(".", "__DOT__")


def _decode(key: str) -> str:
    return key.replace("__DOT__", ".")
