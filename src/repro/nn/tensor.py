"""Reverse-mode automatic differentiation over numpy arrays.

This is the neural-network substrate of the reproduction: the paper's
models were trained on Alibaba's internal deep-learning stack, which we
replace with a small, well-tested autograd engine.  A :class:`Tensor`
wraps a ``numpy.ndarray`` and records the operations applied to it; a
call to :meth:`Tensor.backward` walks the recorded graph in reverse
topological order and accumulates gradients.

Broadcasting follows numpy semantics; gradients flowing into a
broadcast operand are summed over the broadcast axes so shapes always
match the forward values.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling graph recording (inference mode)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


def _as_array(value: "Tensor | np.ndarray | float | int | list") -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so its shape matches the pre-broadcast ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 before broadcasting.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A differentiable numpy array.

    Parameters
    ----------
    data:
        Array-like forward value; stored as ``float64``.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: "np.ndarray | float | int | list | Tensor",
        requires_grad: bool = False,
        name: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """The underlying forward value (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.data.shape}{flag}{label})"

    def detach(self) -> "Tensor":
        """A view of the same data cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray, owned: bool = False) -> None:
        """Add ``grad`` into :attr:`grad`.

        ``owned=True`` promises the caller created ``grad`` exclusively
        for this call (a fresh temporary no one else references), so it
        can be adopted without the defensive ``astype(..., copy=True)``.
        Views of another tensor's gradient and caller-supplied arrays
        must keep ``owned=False`` or later in-place accumulation would
        corrupt them.
        """
        if self.grad is None:
            if owned and grad.dtype == np.float64:
                self.grad = grad
            else:
                self.grad = grad.astype(np.float64, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        owned = False
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient requires a "
                    "scalar tensor"
                )
            grad = np.ones_like(self.data)
            owned = True
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).copy()
            owned = True

        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        self._accumulate(grad, owned=owned)
        for node in reversed(order):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                g = _unbroadcast(grad, self.data.shape)
                # An identity unbroadcast passes the child's own gradient
                # array through; adopting it would alias sibling grads.
                self._accumulate(g, owned=g is not grad)
            if other_t.requires_grad:
                g = _unbroadcast(grad, other_t.data.shape)
                other_t._accumulate(g, owned=g is not grad)

        return Tensor._make(out_data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad, owned=True)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        # A single fused node (not neg + add): one graph node and no
        # intermediate -other temporary on the forward pass.
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data - other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                g = _unbroadcast(grad, self.data.shape)
                self._accumulate(g, owned=g is not grad)
            if other_t.requires_grad:
                other_t._accumulate(-_unbroadcast(grad, other_t.data.shape), owned=True)

        return Tensor._make(out_data, (self, other_t), backward)

    def __rsub__(self, other: "float | np.ndarray") -> "Tensor":
        return Tensor(_as_array(other)) - self

    def __mul__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(
                    _unbroadcast(grad * other_t.data, self.data.shape), owned=True
                )
            if other_t.requires_grad:
                other_t._accumulate(
                    _unbroadcast(grad * self.data, other_t.data.shape), owned=True
                )

        return Tensor._make(out_data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(
                    _unbroadcast(grad / other_t.data, self.data.shape), owned=True
                )
            if other_t.requires_grad:
                other_t._accumulate(
                    _unbroadcast(-grad * self.data / (other_t.data**2), other_t.data.shape),
                    owned=True,
                )

        return Tensor._make(out_data, (self, other_t), backward)

    def __rtruediv__(self, other: "float | np.ndarray") -> "Tensor":
        return Tensor(_as_array(other)) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor.__pow__ supports scalar exponents only")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1), owned=True)

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: "Tensor | np.ndarray") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data @ other_t.data

        # Gradients are implemented per dimensionality case; the 1-D edge
        # cases of a generic formulation are too subtle to trust untested.
        a_nd, b_nd = self.data.ndim, other_t.data.ndim
        if a_nd == 2 and b_nd == 2:

            def backward(grad: np.ndarray) -> None:
                if self.requires_grad:
                    self._accumulate(grad @ other_t.data.T, owned=True)
                if other_t.requires_grad:
                    other_t._accumulate(self.data.T @ grad, owned=True)

        elif a_nd == 2 and b_nd == 1:

            def backward(grad: np.ndarray) -> None:
                if self.requires_grad:
                    self._accumulate(np.outer(grad, other_t.data), owned=True)
                if other_t.requires_grad:
                    other_t._accumulate(self.data.T @ grad, owned=True)

        elif a_nd == 1 and b_nd == 2:

            def backward(grad: np.ndarray) -> None:
                if self.requires_grad:
                    self._accumulate(other_t.data @ grad, owned=True)
                if other_t.requires_grad:
                    other_t._accumulate(np.outer(self.data, grad), owned=True)

        elif a_nd == 1 and b_nd == 1:

            def backward(grad: np.ndarray) -> None:
                if self.requires_grad:
                    self._accumulate(grad * other_t.data, owned=True)
                if other_t.requires_grad:
                    other_t._accumulate(grad * self.data, owned=True)

        elif a_nd == 3 and b_nd == 3:

            def backward(grad: np.ndarray) -> None:
                if self.requires_grad:
                    self._accumulate(
                        _unbroadcast(grad @ other_t.data.swapaxes(-1, -2), self.data.shape),
                        owned=True,
                    )
                if other_t.requires_grad:
                    other_t._accumulate(
                        _unbroadcast(self.data.swapaxes(-1, -2) @ grad, other_t.data.shape),
                        owned=True,
                    )

        else:
            raise ValueError(
                f"matmul between ndim {a_nd} and ndim {b_nd} is not supported"
            )

        return Tensor._make(out_data, (self, other_t), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                g = np.expand_dims(g, tuple(a % self.data.ndim for a in axes))
            self._accumulate(np.broadcast_to(g, self.data.shape).copy(), owned=True)

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.data.shape[a % self.data.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                out = np.expand_dims(out, axis)
            mask = self.data == out
            # Split gradient evenly among ties so the op stays well defined.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * g / counts, owned=True)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise non-linearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data, owned=True)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data, owned=True)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2), owned=True)

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable piecewise formulation.
        x = self.data
        out_data = np.where(x >= 0, 1.0 / (1.0 + np.exp(-np.clip(x, -500, None))),
                            np.exp(np.clip(x, None, 500)) / (1.0 + np.exp(np.clip(x, None, 500))))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data), owned=True)

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask, owned=True)

        return Tensor._make(out_data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, negative_slope * self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.where(mask, 1.0, negative_slope), owned=True)

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = (self.data > low) & (self.data < high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask, owned=True)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign, owned=True)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def transpose(self, axes: tuple[int, ...] | None = None) -> "Tensor":
        out_data = self.data.transpose(axes)
        if axes is None:
            inverse: tuple[int, ...] | None = None
        else:
            inverse = tuple(int(np.argsort(axes)[i]) for i in range(len(axes)))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index: object) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full, owned=True)

        return Tensor._make(out_data, (self,), backward)

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Select rows by integer indices (embedding lookup).

        Duplicated indices accumulate gradients, matching embedding-table
        semantics.
        """
        idx = np.asarray(indices, dtype=np.int64)
        out_data = self.data[idx]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, idx, grad)
                self._accumulate(full, owned=True)

        return Tensor._make(out_data, (self,), backward)


def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (the CONCAT of Eqs. 3–4)."""
    ts = list(tensors)
    if not ts:
        raise ValueError("concat() requires at least one tensor")
    out_data = np.concatenate([t.data for t in ts], axis=axis)
    sizes = [t.data.shape[axis] for t in ts]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(ts, offsets[:-1], offsets[1:]):
            if not t.requires_grad:
                continue
            slicer: list[slice] = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            t._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, ts, backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    ts = list(tensors)
    if not ts:
        raise ValueError("stack() requires at least one tensor")
    out_data = np.stack([t.data for t in ts], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.moveaxis(grad, axis, 0)
        for t, piece in zip(ts, pieces):
            if t.requires_grad:
                t._accumulate(piece)

    return Tensor._make(out_data, ts, backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select; ``condition`` is a constant boolean array."""
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * cond, a.data.shape), owned=True)
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * ~cond, b.data.shape), owned=True)

    return Tensor._make(out_data, (a, b), backward)


# Attach the module-level helpers to Tensor for discoverability.
Tensor.concat = staticmethod(concat)  # type: ignore[attr-defined]
Tensor.stack = staticmethod(stack)  # type: ignore[attr-defined]
