"""First-order optimisers for :class:`repro.nn.layers.Parameter` lists."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "AdaGrad", "clip_grad_norm", "build_optimizer"]


class Optimizer:
    """Base optimiser over a fixed parameter list."""

    def __init__(self, params: list[Tensor], lr: float, weight_decay: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.params = list(params)
        self.lr = lr
        self.weight_decay = weight_decay

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def _grad(self, p: Tensor) -> np.ndarray | None:
        if p.grad is None:
            return None
        if self.weight_decay:
            return p.grad + self.weight_decay * p.data
        return p.grad


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            g = self._grad(p)
            if g is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += g
                p.data -= self.lr * v
            else:
                p.data -= self.lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr, weight_decay)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.betas = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.betas
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            g = self._grad(p)
            if g is None:
                continue
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * g * g
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdaGrad(Optimizer):
    """AdaGrad; well suited to the sparse embedding-table gradients here."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 1e-2,
        eps: float = 1e-10,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr, weight_decay)
        self.eps = eps
        self._accum = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, acc in zip(self.params, self._accum):
            g = self._grad(p)
            if g is None:
                continue
            acc += g * g
            p.data -= self.lr * g / (np.sqrt(acc) + self.eps)


def clip_grad_norm(params: list[Tensor], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float(np.sum(p.grad**2))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm


def build_optimizer(
    name: str, params: list[Tensor], lr: float, weight_decay: float = 0.0
) -> Optimizer:
    """Factory used by the training configs (``adam`` | ``sgd`` | ``adagrad``)."""
    name = name.lower()
    if name == "adam":
        return Adam(params, lr=lr, weight_decay=weight_decay)
    if name == "sgd":
        return SGD(params, lr=lr, weight_decay=weight_decay)
    if name == "adagrad":
        return AdaGrad(params, lr=lr, weight_decay=weight_decay)
    raise ValueError(f"unknown optimizer {name!r}")
