"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng

__all__ = ["xavier_uniform", "xavier_normal", "he_normal", "zeros", "normal"]


def xavier_uniform(
    shape: tuple[int, ...], rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """Glorot/Xavier uniform init: U(-a, a) with a = sqrt(6/(fan_in+fan_out))."""
    rng = ensure_rng(rng)
    fan_in, fan_out = _fans(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(
    shape: tuple[int, ...], rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """Glorot/Xavier normal init: N(0, 2/(fan_in+fan_out))."""
    rng = ensure_rng(rng)
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def he_normal(
    shape: tuple[int, ...], rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """He/Kaiming normal init for ReLU-family activations: N(0, 2/fan_in)."""
    rng = ensure_rng(rng)
    fan_in, _ = _fans(shape)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def normal(
    shape: tuple[int, ...],
    std: float = 0.01,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Plain N(0, std^2) init (used for embedding tables)."""
    return ensure_rng(rng).normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero init (biases)."""
    return np.zeros(shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
