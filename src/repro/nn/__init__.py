"""A small, fully tested reverse-mode autograd + NN framework on numpy.

This substrate replaces the deep-learning stack the paper's authors used
internally at Alibaba; see DESIGN.md for the substitution rationale.
"""

from repro.nn.tensor import Tensor, concat, stack, where, no_grad, is_grad_enabled
from repro.nn.layers import (
    Activation,
    Dropout,
    Embedding,
    Linear,
    MLP,
    Module,
    Parameter,
    Sequential,
)
from repro.nn.losses import (
    binary_cross_entropy,
    binary_cross_entropy_with_logits,
    l2_penalty,
    mse_loss,
)
from repro.nn.optim import SGD, Adam, AdaGrad, Optimizer, build_optimizer, clip_grad_norm
from repro.nn.serialization import load_module, save_module

__all__ = [
    "Tensor",
    "concat",
    "stack",
    "where",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "Parameter",
    "Linear",
    "MLP",
    "Embedding",
    "Dropout",
    "Sequential",
    "Activation",
    "binary_cross_entropy",
    "binary_cross_entropy_with_logits",
    "mse_loss",
    "l2_penalty",
    "Optimizer",
    "SGD",
    "Adam",
    "AdaGrad",
    "build_optimizer",
    "clip_grad_norm",
    "save_module",
    "load_module",
]
