"""Loss functions.

``binary_cross_entropy_with_logits`` implements the numerically stable
log-loss used both for the unsupervised edge-reconstruction objective
(Eq. 5 / Eq. 12) and for the supervised CVR head (Eq. 7).
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = [
    "binary_cross_entropy_with_logits",
    "binary_cross_entropy",
    "mse_loss",
    "l2_penalty",
]


def binary_cross_entropy_with_logits(
    logits: Tensor,
    targets: np.ndarray | Tensor,
    weights: np.ndarray | None = None,
    reduction: str = "mean",
) -> Tensor:
    """Stable BCE on raw scores: max(x,0) - x*y + log(1 + exp(-|x|)).

    ``weights`` optionally re-weights each sample (used for the
    gamma-weighted negative terms of Eq. 5).
    """
    y = targets.data if isinstance(targets, Tensor) else np.asarray(targets, dtype=np.float64)
    x = logits
    relu_x = x.relu()
    loss = relu_x - x * y + (1.0 + (-x.abs()).exp()).log()
    if weights is not None:
        loss = loss * np.asarray(weights, dtype=np.float64)
    return _reduce(loss, reduction)


def binary_cross_entropy(
    probs: Tensor,
    targets: np.ndarray | Tensor,
    eps: float = 1e-12,
    reduction: str = "mean",
) -> Tensor:
    """BCE on probabilities already passed through a sigmoid (Eq. 7)."""
    y = targets.data if isinstance(targets, Tensor) else np.asarray(targets, dtype=np.float64)
    p = probs.clip(eps, 1.0 - eps)
    loss = -(y * p.log() + (1.0 - y) * (1.0 - p).log())
    return _reduce(loss, reduction)


def mse_loss(pred: Tensor, target: np.ndarray | Tensor, reduction: str = "mean") -> Tensor:
    """Mean squared error."""
    t = target.data if isinstance(target, Tensor) else np.asarray(target, dtype=np.float64)
    diff = pred - t
    return _reduce(diff * diff, reduction)


def l2_penalty(params: list[Tensor], coefficient: float) -> Tensor:
    """L2 regulariser 0.5 * c * sum ||p||^2 over trainable parameters."""
    if coefficient < 0:
        raise ValueError("coefficient must be non-negative")
    total: Tensor | None = None
    for p in params:
        term = (p * p).sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return total * (0.5 * coefficient)


def _reduce(loss: Tensor, reduction: str) -> Tensor:
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    if reduction == "none":
        return loss
    raise ValueError(f"unknown reduction {reduction!r}")
