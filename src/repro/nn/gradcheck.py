"""Numerical gradient checking used by the test suite.

Central finite differences against the analytic gradients produced by
:meth:`repro.nn.tensor.Tensor.backward`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["numerical_gradient", "check_gradient"]


def numerical_gradient(
    fn: Callable[[], Tensor], param: Tensor, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of ``fn()`` (a scalar) w.r.t. ``param``."""
    grad = np.zeros_like(param.data)
    flat = param.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn().item()
        flat[i] = original - eps
        minus = fn().item()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradient(
    fn: Callable[[], Tensor],
    params: list[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> None:
    """Assert analytic and numeric gradients agree for every parameter.

    Raises ``AssertionError`` with the offending parameter index on
    mismatch.  ``fn`` must rebuild the computation graph on each call.
    """
    for p in params:
        p.zero_grad()
    loss = fn()
    loss.backward()
    for idx, p in enumerate(params):
        analytic = p.grad if p.grad is not None else np.zeros_like(p.data)
        numeric = numerical_gradient(fn, p, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = float(np.max(np.abs(analytic - numeric)))
            raise AssertionError(
                f"gradient mismatch for parameter #{idx} "
                f"(max abs err {worst:.3e})"
            )
