"""Vertex → shard partitioners for :class:`~repro.shard.storage.ShardedCSR`.

The point of sharding a HiGNN input is locality: the paper's level-1
K-means clusters are exactly the communities most edges live inside, so
packing whole clusters per shard keeps the cross-shard frontier small
(cf. Yang et al.'s clustering-for-bipartite-graphs motivation).  Before
a hierarchy exists, the fallback balances shards by degree mass instead
— no locality guarantee, but worker loads stay even.

Every function here is deterministic: greedy decisions break ties on the
lowest shard/cluster id, so the same inputs always yield the same map.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pack_groups",
    "partition_balanced",
    "partition_by_degree",
    "partition_from_hierarchy",
]

_SHARD_DTYPE = np.dtype("<i4")


def pack_groups(sizes: np.ndarray, num_shards: int) -> np.ndarray:
    """Greedy bin-packing of groups into shards; returns group → shard.

    Groups are placed largest-first onto the least-loaded shard (first
    such shard on ties), the classic LPT heuristic — within ~4/3 of the
    optimal makespan, which is plenty for worker load balance.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    sizes = np.asarray(sizes, dtype=np.int64)
    order = np.argsort(-sizes, kind="stable")
    loads = np.zeros(num_shards, dtype=np.int64)
    assignment = np.zeros(len(sizes), dtype=_SHARD_DTYPE)
    for group in order:
        shard = int(np.argmin(loads))
        assignment[group] = shard
        loads[shard] += sizes[group]
    return assignment


def partition_balanced(labels: np.ndarray, num_shards: int) -> np.ndarray:
    """Shard per vertex, keeping every label group whole.

    ``labels`` are cluster ids (e.g. a level-1 K-means assignment); the
    groups are bin-packed by size so shards hold similar vertex counts
    while intra-cluster edges stay shard-local.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if len(labels) == 0:
        return np.zeros(0, dtype=_SHARD_DTYPE)
    if labels.min() < 0:
        raise ValueError("labels must be non-negative")
    sizes = np.bincount(labels)
    return pack_groups(sizes, num_shards)[labels]


def partition_by_degree(degrees: np.ndarray, num_shards: int) -> np.ndarray:
    """Degree-balanced fallback used before a hierarchy exists.

    Vertices are ranked by degree (descending, ties by id) and dealt
    round-robin, so every shard receives the same count and near-equal
    edge mass — O(n log n) with no per-vertex python loop.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    degrees = np.asarray(degrees, dtype=np.int64)
    order = np.argsort(-degrees, kind="stable")
    assignment = np.empty(len(degrees), dtype=_SHARD_DTYPE)
    assignment[order] = np.arange(len(degrees), dtype=np.int64) % num_shards
    return assignment


def partition_from_hierarchy(
    hierarchy, num_shards: int
) -> tuple[np.ndarray, np.ndarray]:
    """(user_shard, item_shard) from a fitted HiGNN hierarchy.

    Users follow their level-1 cluster (whole clusters per shard, packed
    for balance).  Each item then joins the user shard holding most of
    its edge weight — items are overwhelmingly touched by one community,
    so this keeps the frontier exchange small; isolated items fall back
    to their own level-1 item cluster packing.
    """
    if not hierarchy.levels:
        raise ValueError("hierarchy has no levels")
    level1 = hierarchy.levels[0]
    graph = hierarchy.base_graph
    user_shard = partition_balanced(level1.user_assignment, num_shards)

    mass = np.zeros((graph.num_items, num_shards), dtype=np.float64)
    edges = graph.edges
    if len(edges):
        np.add.at(
            mass, (edges[:, 1], user_shard[edges[:, 0]]), graph.edge_weights
        )
    item_shard = mass.argmax(axis=1).astype(_SHARD_DTYPE)
    isolated = mass.sum(axis=1) == 0
    if isolated.any():
        fallback = partition_balanced(level1.item_assignment, num_shards)
        item_shard[isolated] = fallback[isolated]
    return user_shard, item_shard
