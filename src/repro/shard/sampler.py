"""Neighbour sampling over a :class:`~repro.shard.storage.ShardedCSR`.

A drop-in mirror of the dense unweighted
:class:`~repro.graph.sampling.NeighborSampler`: given the same RNG state
and the same query sequence it consumes the identical draw stream and
returns the identical samples, because the store preserves global
degrees and per-row neighbour order.  That equivalence is what lets the
sharded ``embed_all`` path stay bitwise-equal to the dense one.
"""

from __future__ import annotations

import numpy as np

from repro.obs.metrics import counter_add
from repro.shard.storage import ShardedCSR
from repro.utils.rng import ensure_rng

__all__ = ["ShardedNeighborSampler"]


class ShardedNeighborSampler:
    """Fixed-fan-out sampling with replacement over shard blocks.

    Only the unweighted scheme is implemented — it is the one the SAGE
    inference path uses; weighted importance sampling stays a dense-graph
    feature for now.
    """

    def __init__(
        self, store: ShardedCSR, rng: int | np.random.Generator | None = None
    ) -> None:
        self.store = store
        self.rng = ensure_rng(rng)

    def sample_items_for_users(self, users: np.ndarray, fanout: int) -> np.ndarray:
        """``(len(users), fanout)`` item ids; -1 marks isolated users."""
        return self._sample(users, fanout, side="user")

    def sample_users_for_items(self, items: np.ndarray, fanout: int) -> np.ndarray:
        """``(len(items), fanout)`` user ids; -1 marks isolated items."""
        return self._sample(items, fanout, side="item")

    def _sample(self, vertices: np.ndarray, fanout: int, side: str) -> np.ndarray:
        # Mirrors NeighborSampler._sample step for step (counters, the
        # pre-draw empty-graph early-out, the single uniform draw, the
        # clipped gather) so the RNG stream advances identically.
        if fanout <= 0:
            raise ValueError("fanout must be positive")
        vertices = np.asarray(vertices, dtype=np.int64)
        counter_add("sampler.samples_drawn", len(vertices) * fanout)
        counter_add("sampler.batches", 1)
        degrees = self.store.degrees(side)[vertices]
        if self.store.num_edges == 0:
            return np.full((len(vertices), fanout), -1, dtype=np.int64)
        offsets = (
            self.rng.random((len(vertices), fanout)) * degrees[:, None]
        ).astype(np.int64)
        picked = self.store.gather_neighbors(side, vertices, offsets)
        return np.where(degrees[:, None] > 0, picked, -1)
