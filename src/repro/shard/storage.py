"""Cluster-aligned, memory-mapped CSR storage for bipartite graphs.

A :class:`ShardedCSR` directory holds one bipartite graph as per-shard
CSR blocks — ``indptr``/``indices``/``weights`` flat binary files opened
through ``np.memmap`` — plus a JSON manifest carrying the degree/offset
metadata (per-shard row and nnz counts, vertex totals, the partition
kind and the fraction of edges that stayed shard-local).  Both adjacency
directions are stored, mirroring :class:`~repro.graph.bipartite
.BipartiteGraph`'s twin CSRs, so neighbour queries stream from disk in
either direction.

Shard membership is *scattered*: a shard owns an arbitrary subset of
global vertex ids (typically one bundle of HiGNN level-1 clusters — see
:mod:`repro.shard.partition`).  Vertices are never relabelled; within a
shard, rows are stored in ascending global id and per-row neighbour
order is exactly the source graph's CSR order.  That invariant is what
keeps sampling — and therefore the sharded ``embed_all`` path — bitwise
identical to the dense implementation.

Lifecycle mirrors :class:`~repro.parallel.shared.SharedMatrix`: the
process that creates a store directory is the **owner** and is the only
one whose :meth:`ShardedCSR.destroy` removes the files; ``open()``
attaches read-only and ``close()`` merely drops the mappings.  Owner
directories are tracked in a module registry (:func:`active_shard_dirs`)
so tests and the benchmark harness can sweep strays.

The helpers :func:`open_block` / :func:`allocate_block` /
:func:`write_block` are the sanctioned ``np.memmap`` call sites for the
whole repo (lint rule RPR205 flags raw ``np.memmap`` elsewhere).
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import numpy as np

from repro.obs import span
from repro.obs.metrics import counter_add
from repro.obs.monitor import heartbeat

__all__ = [
    "ShardedCSR",
    "ShardedCSRBuilder",
    "open_block",
    "allocate_block",
    "write_block",
    "active_shard_dirs",
    "forget_shard_dir",
    "MANIFEST_SCHEMA",
]

MANIFEST_SCHEMA = "repro/sharded-csr/v1"
MANIFEST_NAME = "manifest.json"

_SIDES = ("user", "item")
_INDEX_DTYPE = np.dtype("<i8")
_WEIGHT_DTYPE = np.dtype("<f8")
_SHARD_DTYPE = np.dtype("<i4")
_FEATURE_DTYPE = np.dtype("<f8")
# Item-side adjacency is accumulated as (item, user, weight) triples and
# re-sorted at finalize; keeping the spill per item shard bounds the sort
# working set to one shard's edges.
_SPILL_DTYPE = np.dtype([("item", "<i8"), ("user", "<i8"), ("weight", "<f8")])

# Directories created (and not yet destroyed) by this process.
_LIVE_DIRS: set[str] = set()


def active_shard_dirs() -> set[str]:
    """Shard directories this process owns and has not destroyed."""
    return set(_LIVE_DIRS)


def forget_shard_dir(path: str | Path) -> None:
    """Drop ``path`` from the owner registry (after external cleanup)."""
    _LIVE_DIRS.discard(str(Path(path)))


# ---------------------------------------------------------------------------
# Sanctioned memmap call sites
# ---------------------------------------------------------------------------
def open_block(
    path: str | Path, dtype: np.dtype, shape: tuple[int, ...], mode: str = "r"
) -> np.ndarray:
    """A memmap over ``path`` (``mode`` "r" or "r+"), or an empty array.

    Zero-element blocks are legal in the format (empty shards) but not
    for ``mmap``, so they come back as ordinary empty arrays.
    """
    if mode not in {"r", "r+"}:
        raise ValueError(f"open_block mode must be 'r' or 'r+', got {mode!r}")
    count = int(np.prod(shape))
    if count == 0:
        return np.empty(shape, dtype=dtype)
    return np.memmap(str(path), dtype=dtype, mode=mode, shape=tuple(shape))


def allocate_block(path: str | Path, dtype: np.dtype, shape: tuple[int, ...]) -> None:
    """Create (or reset) ``path`` sized for ``shape`` without writing data.

    ``truncate`` produces a sparse file, so allocation cost is metadata
    only; pages materialise as they are written.
    """
    nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
    with open(path, "wb") as fh:
        if nbytes:
            fh.truncate(nbytes)


def write_block(path: str | Path, array: np.ndarray, dtype: np.dtype) -> int:
    """Write ``array`` to ``path`` as raw ``dtype`` items; returns nbytes."""
    array = np.ascontiguousarray(np.asarray(array, dtype=dtype))
    with open(path, "wb") as fh:
        array.tofile(fh)
    return array.nbytes


def _slice_positions(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Flat gather index for variable-length slices ``[s, s+len)``.

    ``concatenate([arange(s, s+l) for s, l in zip(starts, lengths)])``
    without the python loop.
    """
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(lengths)
    resets = np.concatenate(([0], ends[:-1]))
    return (
        np.arange(total, dtype=np.int64)
        + np.repeat(np.asarray(starts, dtype=np.int64) - resets, lengths)
    )


class ShardedCSR:
    """A bipartite graph stored as per-shard memory-mapped CSR blocks.

    Build with :meth:`from_graph` (owner, from an in-memory graph),
    :class:`ShardedCSRBuilder` (owner, streamed), or :meth:`open`
    (attach).  As a context manager an owner destroys its directory on
    exit and an attached handle merely closes — the same owner/attach
    split :class:`~repro.parallel.shared.SharedMatrix` uses.
    """

    def __init__(self, path: Path, manifest: dict, owner: bool) -> None:
        """Internal; use :meth:`from_graph` / :meth:`open`."""
        self.path = Path(path)
        self.manifest = manifest
        self._owner = owner
        self._closed = False
        self._load_vertex_tables()
        self._indices_cache: dict[tuple[str, int], np.ndarray] = {}
        self._weights_cache: dict[tuple[str, int], np.ndarray] = {}

    # -- construction ---------------------------------------------------
    @classmethod
    def from_graph(
        cls,
        graph,
        path: str | Path,
        num_shards: int = 4,
        hierarchy=None,
        user_shard: np.ndarray | None = None,
        item_shard: np.ndarray | None = None,
    ) -> "ShardedCSR":
        """Write ``graph`` into a new shard directory; owner handle back.

        Partitioning: explicit ``user_shard``/``item_shard`` arrays win;
        else ``hierarchy`` (a fitted HiGNN
        :class:`~repro.core.hierarchy.HierarchicalEmbeddings`) places
        whole level-1 clusters per shard; else the degree-balanced
        fallback of :func:`repro.shard.partition.partition_by_degree`.
        Per-row neighbour order is copied verbatim from the graph's twin
        CSRs, so samplers over the store replay the dense draw stream.
        """
        from repro.shard.partition import partition_by_degree, partition_from_hierarchy

        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if (user_shard is None) != (item_shard is None):
            raise ValueError("pass both user_shard and item_shard or neither")
        if user_shard is not None:
            partition = "explicit"
            user_shard = np.asarray(user_shard, dtype=_SHARD_DTYPE)
            item_shard = np.asarray(item_shard, dtype=_SHARD_DTYPE)
        elif hierarchy is not None:
            partition = "hierarchy"
            user_shard, item_shard = partition_from_hierarchy(hierarchy, num_shards)
        else:
            partition = "degree"
            user_shard = partition_by_degree(graph.user_degrees(), num_shards)
            item_shard = partition_by_degree(graph.item_degrees(), num_shards)
        for side, arr, n in (
            ("user", user_shard, graph.num_users),
            ("item", item_shard, graph.num_items),
        ):
            if arr.shape != (n,):
                raise ValueError(f"{side}_shard must have shape ({n},)")
            if len(arr) and (arr.min() < 0 or arr.max() >= num_shards):
                raise ValueError(f"{side}_shard ids out of range [0, {num_shards})")

        path = _prepare_directory(path)
        with span(
            "shard.build",
            source="graph",
            num_shards=num_shards,
            num_edges=graph.num_edges,
        ):
            shards_meta: dict[str, list[dict[str, int]]] = {}
            for side, csr, shard_arr in (
                ("user", graph._user_csr, user_shard),
                ("item", graph._item_csr, item_shard),
            ):
                write_block(path / f"{side}_shard.bin", shard_arr, _SHARD_DTYPE)
                degrees = np.diff(csr.indptr)
                side_meta = []
                for s in range(num_shards):
                    rows = np.flatnonzero(shard_arr == s)
                    lengths = degrees[rows]
                    gather = _slice_positions(csr.indptr[rows], lengths)
                    indptr = np.concatenate(([0], np.cumsum(lengths)))
                    write_block(
                        path / f"{side}_{s:03d}.indptr.bin", indptr, _INDEX_DTYPE
                    )
                    write_block(
                        path / f"{side}_{s:03d}.indices.bin",
                        csr.indices[gather],
                        _INDEX_DTYPE,
                    )
                    write_block(
                        path / f"{side}_{s:03d}.weights.bin",
                        csr.weights[gather],
                        _WEIGHT_DTYPE,
                    )
                    side_meta.append({"rows": int(len(rows)), "nnz": int(len(gather))})
                counter_add("shard.edges_written", int(len(csr.indices)))
                shards_meta[side] = side_meta

            feature_dims: dict[str, int | None] = {}
            for side, feats in (
                ("user", graph.user_features),
                ("item", graph.item_features),
            ):
                if feats is None:
                    feature_dims[side] = None
                    continue
                feature_dims[side] = int(feats.shape[1])
                write_block(path / f"{side}_features.bin", feats, _FEATURE_DTYPE)

            edges = graph.edges
            if len(edges):
                local = user_shard[edges[:, 0]] == item_shard[edges[:, 1]]
                edges_shard_local = float(local.mean())
            else:
                edges_shard_local = 1.0
            manifest = _write_manifest(
                path,
                num_users=graph.num_users,
                num_items=graph.num_items,
                num_edges=graph.num_edges,
                num_shards=num_shards,
                partition=partition,
                edges_shard_local=edges_shard_local,
                feature_dims=feature_dims,
                shards=shards_meta,
            )
        _LIVE_DIRS.add(str(path))
        return cls(path, manifest, owner=True)

    @classmethod
    def open(cls, path: str | Path) -> "ShardedCSR":
        """Attach to an existing shard directory (non-owner handle)."""
        path = Path(path)
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.is_file():
            raise FileNotFoundError(f"no shard manifest at {manifest_path}")
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("schema") != MANIFEST_SCHEMA:
            raise ValueError(
                f"unknown shard manifest schema {manifest.get('schema')!r} in {path}"
            )
        return cls(path, manifest, owner=False)

    def _load_vertex_tables(self) -> None:
        """Load the small per-vertex arrays (shard map, local index, degrees).

        These are O(num_vertices) and live in RAM; only the O(num_edges)
        blocks and the feature matrices stay on disk.
        """
        s_count = self.num_shards
        self._shard: dict[str, np.ndarray] = {}
        self._local: dict[str, np.ndarray] = {}
        self._rows: dict[str, list[np.ndarray]] = {}
        self._indptr: dict[str, list[np.ndarray]] = {}
        self._degrees: dict[str, np.ndarray] = {}
        for side in _SIDES:
            n = self.num(side)
            shard_arr = np.fromfile(self.path / f"{side}_shard.bin", dtype=_SHARD_DTYPE)
            if shard_arr.shape != (n,):
                raise ValueError(f"corrupt {side}_shard.bin in {self.path}")
            order = np.argsort(shard_arr, kind="stable")
            counts = np.bincount(shard_arr, minlength=s_count)
            bounds = np.concatenate(([0], np.cumsum(counts)))
            rows = [order[bounds[s] : bounds[s + 1]] for s in range(s_count)]
            local = np.empty(n, dtype=np.int64)
            degrees = np.zeros(n, dtype=np.int64)
            indptrs = []
            for s in range(s_count):
                meta = self.manifest["shards"][side][s]
                if len(rows[s]) != meta["rows"]:
                    raise ValueError(
                        f"{side} shard {s}: manifest says {meta['rows']} rows, "
                        f"shard map has {len(rows[s])}"
                    )
                local[rows[s]] = np.arange(len(rows[s]), dtype=np.int64)
                indptr = np.fromfile(
                    self.path / f"{side}_{s:03d}.indptr.bin", dtype=_INDEX_DTYPE
                )
                if indptr.shape != (len(rows[s]) + 1,):
                    raise ValueError(f"corrupt indptr for {side} shard {s}")
                degrees[rows[s]] = np.diff(indptr)
                indptrs.append(indptr)
            self._shard[side] = shard_arr
            self._local[side] = local
            self._rows[side] = rows
            self._indptr[side] = indptrs
            self._degrees[side] = degrees

    # -- basic queries ---------------------------------------------------
    @property
    def num_users(self) -> int:
        return int(self.manifest["num_users"])

    @property
    def num_items(self) -> int:
        return int(self.manifest["num_items"])

    @property
    def num_edges(self) -> int:
        return int(self.manifest["num_edges"])

    @property
    def num_shards(self) -> int:
        return int(self.manifest["num_shards"])

    @property
    def edges_shard_local(self) -> float:
        """Fraction of edges whose endpoints share a shard."""
        return float(self.manifest["edges_shard_local"])

    @property
    def partition(self) -> str:
        return str(self.manifest["partition"])

    def num(self, side: str) -> int:
        _check_side(side)
        return self.num_users if side == "user" else self.num_items

    def degrees(self, side: str) -> np.ndarray:
        """Global degree array for ``side`` (in RAM, read-only use)."""
        _check_side(side)
        return self._degrees[side]

    def shard_of(self, side: str) -> np.ndarray:
        """Global vertex → shard id map for ``side``."""
        _check_side(side)
        return self._shard[side]

    def shard_rows(self, side: str, shard: int) -> np.ndarray:
        """Ascending global ids owned by ``shard`` on ``side``."""
        _check_side(side)
        return self._rows[side][shard]

    def feature_dim(self, side: str) -> int | None:
        _check_side(side)
        dim = self.manifest["feature_dims"][side]
        return None if dim is None else int(dim)

    def feature_path(self, side: str) -> Path:
        _check_side(side)
        if self.feature_dim(side) is None:
            raise ValueError(f"store has no {side} features")
        return self.path / f"{side}_features.bin"

    def features(self, side: str) -> np.ndarray:
        """Read-only memmap of the (n, d) feature matrix for ``side``."""
        dim = self.feature_dim(side)
        if dim is None:
            raise ValueError(f"store has no {side} features")
        return open_block(
            self.feature_path(side), _FEATURE_DTYPE, (self.num(side), dim), mode="r"
        )

    # -- block access ----------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ValueError(f"sharded store {self.path} is closed")

    def _block_indices(self, side: str, shard: int) -> np.ndarray:
        self._check_open()
        key = (side, shard)
        block = self._indices_cache.get(key)
        if block is None:
            nnz = self.manifest["shards"][side][shard]["nnz"]
            block = open_block(
                self.path / f"{side}_{shard:03d}.indices.bin",
                _INDEX_DTYPE,
                (nnz,),
                mode="r",
            )
            self._indices_cache[key] = block
        return block

    def _block_weights(self, side: str, shard: int) -> np.ndarray:
        self._check_open()
        key = (side, shard)
        block = self._weights_cache.get(key)
        if block is None:
            nnz = self.manifest["shards"][side][shard]["nnz"]
            block = open_block(
                self.path / f"{side}_{shard:03d}.weights.bin",
                _WEIGHT_DTYPE,
                (nnz,),
                mode="r",
            )
            self._weights_cache[key] = block
        return block

    def neighbors(self, side: str, vertex: int) -> tuple[np.ndarray, np.ndarray]:
        """(neighbour ids, weights) of one vertex, in stored CSR order."""
        _check_side(side)
        shard = int(self._shard[side][vertex])
        local = int(self._local[side][vertex])
        indptr = self._indptr[side][shard]
        lo, hi = int(indptr[local]), int(indptr[local + 1])
        ids = np.asarray(self._block_indices(side, shard)[lo:hi])
        weights = np.asarray(self._block_weights(side, shard)[lo:hi])
        counter_add("shard.mmap_bytes_read", (hi - lo) * 16)
        return ids, weights

    def gather_neighbors(
        self, side: str, vertices: np.ndarray, offsets: np.ndarray
    ) -> np.ndarray:
        """Neighbour ids at per-row ``offsets`` into each CSR slice.

        ``offsets`` is ``(len(vertices), fanout)``; rows with degree 0
        return clamped garbage exactly like the dense sampler's clipped
        gather — callers mask them with the degree test.  Visiting the
        shards in ascending id order keeps the result independent of
        layout while each read stays within one mmap block.
        """
        _check_side(side)
        vertices = np.asarray(vertices, dtype=np.int64)
        out = np.full(offsets.shape, -1, dtype=np.int64)
        shard_ids = self._shard[side][vertices]
        local = self._local[side][vertices]
        for s in np.unique(shard_ids):
            mask = shard_ids == s
            block = self._block_indices(side, int(s))
            if len(block) == 0:
                continue
            starts = self._indptr[side][int(s)][local[mask]]
            positions = np.minimum(starts[:, None] + offsets[mask], len(block) - 1)
            out[mask] = block[positions]
            counter_add("shard.mmap_bytes_read", int(positions.size) * 8)
        return out

    # -- conversion ------------------------------------------------------
    def to_graph(self):
        """Materialise the store as an in-memory ``BipartiteGraph``.

        Edges come back in canonical user-major order (ascending user,
        each user's neighbours in stored order) — only for graphs that
        fit in RAM; the point of the store is that the big ones do not.
        """
        from repro.graph.bipartite import BipartiteGraph

        self._check_open()
        with span("shard.to_graph", num_edges=self.num_edges):
            degrees = self._degrees["user"]
            indptr_global = np.concatenate(([0], np.cumsum(degrees)))
            edges = np.empty((self.num_edges, 2), dtype=np.int64)
            weights = np.empty(self.num_edges, dtype=np.float64)
            for s in range(self.num_shards):
                rows = self._rows["user"][s]
                lengths = degrees[rows]
                dest = _slice_positions(indptr_global[rows], lengths)
                edges[dest, 0] = np.repeat(rows, lengths)
                edges[dest, 1] = self._block_indices("user", s)
                weights[dest] = self._block_weights("user", s)
            user_features = (
                np.array(self.features("user"))
                if self.feature_dim("user") is not None
                else None
            )
            item_features = (
                np.array(self.features("item"))
                if self.feature_dim("item") is not None
                else None
            )
            return BipartiteGraph(
                self.num_users,
                self.num_items,
                edges,
                weights,
                user_features,
                item_features,
            )

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Drop all mappings (idempotent); files stay on disk."""
        self._indices_cache = {}
        self._weights_cache = {}
        self._closed = True

    def destroy(self) -> None:
        """Owner cleanup: close and remove the directory (idempotent)."""
        self.close()
        if not self._owner:
            return
        self._owner = False
        _LIVE_DIRS.discard(str(self.path))
        shutil.rmtree(self.path, ignore_errors=True)

    def __enter__(self) -> "ShardedCSR":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._owner:
            self.destroy()
        else:
            self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "owner" if self._owner else ("closed" if self._closed else "attached")
        return (
            f"ShardedCSR({str(self.path)!r}, users={self.num_users}, "
            f"items={self.num_items}, edges={self.num_edges}, "
            f"shards={self.num_shards}, {state})"
        )


def _check_side(side: str) -> None:
    if side not in _SIDES:
        raise ValueError(f"side must be 'user' or 'item', got {side!r}")


def _prepare_directory(path: str | Path) -> Path:
    path = Path(path)
    if (path / MANIFEST_NAME).exists():
        raise FileExistsError(f"shard directory {path} already holds a store")
    path.mkdir(parents=True, exist_ok=True)
    return path


def _write_manifest(
    path: Path,
    *,
    num_users: int,
    num_items: int,
    num_edges: int,
    num_shards: int,
    partition: str,
    edges_shard_local: float,
    feature_dims: dict[str, int | None],
    shards: dict[str, list[dict[str, int]]],
) -> dict:
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "num_users": int(num_users),
        "num_items": int(num_items),
        "num_edges": int(num_edges),
        "num_shards": int(num_shards),
        "partition": partition,
        "edges_shard_local": round(float(edges_shard_local), 6),
        "feature_dims": feature_dims,
        "dtypes": {
            "indptr": _INDEX_DTYPE.str,
            "indices": _INDEX_DTYPE.str,
            "weights": _WEIGHT_DTYPE.str,
            "shard": _SHARD_DTYPE.str,
            "features": _FEATURE_DTYPE.str,
        },
        "shards": shards,
    }
    # The manifest is written last: its presence marks a complete store.
    (path / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2, sort_keys=True))
    return manifest


class ShardedCSRBuilder:
    """Stream a graph into shard files in bounded memory.

    The caller appends users in strict global order (each chunk's edges
    already per-user deduplicated, neighbours in the order that should
    become the stored CSR order).  User-side blocks are append-only;
    item-side adjacency spills as (item, user, weight) triples per item
    shard and is sorted into CSR form at :meth:`finalize` — one shard's
    edges at a time, which is the memory bound.

    Use as a context manager: an exception mid-build removes the partial
    directory.
    """

    def __init__(
        self,
        path: str | Path,
        num_users: int,
        num_items: int,
        num_shards: int,
        user_shard: np.ndarray,
        item_shard: np.ndarray,
        user_feature_dim: int | None = None,
        item_feature_dim: int | None = None,
        partition: str = "explicit",
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_users = int(num_users)
        self.num_items = int(num_items)
        self.num_shards = int(num_shards)
        self.partition = partition
        self.user_shard = np.asarray(user_shard, dtype=_SHARD_DTYPE)
        self.item_shard = np.asarray(item_shard, dtype=_SHARD_DTYPE)
        if self.user_shard.shape != (self.num_users,):
            raise ValueError("user_shard must have one entry per user")
        if self.item_shard.shape != (self.num_items,):
            raise ValueError("item_shard must have one entry per item")
        self.path = _prepare_directory(path)
        self._feature_dims = {"user": user_feature_dim, "item": item_feature_dim}
        self._degrees = np.zeros(self.num_users, dtype=np.int64)
        self._next_user = 0
        self._local_edges = 0
        self._total_edges = 0
        self._finalized = False
        self._user_files = [
            (
                open(self.path / f"user_{s:03d}.indices.bin", "wb"),
                open(self.path / f"user_{s:03d}.weights.bin", "wb"),
            )
            for s in range(self.num_shards)
        ]
        self._spill_files = [
            open(self.path / f"item_{s:03d}.spill.bin", "wb")
            for s in range(self.num_shards)
        ]
        self._feature_maps: dict[str, np.ndarray | None] = {}
        for side, dim in sorted(self._feature_dims.items()):
            if dim is None:
                self._feature_maps[side] = None
                continue
            shape = (self.num(side), int(dim))
            feature_path = self.path / f"{side}_features.bin"
            allocate_block(feature_path, _FEATURE_DTYPE, shape)
            self._feature_maps[side] = open_block(
                feature_path, _FEATURE_DTYPE, shape, mode="r+"
            )

    def num(self, side: str) -> int:
        _check_side(side)
        return self.num_users if side == "user" else self.num_items

    @property
    def num_edges(self) -> int:
        return self._total_edges

    # -- streaming appends ----------------------------------------------
    def append_users(
        self,
        start: int,
        degrees: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
    ) -> None:
        """Append the adjacency of users ``[start, start+len(degrees))``.

        ``indices``/``weights`` are the concatenated per-user neighbour
        lists (already deduplicated; their order here is the order the
        store — and every sampler over it — will observe).  Users must
        arrive in strict sequential order.
        """
        if self._finalized:
            raise ValueError("builder already finalized")
        if start != self._next_user:
            raise ValueError(
                f"users must be appended sequentially (expected {self._next_user}, "
                f"got {start})"
            )
        degrees = np.asarray(degrees, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        count = len(degrees)
        stop = start + count
        if stop > self.num_users:
            raise ValueError("append exceeds num_users")
        total = int(degrees.sum())
        if len(indices) != total or len(weights) != total:
            raise ValueError("indices/weights must match the degree total")
        if total and (indices.min() < 0 or indices.max() >= self.num_items):
            raise ValueError("item index out of range")

        self._degrees[start:stop] = degrees
        self._next_user = stop
        self._total_edges += total
        if not total:
            return
        rep_users = np.repeat(np.arange(start, stop, dtype=np.int64), degrees)
        user_shards = self.user_shard[rep_users]
        item_shards = self.item_shard[indices]
        self._local_edges += int((user_shards == item_shards).sum())
        for s in np.unique(user_shards):
            mask = user_shards == s
            idx_fh, w_fh = self._user_files[int(s)]
            indices[mask].tofile(idx_fh)
            weights[mask].tofile(w_fh)
        for s in np.unique(item_shards):
            mask = item_shards == s
            triples = np.empty(int(mask.sum()), dtype=_SPILL_DTYPE)
            triples["item"] = indices[mask]
            triples["user"] = rep_users[mask]
            triples["weight"] = weights[mask]
            triples.tofile(self._spill_files[int(s)])
        counter_add("shard.edges_written", total)
        heartbeat(
            "shard.stream_users",
            self._next_user,
            self.num_users,
            edges=self._total_edges,
        )

    def set_user_features(self, start: int, block: np.ndarray) -> None:
        self._set_features("user", start, block)

    def set_item_features(self, start: int, block: np.ndarray) -> None:
        self._set_features("item", start, block)

    def _set_features(self, side: str, start: int, block: np.ndarray) -> None:
        if self._finalized:
            raise ValueError("builder already finalized")
        target = self._feature_maps[side]
        if target is None:
            raise ValueError(f"builder was created without {side} features")
        block = np.asarray(block, dtype=np.float64)
        if block.ndim != 2 or block.shape[1] != target.shape[1]:
            raise ValueError(
                f"{side} feature block must be (n, {target.shape[1]}), "
                f"got {block.shape}"
            )
        if start < 0 or start + len(block) > len(target):
            raise ValueError(f"{side} feature block out of range")
        target[start : start + len(block)] = block
        counter_add("shard.mmap_bytes_written", int(block.nbytes))

    # -- finalize / abort ------------------------------------------------
    def finalize(self) -> ShardedCSR:
        """Sort the item-side spills into CSR blocks; return the owner store."""
        if self._finalized:
            raise ValueError("builder already finalized")
        if self._next_user != self.num_users:
            raise ValueError(
                f"only {self._next_user} of {self.num_users} users appended"
            )
        with span(
            "shard.build",
            source="stream",
            num_shards=self.num_shards,
            num_edges=self._total_edges,
        ):
            self._close_streams()
            shards_meta: dict[str, list[dict[str, int]]] = {"user": [], "item": []}
            write_block(self.path / "user_shard.bin", self.user_shard, _SHARD_DTYPE)
            write_block(self.path / "item_shard.bin", self.item_shard, _SHARD_DTYPE)
            for s in range(self.num_shards):
                rows = np.flatnonzero(self.user_shard == s)
                lengths = self._degrees[rows]
                indptr = np.concatenate(([0], np.cumsum(lengths)))
                write_block(self.path / f"user_{s:03d}.indptr.bin", indptr, _INDEX_DTYPE)
                shards_meta["user"].append(
                    {"rows": int(len(rows)), "nnz": int(indptr[-1])}
                )

            item_local = np.full(self.num_items, -1, dtype=np.int64)
            for s in range(self.num_shards):
                rows = np.flatnonzero(self.item_shard == s)
                item_local[rows] = np.arange(len(rows), dtype=np.int64)
                spill_path = self.path / f"item_{s:03d}.spill.bin"
                triples = np.fromfile(spill_path, dtype=_SPILL_DTYPE)
                # The spill arrived in (user, item) order; a stable sort
                # by item therefore leaves each item's users ascending —
                # the same order BipartiteGraph's item CSR derives from a
                # user-major edge list.
                order = np.argsort(triples["item"], kind="stable")
                local = item_local[triples["item"][order]]
                counts = np.bincount(local, minlength=len(rows)) if len(rows) else (
                    np.zeros(0, dtype=np.int64)
                )
                indptr = np.concatenate(([0], np.cumsum(counts)))
                write_block(self.path / f"item_{s:03d}.indptr.bin", indptr, _INDEX_DTYPE)
                write_block(
                    self.path / f"item_{s:03d}.indices.bin",
                    triples["user"][order],
                    _INDEX_DTYPE,
                )
                write_block(
                    self.path / f"item_{s:03d}.weights.bin",
                    triples["weight"][order],
                    _WEIGHT_DTYPE,
                )
                shards_meta["item"].append(
                    {"rows": int(len(rows)), "nnz": int(len(triples))}
                )
                spill_path.unlink()
                heartbeat("shard.finalize", s + 1, self.num_shards)

            local_fraction = (
                self._local_edges / self._total_edges if self._total_edges else 1.0
            )
            manifest = _write_manifest(
                self.path,
                num_users=self.num_users,
                num_items=self.num_items,
                num_edges=self._total_edges,
                num_shards=self.num_shards,
                partition=self.partition,
                edges_shard_local=local_fraction,
                feature_dims=self._feature_dims,
                shards=shards_meta,
            )
        self._finalized = True
        _LIVE_DIRS.add(str(self.path))
        return ShardedCSR(self.path, manifest, owner=True)

    def abort(self) -> None:
        """Discard the partial build and remove the directory."""
        if self._finalized:
            return
        self._close_streams()
        self._finalized = True
        shutil.rmtree(self.path, ignore_errors=True)

    def _close_streams(self) -> None:
        for idx_fh, w_fh in self._user_files:
            if not idx_fh.closed:
                idx_fh.close()
            if not w_fh.closed:
                w_fh.close()
        for fh in self._spill_files:
            if not fh.closed:
                fh.close()
        for side in sorted(self._feature_maps):
            target = self._feature_maps[side]
            if target is not None and isinstance(target, np.memmap):
                target.flush()
            self._feature_maps[side] = None

    def __enter__(self) -> "ShardedCSRBuilder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()
