"""Cluster-aligned sharded storage for out-of-core bipartite graphs.

Public surface:

* :class:`ShardedCSR` / :class:`ShardedCSRBuilder` — per-shard
  memory-mapped CSR blocks with an owner/attach lifecycle.
* :class:`ShardedNeighborSampler` — bitwise mirror of the dense
  unweighted neighbour sampler over shard blocks.
* :func:`partition_balanced` / :func:`partition_by_degree` /
  :func:`partition_from_hierarchy` — deterministic vertex → shard maps.
* :func:`open_block` / :func:`allocate_block` / :func:`write_block` —
  the repo's sanctioned ``np.memmap`` call sites (lint rule RPR205).
"""

from repro.shard.partition import (
    pack_groups,
    partition_balanced,
    partition_by_degree,
    partition_from_hierarchy,
)
from repro.shard.sampler import ShardedNeighborSampler
from repro.shard.storage import (
    MANIFEST_SCHEMA,
    ShardedCSR,
    ShardedCSRBuilder,
    active_shard_dirs,
    allocate_block,
    forget_shard_dir,
    open_block,
    write_block,
)

__all__ = [
    "ShardedCSR",
    "ShardedCSRBuilder",
    "ShardedNeighborSampler",
    "pack_groups",
    "partition_balanced",
    "partition_by_degree",
    "partition_from_hierarchy",
    "active_shard_dirs",
    "forget_shard_dir",
    "open_block",
    "allocate_block",
    "write_block",
    "MANIFEST_SCHEMA",
]
