"""Fork-safe worker pools with deterministic fan-out.

The execution model keeps parallel results bitwise-equal to serial ones
by construction:

* The caller materialises every task (chunk bounds, pre-sampled ids,
  derived RNGs) **in the parent, in a fixed order**, before any fan-out.
* :meth:`WorkerPool.map` runs the same top-level task function on the
  same task tuples whether it executes in-process (``workers<=1``) or on
  the pool, and always returns results in submission order, so reduction
  order never depends on scheduling.

A pool with ``workers<=1`` never spawns anything — tier-1 tests and
small graphs pay one ``if`` per map.  Real pools are created lazily on
first parallel map, are re-created if the handle crosses a ``fork()``
(the inherited pool state is unusable in the child), and degrade to the
in-process path with a warning when the platform cannot provide worker
processes at all.

Observability composes: when a tracer/metrics registry is active in the
parent, each worker task runs under a fresh registry+tracer whose
counters, histograms and span trees are carried back with the result and
merged into the parent session when the map joins — ``--trace`` output
stays complete under ``--workers N``.

Large read-only inputs travel through :mod:`repro.parallel.shared`
segments; the per-map ``context`` object (weights, centres, models) is
pickled once and broadcast — through shared memory when it is big —
instead of being serialised per task.
"""

from __future__ import annotations

import atexit
import logging
import multiprocessing as mp
import os
import pickle
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable, Iterable

from repro.obs.metrics import current_registry, metrics_enabled
from repro.obs.monitor import current_monitor
from repro.obs.trace import current_tracer, span, tracing_enabled
from repro.parallel.shared import attach_untracked

__all__ = [
    "ParallelConfig",
    "WorkerPool",
    "configure",
    "get_pool",
    "default_workers",
    "shutdown_pools",
]

logger = logging.getLogger("repro.parallel")

# Context payloads up to this size ride along inside each task message;
# larger ones are broadcast once through a shared-memory blob.
_INLINE_CONTEXT_BYTES = 65536


@dataclass
class ParallelConfig:
    """Process-global defaults for the parallel execution layer.

    ``workers`` is the pool size :func:`get_pool` hands out when the call
    site does not name one (the CLI's ``--workers`` lands here);
    ``start_method`` picks the multiprocessing context (``fork`` where
    available — required for cheap pool spin-up); ``map_timeout_s``
    bounds every parallel map so a deadlocked pool raises instead of
    hanging the caller.
    """

    workers: int = 1
    start_method: str | None = None
    map_timeout_s: float | None = None

    def resolved_start_method(self) -> str:
        if self.start_method is not None:
            return self.start_method
        return "fork" if "fork" in mp.get_all_start_methods() else mp.get_start_method()


_CONFIG = ParallelConfig()
_POOLS: dict[int, "WorkerPool"] = {}


def configure(
    workers: int | None = None,
    start_method: str | None = None,
    map_timeout_s: float | None = None,
) -> ParallelConfig:
    """Set the process-global defaults; returns the live config."""
    if workers is not None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        _CONFIG.workers = int(workers)
    if start_method is not None:
        _CONFIG.start_method = start_method
    if map_timeout_s is not None:
        _CONFIG.map_timeout_s = float(map_timeout_s)
    return _CONFIG


def default_workers() -> int:
    return _CONFIG.workers


def get_pool(workers: int | None = None) -> "WorkerPool":
    """The shared pool for ``workers`` (default: the configured count).

    Pools are cached per worker count and shut down at interpreter exit,
    so repeated hot-path calls reuse live worker processes.
    """
    count = _CONFIG.workers if workers is None else max(1, int(workers))
    pool = _POOLS.get(count)
    if pool is None:
        pool = _POOLS[count] = WorkerPool(count)
    return pool


def shutdown_pools() -> None:
    """Shut down every cached pool (registered with ``atexit``)."""
    for pool in list(_POOLS.values()):
        pool.shutdown()
    _POOLS.clear()


atexit.register(shutdown_pools)


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------
# One-slot context cache per worker process: maps travel with a context
# key; the blob is deserialised once per worker per map, not per task.
_CTX_CACHE: dict[str, Any] = {"key": None, "value": None}


def _worker_init() -> None:
    """Reset inherited process-global state in a fresh worker.

    Under ``fork`` the child inherits the parent's installed tracer and
    registry; writing to those copies would be silently lost, so workers
    start clean and report through the explicit merge path instead.
    The same goes for the resource monitor: the inherited object's
    sampler thread did not survive the fork, so the global is cleared
    and workers run their own short-lived monitor per task.
    """
    from repro.obs import metrics as _metrics
    from repro.obs import monitor as _monitor
    from repro.obs import trace as _trace

    _trace._TRACER = None
    _metrics._REGISTRY = None
    _monitor._MONITOR = None
    _monitor._ACTIVE.clear()
    _CTX_CACHE["key"] = None
    _CTX_CACHE["value"] = None


def _resolve_context(ctx_ref: tuple | None) -> Any:
    if ctx_ref is None:
        return None
    kind, key, payload = ctx_ref
    if _CTX_CACHE["key"] == key:
        return _CTX_CACHE["value"]
    if kind == "bytes":
        value = pickle.loads(payload)
    else:  # "shm"
        name, size = payload
        shm = attach_untracked(name)
        try:
            value = pickle.loads(bytes(shm.buf[:size]))
        finally:
            shm.close()
    _CTX_CACHE["key"] = key
    _CTX_CACHE["value"] = value
    return value


def _run_task(payload: tuple) -> tuple[Any, dict[str, Any] | None]:
    """Execute one task in a worker; capture obs state when requested.

    When the parent had a :class:`~repro.obs.monitor.ResourceMonitor`
    active, ``monitor_interval`` is its sampling interval and the task
    runs under a worker-local monitor whose series (tagged
    ``worker-<pid>``) ships back inside the obs payload.
    """
    fn, task, ctx_ref, obs_on, monitor_interval, label = payload
    context = _resolve_context(ctx_ref)
    if not obs_on and monitor_interval is None:
        return fn(task, context), None
    from repro.obs.metrics import MetricsRegistry, install_registry, uninstall_registry
    from repro.obs.monitor import ResourceMonitor
    from repro.obs.trace import Tracer, install_tracer, uninstall_tracer

    tracer = install_tracer(Tracer())
    registry = install_registry(MetricsRegistry())
    monitor_series = None
    try:
        with tracer.start(label or getattr(fn, "__name__", "task"), {"pid": os.getpid()}):
            if monitor_interval is not None:
                with ResourceMonitor(
                    interval_s=monitor_interval, tag=f"worker-{os.getpid()}"
                ) as monitor:
                    result = fn(task, context)
                monitor_series = monitor.series()
            else:
                result = fn(task, context)
    finally:
        uninstall_tracer()
        uninstall_registry()
    obs_payload = {
        "metrics": registry.snapshot(),
        "spans": [root.to_dict() for root in tracer.roots],
    }
    if monitor_series is not None:
        obs_payload["monitor"] = monitor_series
    return result, obs_payload


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------
class WorkerPool:
    """A lazily started process pool with an in-process serial mode.

    ``workers<=1`` (the default everywhere) executes maps inline in the
    caller — no processes, no pickling, no shared memory.  ``workers>1``
    forks a ``multiprocessing.Pool`` on first use and keeps it warm.
    """

    def __init__(self, workers: int | None = None, start_method: str | None = None) -> None:
        self.workers = _CONFIG.workers if workers is None else max(1, int(workers))
        self._start_method = start_method
        self._pool: mp.pool.Pool | None = None
        self._owner_pid: int | None = None
        self._broken = False
        self._ctx_counter = 0

    @property
    def parallel(self) -> bool:
        """True when maps will fan out to worker processes."""
        return self.workers > 1 and not self._broken

    # -- lifecycle -----------------------------------------------------
    def _ensure_pool(self) -> mp.pool.Pool | None:
        if self._pool is not None and self._owner_pid == os.getpid():
            return self._pool
        if self._pool is not None:
            # This handle crossed a fork(); the inherited pool machinery
            # belongs to the parent and must not be touched here.
            self._pool = None
        try:
            ctx = mp.get_context((self._start_method or _CONFIG.resolved_start_method()))
            self._pool = ctx.Pool(self.workers, initializer=_worker_init)
        except (OSError, ValueError) as exc:  # e.g. no /dev/shm semaphores
            self._broken = True
            self._pool = None
            logger.warning("worker pool unavailable (%s); running in-process", exc)
            return None
        self._owner_pid = os.getpid()
        return self._pool

    def shutdown(self) -> None:
        """Terminate workers and release pool resources (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is None or self._owner_pid != os.getpid():
            return
        try:
            pool.terminate()
            pool.join()
        except Exception:  # pragma: no cover - interpreter teardown races
            pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- mapping -------------------------------------------------------
    def map(
        self,
        fn: Callable[[Any, Any], Any],
        tasks: Iterable[Any],
        context: Any = None,
        timeout: float | None = None,
        label: str | None = None,
    ) -> list[Any]:
        """Run ``fn(task, context)`` over ``tasks``; results in task order.

        ``fn`` must be a module-level callable (workers import it by
        reference).  ``context`` is broadcast once per map; ``timeout``
        (seconds, default :attr:`ParallelConfig.map_timeout_s`) bounds
        the whole map and raises :class:`TimeoutError` on a hung pool,
        after terminating it so the next map starts fresh.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        name = label or getattr(fn, "__name__", "task")
        if not self.parallel:
            return self._map_inline(fn, tasks, context, name)
        pool = self._ensure_pool()
        if pool is None:
            return self._map_inline(fn, tasks, context, name)
        if timeout is None:
            timeout = _CONFIG.map_timeout_s
        obs_on = tracing_enabled() or metrics_enabled()
        parent_monitor = current_monitor()
        monitor_interval = (
            parent_monitor.interval_s if parent_monitor is not None else None
        )
        ctx_ref, ctx_cleanup = self._prepare_context(context)
        payloads = [
            (fn, task, ctx_ref, obs_on, monitor_interval, name) for task in tasks
        ]
        with span("parallel.map", label=name, tasks=len(tasks), workers=self.workers):
            try:
                raw = pool.map_async(_run_task, payloads).get(timeout)
            except mp.TimeoutError:
                self.shutdown()
                raise TimeoutError(
                    f"parallel map {name!r} ({len(tasks)} tasks, "
                    f"{self.workers} workers) timed out after {timeout}s"
                ) from None
            finally:
                ctx_cleanup()
            results = []
            for result, obs_payload in raw:
                if obs_payload is not None:
                    self._merge_obs(obs_payload)
                results.append(result)
        return results

    def _map_inline(self, fn, tasks: list, context: Any, name: str) -> list[Any]:
        results = []
        for task in tasks:
            with span(name):
                results.append(fn(task, context))
        return results

    def _prepare_context(self, context: Any) -> tuple[tuple | None, Callable[[], None]]:
        if context is None:
            return None, lambda: None
        blob = pickle.dumps(context, protocol=pickle.HIGHEST_PROTOCOL)
        self._ctx_counter += 1
        key = f"{os.getpid()}-{id(self)}-{self._ctx_counter}"
        if len(blob) <= _INLINE_CONTEXT_BYTES:
            return ("bytes", key, blob), lambda: None
        shm = shared_memory.SharedMemory(create=True, size=len(blob))
        shm.buf[: len(blob)] = blob

        def cleanup() -> None:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass

        return ("shm", key, (shm.name, len(blob))), cleanup

    @staticmethod
    def _merge_obs(obs_payload: dict[str, Any]) -> None:
        registry = current_registry()
        if registry is not None:
            registry.merge(obs_payload["metrics"])
        tracer = current_tracer()
        if tracer is not None:
            tracer.adopt(obs_payload["spans"])
        series = obs_payload.get("monitor")
        if series is not None:
            monitor = current_monitor()
            if monitor is not None:
                monitor.adopt_series(series)
