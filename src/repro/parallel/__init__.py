"""Deterministic multi-process execution for the hot paths.

Public surface:

* :class:`WorkerPool` / :func:`get_pool` / :func:`configure` — lazily
  started fork pools with an in-process fallback at ``workers<=1``.
* :class:`SharedMatrix` / :func:`shared_arrays` — zero-copy broadcast of
  large read-only ndarrays to workers via POSIX shared memory.

Design contract: any result computed through this package is bitwise
identical for every worker count, given the same seed.
"""

from repro.parallel.pool import (
    ParallelConfig,
    WorkerPool,
    configure,
    default_workers,
    get_pool,
    shutdown_pools,
)
from repro.parallel.shared import (
    SharedMatrix,
    active_segment_names,
    as_ndarray,
    shared_arrays,
)

__all__ = [
    "ParallelConfig",
    "WorkerPool",
    "configure",
    "default_workers",
    "get_pool",
    "shutdown_pools",
    "SharedMatrix",
    "active_segment_names",
    "as_ndarray",
    "shared_arrays",
]
