"""Zero-copy sharing of large read-only ndarrays across worker processes.

``SharedMatrix`` copies an array once into a POSIX shared-memory segment
(``multiprocessing.shared_memory``).  It pickles to just the segment
*name* plus shape/dtype metadata, so shipping it to a worker costs a few
hundred bytes regardless of the matrix size; the worker attaches to the
same physical pages and reads them through a read-only ndarray view.

Lifecycle rules:

* The creating process is the **owner** — only it unlinks the segment
  (``destroy()``).  Workers merely attach and detach; on Linux the
  kernel keeps the pages alive until the last mapping closes, so the
  owner may unlink while workers still hold views.
* Attached (non-owner) handles unregister themselves from the
  ``multiprocessing.resource_tracker`` so a worker exiting does not
  unlink a segment the owner still uses (the well-known double-cleanup
  pitfall of ``shared_memory`` before Python 3.13's ``track=False``).
* Every live owner segment is tracked in a module registry so tests can
  assert nothing leaked, and the pool shuts leftovers down as a last
  resort.

The :func:`shared_arrays` context manager is the intended call-site API:
it shares arrays only when the pool will actually fan out to worker
processes (otherwise the original arrays pass through untouched, so the
in-process fallback pays nothing) and guarantees cleanup on exit.
"""

from __future__ import annotations

import contextlib
from multiprocessing import resource_tracker, shared_memory
from typing import Iterator

import numpy as np

__all__ = ["SharedMatrix", "shared_arrays", "as_ndarray", "active_segment_names"]

# Names of segments created (and not yet destroyed) by this process.
_LIVE_SEGMENTS: set[str] = set()


def active_segment_names() -> set[str]:
    """Names of shared segments this process owns and has not destroyed."""
    return set(_LIVE_SEGMENTS)


def attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker tracking.

    Only the owner may clean a segment up; before Python 3.13's
    ``track=False`` the sole way to keep an attaching process (and the
    tracker all forked workers share) out of the segment's lifecycle is
    to suppress the registration call itself.  Unregistering *after*
    attach is not enough: the tracker's name cache is a set, so several
    workers attaching the same segment would dedupe their registrations
    but still send one remove each, crashing the tracker with KeyErrors.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class SharedMatrix:
    """A 2-D (or any-D) ndarray backed by named shared memory.

    Build with :meth:`from_array` in the owner process; send to workers
    by pickling (the payload is only ``(name, shape, dtype)``); read via
    :attr:`array`, a read-only view of the shared pages.
    """

    __slots__ = ("name", "shape", "dtype", "_shm", "_owner")

    def __init__(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype: np.dtype,
        shm: shared_memory.SharedMemory,
        owner: bool,
    ) -> None:
        self.name = name
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self._shm = shm
        self._owner = owner

    @classmethod
    def from_array(cls, array: np.ndarray) -> "SharedMatrix":
        """Copy ``array`` into a fresh shared segment (owner handle)."""
        array = np.ascontiguousarray(array)
        shm = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
        if array.nbytes:
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
            view[...] = array
            del view
        _LIVE_SEGMENTS.add(shm.name)
        return cls(shm.name, array.shape, array.dtype, shm, owner=True)

    @classmethod
    def _attach(cls, name: str, shape: tuple[int, ...], dtype_str: str) -> "SharedMatrix":
        """Attach to an existing segment by name (worker side)."""
        shm = attach_untracked(name)
        return cls(name, tuple(shape), np.dtype(dtype_str), shm, owner=False)

    def __reduce__(self):
        return (SharedMatrix._attach, (self.name, self.shape, self.dtype.str))

    @property
    def array(self) -> np.ndarray:
        """Read-only ndarray view over the shared pages (no copy)."""
        if self._shm is None:
            raise ValueError(f"shared matrix {self.name} is closed")
        view = np.ndarray(self.shape, dtype=self.dtype, buffer=self._shm.buf)
        view.flags.writeable = False
        return view

    def close(self) -> None:
        """Detach this handle (safe to call repeatedly)."""
        if self._shm is None:
            return
        try:
            self._shm.close()
        except BufferError:
            # A view is still alive in this process (e.g. the in-process
            # fallback read through the owner handle).  Leave the mapping
            # for the interpreter to reclaim; unlink still proceeds.
            pass
        self._shm = None

    def destroy(self) -> None:
        """Owner cleanup: detach and unlink the segment (idempotent)."""
        shm = self._shm
        self.close()
        if not self._owner:
            return
        self._owner = False
        _LIVE_SEGMENTS.discard(self.name)
        try:
            (shm or shared_memory.SharedMemory(name=self.name)).unlink()
        except FileNotFoundError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._shm is None else ("owner" if self._owner else "attached")
        return f"SharedMatrix({self.name!r}, shape={self.shape}, {state})"


def as_ndarray(obj: "SharedMatrix | np.ndarray") -> np.ndarray:
    """The ndarray behind either a plain array or a shared handle.

    Task functions call this on their inputs so the same code runs
    unchanged in-process (plain arrays) and in workers (shared handles).
    """
    if isinstance(obj, SharedMatrix):
        return obj.array
    return np.asarray(obj)


@contextlib.contextmanager
def shared_arrays(pool, *arrays: np.ndarray) -> Iterator[tuple]:
    """Share ``arrays`` for the duration of a parallel map.

    Yields shared handles when ``pool`` will fan out to processes, or the
    original arrays untouched otherwise; owner segments are destroyed on
    exit no matter how the block ends.
    """
    if pool is None or not pool.parallel:
        yield arrays
        return
    handles = [SharedMatrix.from_array(a) for a in arrays]
    try:
        yield tuple(handles)
    finally:
        for handle in handles:
            handle.destroy()
