"""Named dataset presets mirroring the paper's three Taobao datasets.

Each preset is a deterministic (seeded) scaled-down analogue:

* ``mini-taobao1`` — dense click/transaction graph (Table I row 1).
* ``mini-taobao2`` — cold-start new-arrival slice (Table I row 2).
* ``mini-taobao3`` — query–item click graph for taxonomy (Table V).

``size`` picks a scale: ``tiny`` for tests, ``small`` for benches,
``default`` for examples.
"""

from __future__ import annotations

from repro.data.synthetic import TaobaoGenerator, WorldConfig
from repro.data.synthetic_text import QueryItemGenerator, QueryWorldConfig
from repro.data.schema import EcommerceDataset
from repro.data.synthetic_text import QueryItemDataset

__all__ = ["load_dataset", "load_query_dataset", "PREDICTION_SIZES", "TAXONOMY_SIZES"]

PREDICTION_SIZES: dict[str, WorldConfig] = {
    "tiny": WorldConfig(
        num_users=120,
        num_items=90,
        branching=(3, 2),
        interactions_per_user=20.0,
        feature_dim=8,
    ),
    "small": WorldConfig(
        num_users=700,
        num_items=900,
        branching=(4, 3),
        interactions_per_user=25.0,
        feature_noise=1.0,
    ),
    "default": WorldConfig(
        num_users=1400,
        num_items=1800,
        branching=(4, 3, 3),
        interactions_per_user=30.0,
        feature_noise=1.0,
    ),
}

TAXONOMY_SIZES: dict[str, QueryWorldConfig] = {
    "tiny": QueryWorldConfig(
        num_queries=80,
        num_items=120,
        branching=(3, 2),
        clicks_per_query=8.0,
    ),
    "small": QueryWorldConfig(
        num_queries=300,
        num_items=450,
        branching=(4, 3),
        clicks_per_query=10.0,
    ),
    "default": QueryWorldConfig(
        num_queries=600,
        num_items=900,
        branching=(4, 3, 3),
        clicks_per_query=12.0,
    ),
}


def load_dataset(
    name: str, size: str = "small", seed: int = 0
) -> EcommerceDataset:
    """Build one of the prediction datasets.

    ``mini-taobao1`` and ``mini-taobao2`` built with the same seed share
    one latent world, as in the paper where #2 is a slice of the same
    platform's traffic.
    """
    if size not in PREDICTION_SIZES:
        raise ValueError(f"unknown size {size!r}; choose from {sorted(PREDICTION_SIZES)}")
    generator = TaobaoGenerator(PREDICTION_SIZES[size], seed=seed)
    if name == "mini-taobao1":
        return generator.build_dataset(name)
    if name == "mini-taobao2":
        return generator.build_cold_start_dataset(name)
    raise ValueError(
        f"unknown dataset {name!r}; choose 'mini-taobao1' or 'mini-taobao2'"
    )


def load_query_dataset(
    name: str = "mini-taobao3", size: str = "small", seed: int = 0
) -> QueryItemDataset:
    """Build the taxonomy (query–item) dataset."""
    if name != "mini-taobao3":
        raise ValueError(f"unknown query dataset {name!r}; only 'mini-taobao3'")
    if size not in TAXONOMY_SIZES:
        raise ValueError(f"unknown size {size!r}; choose from {sorted(TAXONOMY_SIZES)}")
    return QueryItemGenerator(TAXONOMY_SIZES[size], seed=seed).build_dataset(name)
