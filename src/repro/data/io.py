"""Persisting datasets and hierarchies to ``.npz`` archives.

Synthetic worlds are cheap to regenerate, but freezing one to disk makes
experiments exactly shareable (no dependence on generator code drift)
and lets external bipartite data enter the same pipelines: any
(edges, weights, features, samples) bundle round-trips through
:func:`save_dataset` / :func:`load_dataset_file`.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.data.schema import EcommerceDataset, InteractionLog, LabeledSamples
from repro.graph.bipartite import BipartiteGraph

__all__ = ["save_dataset", "load_dataset_file", "save_embeddings", "load_embeddings"]


def save_dataset(dataset: EcommerceDataset, path: str | os.PathLike) -> None:
    """Write a dataset (graph + samples + side tables) to one ``.npz``.

    The ground-truth oracle is generator state and is *not* persisted —
    a loaded dataset behaves like real-world data with no oracle.
    """
    graph = dataset.graph
    arrays: dict[str, np.ndarray] = {
        "edges": graph.edges,
        "edge_weights": graph.edge_weights,
        "shape": np.array([graph.num_users, graph.num_items]),
        "train_users": dataset.train.users,
        "train_items": dataset.train.items,
        "train_labels": dataset.train.labels,
        "test_users": dataset.test.users,
        "test_items": dataset.test.items,
        "test_labels": dataset.test.labels,
        "user_profiles": dataset.user_profiles,
        "item_stats": dataset.item_stats,
        "log_users": dataset.log.users,
        "log_items": dataset.log.items,
        "log_days": dataset.log.days,
        "log_clicks": dataset.log.clicks,
        "log_purchases": dataset.log.purchases,
    }
    if graph.user_features is not None:
        arrays["user_features"] = graph.user_features
    if graph.item_features is not None:
        arrays["item_features"] = graph.item_features
    meta = {"name": dataset.name, "metadata": dataset.metadata}
    arrays["meta_json"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def load_dataset_file(path: str | os.PathLike) -> EcommerceDataset:
    """Restore a dataset written by :func:`save_dataset`."""
    with np.load(path) as archive:
        num_users, num_items = archive["shape"]
        graph = BipartiteGraph(
            int(num_users),
            int(num_items),
            archive["edges"],
            archive["edge_weights"],
            user_features=archive["user_features"] if "user_features" in archive else None,
            item_features=archive["item_features"] if "item_features" in archive else None,
        )
        meta = json.loads(bytes(archive["meta_json"]).decode("utf-8"))
        return EcommerceDataset(
            name=meta["name"],
            graph=graph,
            train=LabeledSamples(
                archive["train_users"], archive["train_items"], archive["train_labels"]
            ),
            test=LabeledSamples(
                archive["test_users"], archive["test_items"], archive["test_labels"]
            ),
            user_profiles=archive["user_profiles"],
            item_stats=archive["item_stats"],
            log=InteractionLog(
                users=archive["log_users"],
                items=archive["log_items"],
                days=archive["log_days"],
                clicks=archive["log_clicks"],
                purchases=archive["log_purchases"],
            ),
            ground_truth=None,
            metadata=meta["metadata"],
        )


def save_embeddings(
    path: str | os.PathLike,
    user_embeddings: np.ndarray,
    item_embeddings: np.ndarray,
    level_dims: list[int] | None = None,
) -> None:
    """Persist hierarchical embedding matrices (z^H) for serving."""
    arrays = {
        "user_embeddings": np.asarray(user_embeddings),
        "item_embeddings": np.asarray(item_embeddings),
    }
    if level_dims is not None:
        arrays["level_dims"] = np.asarray(level_dims, dtype=np.int64)
    np.savez_compressed(path, **arrays)


def load_embeddings(
    path: str | os.PathLike,
) -> tuple[np.ndarray, np.ndarray, list[int] | None]:
    """Load matrices written by :func:`save_embeddings`."""
    with np.load(path) as archive:
        dims = archive["level_dims"].tolist() if "level_dims" in archive else None
        return archive["user_embeddings"], archive["item_embeddings"], dims
