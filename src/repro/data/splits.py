"""Train/validation splitting helpers for labelled sample sets."""

from __future__ import annotations

import numpy as np

from repro.data.schema import LabeledSamples
from repro.utils.rng import ensure_rng

__all__ = ["train_validation_split", "stratified_split"]


def train_validation_split(
    samples: LabeledSamples,
    validation_fraction: float = 0.1,
    rng: int | np.random.Generator | None = None,
) -> tuple[LabeledSamples, LabeledSamples]:
    """Random split; validation gets ``validation_fraction`` of rows."""
    if not 0.0 < validation_fraction < 1.0:
        raise ValueError("validation_fraction must be in (0, 1)")
    rng = ensure_rng(rng)
    n = len(samples)
    order = rng.permutation(n)
    n_val = max(1, int(round(validation_fraction * n)))
    val_idx, train_idx = order[:n_val], order[n_val:]
    return _take(samples, train_idx), _take(samples, val_idx)


def stratified_split(
    samples: LabeledSamples,
    validation_fraction: float = 0.1,
    rng: int | np.random.Generator | None = None,
) -> tuple[LabeledSamples, LabeledSamples]:
    """Split preserving the positive/negative ratio in both parts."""
    if not 0.0 < validation_fraction < 1.0:
        raise ValueError("validation_fraction must be in (0, 1)")
    rng = ensure_rng(rng)
    val_parts = []
    train_parts = []
    for label in (0, 1):
        idx = np.flatnonzero(samples.labels == label)
        rng.shuffle(idx)
        n_val = int(round(validation_fraction * len(idx)))
        val_parts.append(idx[:n_val])
        train_parts.append(idx[n_val:])
    train_idx = np.concatenate(train_parts)
    val_idx = np.concatenate(val_parts)
    rng.shuffle(train_idx)
    rng.shuffle(val_idx)
    return _take(samples, train_idx), _take(samples, val_idx)


def _take(samples: LabeledSamples, idx: np.ndarray) -> LabeledSamples:
    return LabeledSamples(
        users=samples.users[idx],
        items=samples.items[idx],
        labels=samples.labels[idx],
    )
