"""Sample re-balancing strategies.

The paper (Section IV-B-1) replicates positive samples in Taobao #1 so
the positive:negative ratio becomes 1:3, while Taobao #2 keeps the raw
cold-start imbalance.  ``replicate_to_ratio`` implements that strategy.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import LabeledSamples
from repro.utils.rng import ensure_rng

__all__ = ["replicate_to_ratio", "subsample_negatives", "class_ratio"]


def class_ratio(samples: LabeledSamples) -> float:
    """negatives per positive; ``inf`` when there are no positives."""
    pos = samples.num_positive
    if pos == 0:
        return float("inf")
    return samples.num_negative / pos


def replicate_to_ratio(
    samples: LabeledSamples,
    negatives_per_positive: float = 3.0,
    rng: int | np.random.Generator | None = None,
) -> LabeledSamples:
    """Replicate positives until ratio <= ``negatives_per_positive``.

    Positives are replicated whole-copy plus a random remainder so the
    realised ratio matches the target as closely as integer counts
    allow.  If the data is already at or below the target ratio it is
    returned unchanged.
    """
    if negatives_per_positive <= 0:
        raise ValueError("negatives_per_positive must be positive")
    rng = ensure_rng(rng)
    n_pos = samples.num_positive
    n_neg = samples.num_negative
    if n_pos == 0 or n_neg / n_pos <= negatives_per_positive:
        return samples
    # ceil, not round: rounding down can leave the realised ratio above
    # the target (e.g. 21 negatives at 9.0 -> 2 positives is 10.5:1).
    target_pos = int(np.ceil(n_neg / negatives_per_positive))
    pos_idx = np.flatnonzero(samples.labels == 1)
    full_copies, remainder = divmod(target_pos, n_pos)
    replicated = [pos_idx] * full_copies
    if remainder:
        replicated.append(rng.choice(pos_idx, size=remainder, replace=False))
    neg_idx = np.flatnonzero(samples.labels == 0)
    all_idx = np.concatenate(replicated + [neg_idx])
    rng.shuffle(all_idx)
    return LabeledSamples(
        users=samples.users[all_idx],
        items=samples.items[all_idx],
        labels=samples.labels[all_idx],
    )


def subsample_negatives(
    samples: LabeledSamples,
    negatives_per_positive: float = 3.0,
    rng: int | np.random.Generator | None = None,
) -> LabeledSamples:
    """Alternative re-balancer: drop negatives down to the target ratio."""
    if negatives_per_positive <= 0:
        raise ValueError("negatives_per_positive must be positive")
    rng = ensure_rng(rng)
    n_pos = samples.num_positive
    if n_pos == 0:
        return samples
    neg_idx = np.flatnonzero(samples.labels == 0)
    target_neg = int(round(n_pos * negatives_per_positive))
    if len(neg_idx) <= target_neg:
        return samples
    kept_neg = rng.choice(neg_idx, size=target_neg, replace=False)
    pos_idx = np.flatnonzero(samples.labels == 1)
    all_idx = np.concatenate([pos_idx, kept_neg])
    rng.shuffle(all_idx)
    return LabeledSamples(
        users=samples.users[all_idx],
        items=samples.items[all_idx],
        labels=samples.labels[all_idx],
    )
