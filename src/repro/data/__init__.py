"""Datasets: schema, synthetic Taobao-like generators, splits, sampling."""

from repro.data.schema import (
    EcommerceDataset,
    InteractionLog,
    LabeledSamples,
    dataset_statistics,
)
from repro.data.topics import TopicTree
from repro.data.synthetic import (
    GroundTruth,
    StreamedWorldConfig,
    TaobaoGenerator,
    WorldConfig,
    stream_world_to_shards,
)
from repro.data.synthetic_text import (
    QueryItemDataset,
    QueryItemGenerator,
    QueryWorldConfig,
)
from repro.data.sampling import class_ratio, replicate_to_ratio, subsample_negatives
from repro.data.splits import stratified_split, train_validation_split
from repro.data.datasets import load_dataset, load_query_dataset
from repro.data.io import (
    load_dataset_file,
    load_embeddings,
    save_dataset,
    save_embeddings,
)

__all__ = [
    "EcommerceDataset",
    "InteractionLog",
    "LabeledSamples",
    "dataset_statistics",
    "TopicTree",
    "GroundTruth",
    "TaobaoGenerator",
    "WorldConfig",
    "StreamedWorldConfig",
    "stream_world_to_shards",
    "QueryItemDataset",
    "QueryItemGenerator",
    "QueryWorldConfig",
    "class_ratio",
    "replicate_to_ratio",
    "subsample_negatives",
    "stratified_split",
    "train_validation_split",
    "load_dataset",
    "load_query_dataset",
    "load_dataset_file",
    "load_embeddings",
    "save_dataset",
    "save_embeddings",
]
