"""Ground-truth topic hierarchies for the synthetic e-commerce world.

The paper motivates HiGNN with a "topic-driven taxonomy" (Fig. 1): items
live under leaf topics, leaf topics roll up into broader shopping
scenarios.  The closed Taobao traces are replaced by a generative world
whose latent structure *is* such a tree — giving every experiment an
oracle to score against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import ensure_rng

__all__ = ["TopicTree"]

# Syllable pool used to synthesise pronounceable topic/word names so the
# taxonomy case study (Fig. 5 reproduction) prints readable labels.
_SYLLABLES = [
    "ka", "lo", "mi", "ren", "su", "ta", "vel", "zor", "an", "bri",
    "cal", "dun", "eli", "far", "gos", "hul", "ist", "jen", "kor", "lum",
]


@dataclass
class TopicTree:
    """A rooted tree of topics with embeddings and vocabularies.

    Nodes are numbered in breadth-first order with the root at index 0.
    ``branching`` gives the fan-out at each depth, e.g. ``(4, 3, 2)``
    creates 4 depth-1 topics, 12 depth-2 topics and 24 leaf topics.

    Attributes
    ----------
    parent:
        ``parent[v]`` is the parent node id (-1 for the root).
    depth:
        ``depth[v]`` in ``[0, len(branching)]``.
    embeddings:
        ``(n_nodes, dim)`` hierarchical-diffusion embeddings — each child
        is its parent plus shrinking Gaussian noise, so tree proximity is
        geometric proximity.
    vocab:
        ``vocab[v]`` is the list of words associated with topic ``v``.
    names:
        A readable synthetic name per node.
    """

    branching: tuple[int, ...]
    parent: np.ndarray
    depth: np.ndarray
    children: list[list[int]]
    embeddings: np.ndarray
    vocab: list[list[str]]
    names: list[str]
    _leaf_ids: np.ndarray = field(repr=False, default=None)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        branching: tuple[int, ...] = (4, 3, 3),
        embedding_dim: int = 16,
        words_per_topic: int = 6,
        diffusion_scale: float = 2.0,
        rng: int | np.random.Generator | None = None,
    ) -> "TopicTree":
        """Sample a random topic tree.

        ``diffusion_scale`` controls how far level-1 topics sit from the
        root; each deeper level uses half the previous scale so sibling
        leaves stay closer together than cousin leaves.
        """
        if not branching or any(b < 1 for b in branching):
            raise ValueError("branching must be a non-empty tuple of positives")
        rng = ensure_rng(rng)

        parent_list = [-1]
        depth_list = [0]
        frontier = [0]
        for level, fanout in enumerate(branching, start=1):
            next_frontier = []
            for node in frontier:
                for _ in range(fanout):
                    child = len(parent_list)
                    parent_list.append(node)
                    depth_list.append(level)
                    next_frontier.append(child)
            frontier = next_frontier
        parent = np.asarray(parent_list, dtype=np.int64)
        depth = np.asarray(depth_list, dtype=np.int64)
        n_nodes = len(parent)

        children: list[list[int]] = [[] for _ in range(n_nodes)]
        for v in range(1, n_nodes):
            children[parent[v]].append(v)

        embeddings = np.zeros((n_nodes, embedding_dim))
        for v in range(1, n_nodes):
            scale = diffusion_scale / (2.0 ** (depth[v] - 1))
            embeddings[v] = embeddings[parent[v]] + rng.normal(
                scale=scale, size=embedding_dim
            )

        vocab: list[list[str]] = []
        names: list[str] = []
        used_names: set[str] = set()
        for v in range(n_nodes):
            name = cls._make_name(rng, used_names)
            names.append(name)
            vocab.append([f"{name}_{j}" for j in range(words_per_topic)])

        tree = cls(
            branching=tuple(branching),
            parent=parent,
            depth=depth,
            children=children,
            embeddings=embeddings,
            vocab=vocab,
            names=names,
        )
        tree._leaf_ids = np.flatnonzero(depth == len(branching))
        return tree

    @staticmethod
    def _make_name(rng: np.random.Generator, used: set[str]) -> str:
        while True:
            parts = rng.choice(_SYLLABLES, size=rng.integers(2, 4), replace=True)
            name = "".join(parts)
            if name not in used:
                used.add(name)
                return name

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.parent)

    @property
    def max_depth(self) -> int:
        return len(self.branching)

    @property
    def leaves(self) -> np.ndarray:
        """Node ids at maximum depth."""
        if self._leaf_ids is None:
            self._leaf_ids = np.flatnonzero(self.depth == self.max_depth)
        return self._leaf_ids

    @property
    def n_leaves(self) -> int:
        return len(self.leaves)

    def ancestors(self, node: int) -> list[int]:
        """Path from ``node`` (exclusive) up to the root (inclusive)."""
        path = []
        v = self.parent[node]
        while v != -1:
            path.append(int(v))
            v = self.parent[v]
        return path

    def ancestor_at_depth(self, node: int, target_depth: int) -> int:
        """The ancestor of ``node`` at ``target_depth`` (may be itself)."""
        if target_depth > self.depth[node]:
            raise ValueError("target depth is below the node")
        v = int(node)
        while self.depth[v] > target_depth:
            v = int(self.parent[v])
        return v

    def lowest_common_ancestor(self, a: int, b: int) -> int:
        a, b = int(a), int(b)
        while self.depth[a] > self.depth[b]:
            a = int(self.parent[a])
        while self.depth[b] > self.depth[a]:
            b = int(self.parent[b])
        while a != b:
            a = int(self.parent[a])
            b = int(self.parent[b])
        return a

    def leaf_distance(self, leaf_a: int, leaf_b: int) -> int:
        """max_depth - depth(LCA): 0 for the same leaf, 1 for siblings..."""
        lca = self.lowest_common_ancestor(leaf_a, leaf_b)
        return int(self.max_depth - self.depth[lca])

    def leaf_distance_matrix(self) -> np.ndarray:
        """``(n_leaves, n_leaves)`` matrix of :meth:`leaf_distance`."""
        leaves = self.leaves
        n = len(leaves)
        out = np.zeros((n, n), dtype=np.int64)
        for i in range(n):
            for j in range(i + 1, n):
                d = self.leaf_distance(leaves[i], leaves[j])
                out[i, j] = d
                out[j, i] = d
        return out

    def topic_words(self, node: int, include_ancestors: bool = True) -> list[str]:
        """Vocabulary of ``node``, optionally mixed with ancestor words."""
        words = list(self.vocab[node])
        if include_ancestors:
            for anc in self.ancestors(node):
                if anc != 0:  # root words are uninformative filler
                    words.extend(self.vocab[anc])
        return words
