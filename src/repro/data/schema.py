"""Dataset schema objects shared by generators, trainers, and benches.

The paper's Taobao datasets are click/transaction logs; we model them as
:class:`InteractionLog` (one row per user-item interaction with a day
stamp, click count and purchase flag) plus side tables of user profiles
and item statistics (Section IV-A lists gender/purchasing power and
click/purchase counts as the non-graph features of the CVR model).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.bipartite import BipartiteGraph

__all__ = ["InteractionLog", "LabeledSamples", "EcommerceDataset", "dataset_statistics"]


@dataclass
class InteractionLog:
    """Columnar log of user-item interactions.

    Attributes
    ----------
    users, items:
        Integer vertex ids, aligned row-by-row.
    days:
        Day index of each interaction (0-based).
    clicks:
        Click counts (>= 1 — a row exists only if the user clicked).
    purchases:
        1 if the click converted into a transaction, else 0.
    """

    users: np.ndarray
    items: np.ndarray
    days: np.ndarray
    clicks: np.ndarray
    purchases: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.users)
        for name in ("items", "days", "clicks", "purchases"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"column {name!r} length differs from users")
        if n and self.clicks.min() < 1:
            raise ValueError("click counts must be >= 1")

    def __len__(self) -> int:
        return len(self.users)

    def filter_days(self, days: set[int] | list[int]) -> "InteractionLog":
        """Rows whose day stamp is in ``days``."""
        wanted = np.isin(self.days, sorted(days))
        return InteractionLog(
            users=self.users[wanted],
            items=self.items[wanted],
            days=self.days[wanted],
            clicks=self.clicks[wanted],
            purchases=self.purchases[wanted],
        )

    def filter_items(self, item_ids: np.ndarray) -> "InteractionLog":
        """Rows whose item is in ``item_ids`` (cold-start slicing)."""
        wanted = np.isin(self.items, item_ids)
        return InteractionLog(
            users=self.users[wanted],
            items=self.items[wanted],
            days=self.days[wanted],
            clicks=self.clicks[wanted],
            purchases=self.purchases[wanted],
        )

    def to_graph(
        self,
        num_users: int,
        num_items: int,
        user_features: np.ndarray | None = None,
        item_features: np.ndarray | None = None,
    ) -> BipartiteGraph:
        """Aggregate the log into a click-weighted bipartite graph."""
        edges = np.column_stack([self.users, self.items])
        return BipartiteGraph(
            num_users,
            num_items,
            edges,
            weights=self.clicks.astype(np.float64),
            user_features=user_features,
            item_features=item_features,
        )


@dataclass
class LabeledSamples:
    """(user, item, label) triples for supervised CVR training.

    The paper's convention (Section IV-B-1): purchases are positives,
    clicks without purchase are negatives.
    """

    users: np.ndarray
    items: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.users) == len(self.items) == len(self.labels)):
            raise ValueError("sample columns must have equal length")

    def __len__(self) -> int:
        return len(self.users)

    @property
    def num_positive(self) -> int:
        return int(self.labels.sum())

    @property
    def num_negative(self) -> int:
        return len(self) - self.num_positive

    @classmethod
    def from_log(cls, log: InteractionLog) -> "LabeledSamples":
        return cls(
            users=log.users.copy(),
            items=log.items.copy(),
            labels=log.purchases.astype(np.int64).copy(),
        )

    def shuffled(self, rng: np.random.Generator) -> "LabeledSamples":
        order = rng.permutation(len(self))
        return LabeledSamples(self.users[order], self.items[order], self.labels[order])


@dataclass
class EcommerceDataset:
    """Everything a prediction experiment needs, bundled.

    ``graph`` holds only the *training-period* interactions (the paper
    trains on one week of logs and tests on the following day, so test
    edges never leak into the graph).  ``ground_truth`` carries the
    generator-side oracle used for simulated online evaluation; real
    deployments would not have it, and no model is allowed to read it.
    """

    name: str
    graph: BipartiteGraph
    train: LabeledSamples
    test: LabeledSamples
    user_profiles: np.ndarray
    item_stats: np.ndarray
    log: InteractionLog
    ground_truth: object | None = None
    metadata: dict = field(default_factory=dict)

    @property
    def num_users(self) -> int:
        return self.graph.num_users

    @property
    def num_items(self) -> int:
        return self.graph.num_items


def dataset_statistics(dataset: EcommerceDataset) -> dict[str, float]:
    """The Table I row for a dataset: users, items, clicks, density.

    Counts follow the paper's convention: the vertices and clicks *in
    scope* for the dataset (for the cold-start dataset, only new-arrival
    items and the users who touched them), with density defined as
    clicks / (users x items) — the formula that reproduces Table I's
    6.11e-7 for Taobao #1.
    """
    log = dataset.log
    train_days = dataset.metadata.get("train_days")
    if train_days is not None:
        log = log.filter_days(set(train_days))
    new_items = dataset.metadata.get("new_items")
    if dataset.metadata.get("cold_start") and new_items is not None:
        log = log.filter_items(np.asarray(new_items))
    users = len(np.unique(log.users))
    items = len(np.unique(log.items))
    clicks = float(log.clicks.sum())
    denominator = max(users * items, 1)
    return {
        "users": users,
        "items": items,
        "clicks": clicks,
        "density": clicks / denominator,
    }
