"""Synthetic query–item corpus for the taxonomy experiments (Section V).

The paper's Taobao #3 dataset is a query–item click graph with textual
queries and item titles.  We generate both from the same ground-truth
:class:`~repro.data.topics.TopicTree` used for the prediction datasets:
an item title mixes words of its leaf topic and ancestors; a query is a
shorter bag of words from a (possibly internal) topic; a click edge
connects a query to an item when their topics are close in the tree,
with click counts as edge weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.topics import TopicTree
from repro.graph.bipartite import BipartiteGraph
from repro.utils.rng import derive_rng, ensure_rng

__all__ = ["QueryWorldConfig", "QueryItemDataset", "QueryItemGenerator"]


@dataclass
class QueryWorldConfig:
    """Knobs of the synthetic query–item world (Taobao #3 analogue)."""

    num_queries: int = 600
    num_items: int = 900
    branching: tuple[int, ...] = (4, 3, 3)
    topic_dim: int = 16
    title_length: int = 8
    query_length: int = 3
    clicks_per_query: float = 12.0
    topic_match_decay: float = 0.25  # click propensity per tree-distance step
    internal_query_fraction: float = 0.3  # queries about non-leaf topics
    # Textual noise — real titles share brand/filler words and borrow
    # terms across categories, so pure bag-of-words clustering must not
    # trivially solve the task (the click graph has to contribute).
    num_generic_words: int = 40
    generic_word_fraction: float = 0.45
    cross_topic_word_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.num_queries < 2 or self.num_items < 2:
            raise ValueError("world needs at least 2 queries and 2 items")
        if not 0.0 < self.topic_match_decay < 1.0:
            raise ValueError("topic_match_decay must be in (0, 1)")


@dataclass
class QueryItemDataset:
    """Bundle of the query–item graph, texts, and the ground-truth oracle."""

    name: str
    graph: BipartiteGraph  # "users" are queries
    query_texts: list[list[str]]
    item_titles: list[list[str]]
    tree: TopicTree
    query_topic: np.ndarray  # ground-truth topic node per query
    item_leaf: np.ndarray  # ground-truth leaf topic node per item
    metadata: dict = field(default_factory=dict)

    @property
    def num_queries(self) -> int:
        return self.graph.num_users

    @property
    def num_items(self) -> int:
        return self.graph.num_items

    def item_label_at_depth(self, depth: int) -> np.ndarray:
        """Ground-truth topic of each item at the given tree depth."""
        return np.array(
            [self.tree.ancestor_at_depth(int(leaf), depth) for leaf in self.item_leaf]
        )


class QueryItemGenerator:
    """Generate :class:`QueryItemDataset` objects."""

    def __init__(
        self,
        config: QueryWorldConfig | None = None,
        seed: int | np.random.Generator | None = 0,
        tree: TopicTree | None = None,
    ) -> None:
        self.config = config or QueryWorldConfig()
        self.rng = ensure_rng(seed)
        self.tree = tree or TopicTree.generate(
            branching=self.config.branching,
            embedding_dim=self.config.topic_dim,
            rng=derive_rng(self.rng, 1),
        )

    def build_dataset(self, name: str = "mini-taobao3") -> QueryItemDataset:
        cfg = self.config
        tree = self.tree
        rng = derive_rng(self.rng, 2)
        n_leaves = tree.n_leaves

        generic_pool = [f"generic_{j}" for j in range(cfg.num_generic_words)]
        all_topics = np.flatnonzero(tree.depth > 0)

        # Items: leaf topic + title text.
        item_leaf_index = rng.integers(0, n_leaves, size=cfg.num_items)
        item_leaf = tree.leaves[item_leaf_index]
        item_titles = [
            self._sample_text(tree, int(leaf), cfg.title_length, rng, generic_pool, all_topics)
            for leaf in item_leaf
        ]

        # Queries: mostly leaf topics, some broader (internal) intents.
        query_topic = np.empty(cfg.num_queries, dtype=np.int64)
        internal_nodes = np.flatnonzero(
            (tree.depth > 0) & (tree.depth < tree.max_depth)
        )
        for q in range(cfg.num_queries):
            if internal_nodes.size and rng.random() < cfg.internal_query_fraction:
                query_topic[q] = int(rng.choice(internal_nodes))
            else:
                query_topic[q] = int(tree.leaves[rng.integers(n_leaves)])
        query_texts = [
            self._sample_text(tree, int(t), cfg.query_length, rng, generic_pool, all_topics)
            for t in query_topic
        ]

        edges, weights = self._simulate_clicks(
            tree, query_topic, item_leaf, item_leaf_index, rng
        )
        graph = BipartiteGraph(cfg.num_queries, cfg.num_items, edges, weights)
        return QueryItemDataset(
            name=name,
            graph=graph,
            query_texts=query_texts,
            item_titles=item_titles,
            tree=tree,
            query_topic=query_topic,
            item_leaf=item_leaf,
        )

    # ------------------------------------------------------------------
    def _sample_text(
        self,
        tree: TopicTree,
        topic: int,
        length: int,
        rng: np.random.Generator,
        generic_pool: list[str],
        all_topics: np.ndarray,
    ) -> list[str]:
        """Bag of words mixing topic, ancestor, generic and noise terms."""
        cfg = self.config
        own = tree.vocab[topic]
        ancestor_words = []
        for anc in tree.ancestors(topic):
            if anc != 0:
                ancestor_words.extend(tree.vocab[anc])
        words = []
        for _ in range(length):
            roll = rng.random()
            if generic_pool and roll < cfg.generic_word_fraction:
                words.append(str(rng.choice(generic_pool)))
            elif roll < cfg.generic_word_fraction + cfg.cross_topic_word_fraction:
                foreign = int(rng.choice(all_topics))
                words.append(str(rng.choice(tree.vocab[foreign])))
            elif ancestor_words and roll > 1.0 - 0.2:
                words.append(str(rng.choice(ancestor_words)))
            else:
                words.append(str(rng.choice(own)))
        return words

    def _simulate_clicks(
        self,
        tree: TopicTree,
        query_topic: np.ndarray,
        item_leaf: np.ndarray,
        item_leaf_index: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        cfg = self.config
        n_leaves = tree.n_leaves
        leaf_dist = tree.leaf_distance_matrix()

        edges: list[tuple[int, int]] = []
        weights: list[float] = []
        items_by_leaf = [
            np.flatnonzero(item_leaf_index == leaf_idx) for leaf_idx in range(n_leaves)
        ]
        leaf_pos = {int(l): i for i, l in enumerate(tree.leaves)}
        for q, topic in enumerate(query_topic):
            topic = int(topic)
            # Click propensity over leaves, decaying with distance from
            # the query topic (its own subtree scores distance 0).
            if tree.depth[topic] == tree.max_depth:
                base = leaf_dist[leaf_pos[topic]]
            else:
                base = np.array(
                    [
                        0
                        if tree.ancestor_at_depth(int(l), tree.depth[topic]) == topic
                        else tree.max_depth - tree.depth[
                            tree.lowest_common_ancestor(int(l), topic)
                        ]
                        for l in tree.leaves
                    ]
                )
            probs = cfg.topic_match_decay ** base.astype(float)
            probs /= probs.sum()
            n_clicks = max(1, int(rng.poisson(cfg.clicks_per_query)))
            leaves = rng.choice(n_leaves, size=n_clicks, p=probs)
            for leaf_idx in leaves:
                pool = items_by_leaf[leaf_idx]
                if len(pool) == 0:
                    continue
                item = int(rng.choice(pool))
                edges.append((q, item))
                weights.append(float(1 + rng.geometric(0.5) - 1))
        if not edges:
            edges.append((0, 0))
            weights.append(1.0)
        weights_arr = np.maximum(np.asarray(weights), 1.0)
        return np.asarray(edges, dtype=np.int64), weights_arr
