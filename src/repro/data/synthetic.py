"""The synthetic Taobao-like world (the paper's closed traces, simulated).

The generator owns a ground-truth :class:`~repro.data.topics.TopicTree`.
Items are assigned to leaf topics; users carry affinity distributions
over leaves concentrated around a "home" leaf, with mass decaying in
tree distance — exactly the multi-granular community structure HiGNN is
designed to exploit (a user into "beach dresses" also leans toward the
broader "outdoor" subtree, per the paper's Fig. 1 narrative).

Clicks are sampled from the affinity distribution; purchases convert
clicks through a logistic oracle whose inputs include *parent-level*
affinity and a purchasing-power x price-tier match, so hierarchical
representations genuinely help CVR while flat ones saturate earlier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.schema import EcommerceDataset, InteractionLog, LabeledSamples
from repro.data.topics import TopicTree
from repro.utils.rng import derive_rng, ensure_rng

__all__ = [
    "WorldConfig",
    "GroundTruth",
    "TaobaoGenerator",
    "StreamedWorldConfig",
    "stream_world_to_shards",
]


def _sigmoid(x: np.ndarray | float) -> np.ndarray | float:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


@dataclass
class WorldConfig:
    """Knobs of the synthetic world.

    Defaults produce a laptop-scale analogue of Taobao #1; the cold-start
    dataset (#2) is derived from the same world via ``new_item_fraction``.
    """

    num_users: int = 1200
    num_items: int = 800
    branching: tuple[int, ...] = (4, 3, 3)
    topic_dim: int = 16
    feature_dim: int = 16
    feature_noise: float = 0.6
    interactions_per_user: float = 30.0
    exploration: float = 0.25  # share of clicks on uniformly random topics
    affinity_decay: float = 0.35  # mass multiplier per tree-distance step
    affinity_temperature: float = 1.0
    num_days: int = 8  # 7 train days + 1 test day (paper's split)
    new_item_fraction: float = 0.4  # items treated as "new arrivals"
    new_item_activity: float = 0.25  # interaction share reaching new items
    purchase_bias: float = -8.5
    purchase_leaf_weight: float = 5.0
    purchase_parent_weight: float = 3.5
    purchase_power_weight: float = 1.8
    purchase_new_item_penalty: float = -0.5  # new arrivals convert less
    purchase_noise: float = 0.35

    def __post_init__(self) -> None:
        if self.num_users < 2 or self.num_items < 2:
            raise ValueError("world needs at least 2 users and 2 items")
        if not 0.0 < self.affinity_decay < 1.0:
            raise ValueError("affinity_decay must be in (0, 1)")
        if not 0.0 <= self.new_item_fraction < 1.0:
            raise ValueError("new_item_fraction must be in [0, 1)")
        if self.num_days < 2:
            raise ValueError("need at least one train day and one test day")


@dataclass
class GroundTruth:
    """Oracle state of the world — used for evaluation, never by models.

    Attributes
    ----------
    tree:
        The latent topic hierarchy.
    item_leaf:
        Leaf-topic node id of every item.
    item_leaf_index:
        Same, as an index into ``tree.leaves`` (0-based, dense).
    user_affinity:
        ``(num_users, n_leaves)`` row-stochastic affinity matrix.
    user_home_leaf_index:
        Index (into ``tree.leaves``) of each user's home leaf.
    purchasing_power, price_tier:
        The latent drivers of the purchase oracle.
    """

    tree: TopicTree
    item_leaf: np.ndarray
    item_leaf_index: np.ndarray
    user_affinity: np.ndarray
    user_home_leaf_index: np.ndarray
    purchasing_power: np.ndarray
    price_tier: np.ndarray
    new_items: np.ndarray  # boolean mask of "new arrival" items
    config: WorldConfig

    def item_label_at_depth(self, depth: int) -> np.ndarray:
        """Ground-truth topic node of each item at the given tree depth."""
        return np.array(
            [self.tree.ancestor_at_depth(int(leaf), depth) for leaf in self.item_leaf]
        )

    def click_probability(self, user: int, item: int) -> float:
        """Oracle click propensity in [0, 1] (used by the A/B simulator)."""
        leaf_idx = int(self.item_leaf_index[item])
        affinity = float(self.user_affinity[user, leaf_idx])
        # Scale relative to the user's best leaf so probabilities are
        # meaningful across users with different concentration.
        # The operating point (~0.35 CTR for well-matched slates) mirrors
        # the production CTRs of the paper's Table IV.
        best = float(self.user_affinity[user].max())
        return float(_sigmoid(-3.2 + 2.8 * affinity / max(best, 1e-12)))

    def purchase_probability(self, user: int, item: int) -> float:
        """Oracle conversion propensity given a click (no noise term)."""
        cfg = self.config
        leaf_idx = int(self.item_leaf_index[item])
        leaf_aff = float(self.user_affinity[user, leaf_idx])
        parent_aff = self._parent_affinity(user, item)
        power_match = float(
            self.purchasing_power[user] * self.price_tier[item]
        )
        score = (
            cfg.purchase_bias
            + cfg.purchase_leaf_weight * leaf_aff / max(self.user_affinity[user].max(), 1e-12)
            + cfg.purchase_parent_weight * parent_aff
            + cfg.purchase_power_weight * power_match
        )
        if self.new_items[item]:
            score += cfg.purchase_new_item_penalty
        return float(_sigmoid(score))

    def click_probabilities(self, user: int, items: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`click_probability` over one user's slate.

        Element-for-element identical to the scalar oracle (same IEEE
        double expressions, evaluated per item) — the serving loop draws
        one uniform vector per slate against this.
        """
        items = np.asarray(items, dtype=np.int64)
        affinity = self.user_affinity[user, self.item_leaf_index[items]]
        best = max(float(self.user_affinity[user].max()), 1e-12)
        return _sigmoid(-3.2 + 2.8 * affinity / best)

    def purchase_probabilities(self, user: int, items: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`purchase_probability` over one user's slate."""
        items = np.asarray(items, dtype=np.int64)
        cfg = self.config
        leaf_idx = self.item_leaf_index[items]
        leaf_aff = self.user_affinity[user, leaf_idx]
        # Parent affinity summed once per distinct leaf in the slate,
        # through the same gathered-subset sum as the scalar oracle so
        # the values match bitwise.
        parent_aff = np.empty(len(items), dtype=np.float64)
        for leaf in np.unique(self.item_leaf[items]):
            siblings = self._sibling_leaf_indices(int(leaf))
            parent_aff[self.item_leaf[items] == leaf] = float(
                self.user_affinity[user, siblings].sum()
            )
        power_match = self.purchasing_power[user] * self.price_tier[items]
        score = (
            cfg.purchase_bias
            + cfg.purchase_leaf_weight * leaf_aff / max(float(self.user_affinity[user].max()), 1e-12)
            + cfg.purchase_parent_weight * parent_aff
            + cfg.purchase_power_weight * power_match
        )
        score = np.where(
            self.new_items[items], score + cfg.purchase_new_item_penalty, score
        )
        return _sigmoid(score)

    def _parent_affinity(self, user: int, item: int) -> float:
        """Summed affinity over the item's parent topic subtree."""
        leaf = int(self.item_leaf[item])
        siblings = self._sibling_leaf_indices(leaf)
        return float(self.user_affinity[user, siblings].sum())

    def _sibling_leaf_indices(self, leaf: int) -> np.ndarray:
        """Indices (into ``tree.leaves``) of the leaves sharing ``leaf``'s parent."""
        cache = getattr(self, "_sibling_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_sibling_cache", cache)
        if leaf not in cache:
            tree = self.tree
            parent = int(tree.parent[leaf])
            parent_depth = int(tree.depth[parent])
            cache[leaf] = np.array(
                [
                    i
                    for i, l in enumerate(tree.leaves)
                    if tree.ancestor_at_depth(int(l), parent_depth) == parent
                ]
            )
        return cache[leaf]


class TaobaoGenerator:
    """Generate :class:`EcommerceDataset` objects from one latent world.

    A single generator instance produces both the dense dataset
    (``build_dataset``, Taobao #1 analogue) and the cold-start dataset
    (``build_cold_start_dataset``, Taobao #2 analogue) from the same
    world so results are comparable.
    """

    def __init__(self, config: WorldConfig | None = None, seed: int | np.random.Generator | None = 0):
        self.config = config or WorldConfig()
        self.rng = ensure_rng(seed)
        self.truth = self._build_world()
        self._log = self._simulate_log()

    # ------------------------------------------------------------------
    # World construction
    # ------------------------------------------------------------------
    def _build_world(self) -> GroundTruth:
        cfg = self.config
        rng = derive_rng(self.rng, 1)
        tree = TopicTree.generate(
            branching=cfg.branching, embedding_dim=cfg.topic_dim, rng=rng
        )
        n_leaves = tree.n_leaves

        # Items: leaf assignment is Zipf-tilted so popular topics exist.
        leaf_popularity = 1.0 / (np.arange(n_leaves) + 1.0) ** 0.6
        leaf_popularity /= leaf_popularity.sum()
        item_leaf_index = rng.choice(n_leaves, size=cfg.num_items, p=leaf_popularity)
        item_leaf = tree.leaves[item_leaf_index]

        # Users: home leaf + decaying affinity over tree distance.
        home = rng.choice(n_leaves, size=cfg.num_users, p=leaf_popularity)
        dist = tree.leaf_distance_matrix()  # (n_leaves, n_leaves)
        decay = cfg.affinity_decay ** (dist / cfg.affinity_temperature)
        affinity = decay[home]  # (num_users, n_leaves)
        # Individual taste noise keeps users within a community distinct.
        affinity = affinity * rng.uniform(0.5, 1.5, size=affinity.shape)
        affinity /= affinity.sum(axis=1, keepdims=True)

        purchasing_power = rng.uniform(-1.0, 1.0, size=cfg.num_users)
        price_tier = rng.uniform(-1.0, 1.0, size=cfg.num_items)
        n_new = int(round(cfg.new_item_fraction * cfg.num_items))
        new_items = np.zeros(cfg.num_items, dtype=bool)
        if n_new:
            new_items[rng.choice(cfg.num_items, size=n_new, replace=False)] = True

        return GroundTruth(
            tree=tree,
            item_leaf=item_leaf,
            item_leaf_index=item_leaf_index,
            user_affinity=affinity,
            user_home_leaf_index=home,
            purchasing_power=purchasing_power,
            price_tier=price_tier,
            new_items=new_items,
            config=cfg,
        )

    # ------------------------------------------------------------------
    # Interaction simulation
    # ------------------------------------------------------------------
    def _simulate_log(self) -> InteractionLog:
        cfg = self.config
        truth = self.truth
        rng = derive_rng(self.rng, 2)
        n_leaves = truth.tree.n_leaves

        # Pre-bucket items by leaf, split into established vs new pools.
        items_by_leaf: list[np.ndarray] = []
        new_by_leaf: list[np.ndarray] = []
        for leaf_idx in range(n_leaves):
            members = np.flatnonzero(truth.item_leaf_index == leaf_idx)
            items_by_leaf.append(members[~truth.new_items[members]])
            new_by_leaf.append(members[truth.new_items[members]])
        any_item_by_leaf = [
            np.flatnonzero(truth.item_leaf_index == leaf_idx)
            for leaf_idx in range(n_leaves)
        ]

        users_col: list[int] = []
        items_col: list[int] = []
        days_col: list[int] = []
        clicks_col: list[int] = []
        purchases_col: list[int] = []

        for user in range(cfg.num_users):
            n_inter = max(2, int(rng.poisson(cfg.interactions_per_user)))
            # Exploration: some clicks land on topics the user does not
            # care about (ads, misclicks, browsing) — these are the
            # low-affinity negatives a CVR model must learn to rank down.
            explore = rng.random(n_inter) < cfg.exploration
            leaves = np.where(
                explore,
                rng.integers(0, n_leaves, size=n_inter),
                rng.choice(n_leaves, size=n_inter, p=truth.user_affinity[user]),
            )
            for leaf_idx in leaves:
                day = int(rng.integers(cfg.num_days))
                use_new = rng.random() < cfg.new_item_activity
                pool = new_by_leaf[leaf_idx] if use_new else items_by_leaf[leaf_idx]
                if len(pool) == 0:
                    pool = any_item_by_leaf[leaf_idx]
                if len(pool) == 0:
                    continue
                item = int(rng.choice(pool))
                clicks = 1 + int(rng.geometric(0.6) - 1)
                p_buy = truth.purchase_probability(user, item)
                noisy = _sigmoid(
                    np.log(p_buy / (1 - p_buy + 1e-12) + 1e-12)
                    + rng.normal(scale=cfg.purchase_noise)
                )
                purchased = int(rng.random() < noisy)
                users_col.append(user)
                items_col.append(item)
                days_col.append(day)
                clicks_col.append(clicks)
                purchases_col.append(purchased)

        return InteractionLog(
            users=np.asarray(users_col, dtype=np.int64),
            items=np.asarray(items_col, dtype=np.int64),
            days=np.asarray(days_col, dtype=np.int64),
            clicks=np.asarray(clicks_col, dtype=np.int64),
            purchases=np.asarray(purchases_col, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    # Feature tables
    # ------------------------------------------------------------------
    def _user_profiles(self, rng: np.random.Generator) -> np.ndarray:
        """Observable user features: gender, power, activity, age bucket."""
        cfg = self.config
        gender = rng.integers(0, 2, size=cfg.num_users).astype(float)
        power = self.truth.purchasing_power + rng.normal(
            scale=0.2, size=cfg.num_users
        )
        activity = np.log1p(
            np.bincount(self._log.users, minlength=cfg.num_users).astype(float)
        )
        age = np.eye(4)[rng.integers(0, 4, size=cfg.num_users)]
        return np.column_stack([gender, power, activity, age])

    def _item_stats(self, train_log: InteractionLog, rng: np.random.Generator) -> np.ndarray:
        """Observable item features from the *training* period only."""
        cfg = self.config
        clicks = np.zeros(cfg.num_items)
        purchases = np.zeros(cfg.num_items)
        np.add.at(clicks, train_log.items, train_log.clicks.astype(float))
        np.add.at(purchases, train_log.items, train_log.purchases.astype(float))
        price = self.truth.price_tier + rng.normal(scale=0.1, size=cfg.num_items)
        return np.column_stack(
            [np.log1p(clicks), np.log1p(purchases), price, self.truth.new_items.astype(float)]
        )

    def _graph_features(self, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """Noisy projections of the latent structure — the GNN inputs X_u, X_i."""
        cfg = self.config
        truth = self.truth
        leaf_embeddings = truth.tree.embeddings[truth.tree.leaves]
        projector = rng.normal(
            scale=1.0 / np.sqrt(cfg.topic_dim), size=(cfg.topic_dim, cfg.feature_dim)
        )
        user_latent = truth.user_affinity @ leaf_embeddings  # expected topic position
        item_latent = leaf_embeddings[truth.item_leaf_index]
        user_feats = user_latent @ projector + rng.normal(
            scale=cfg.feature_noise, size=(cfg.num_users, cfg.feature_dim)
        )
        item_feats = item_latent @ projector + rng.normal(
            scale=cfg.feature_noise, size=(cfg.num_items, cfg.feature_dim)
        )
        return user_feats, item_feats

    # ------------------------------------------------------------------
    # Dataset assembly
    # ------------------------------------------------------------------
    @property
    def log(self) -> InteractionLog:
        """The full simulated interaction log (all days)."""
        return self._log

    def build_dataset(self, name: str = "mini-taobao1") -> EcommerceDataset:
        """The dense analogue of Taobao #1: one week train, next day test."""
        cfg = self.config
        rng = derive_rng(self.rng, 3)
        train_days = set(range(cfg.num_days - 1))
        train_log = self._log.filter_days(train_days)
        test_log = self._log.filter_days({cfg.num_days - 1})
        user_feats, item_feats = self._graph_features(rng)
        graph = train_log.to_graph(
            cfg.num_users, cfg.num_items, user_feats, item_feats
        )
        return EcommerceDataset(
            name=name,
            graph=graph,
            train=LabeledSamples.from_log(train_log),
            test=LabeledSamples.from_log(test_log),
            user_profiles=self._user_profiles(rng),
            item_stats=self._item_stats(train_log, rng),
            log=self._log,
            ground_truth=self.truth,
            metadata={"train_days": sorted(train_days), "test_day": cfg.num_days - 1},
        )

    def build_cold_start_dataset(self, name: str = "mini-taobao2") -> EcommerceDataset:
        """The Taobao #2 analogue: new-arrival items only, original imbalance.

        The graph keeps *all* items (so the GNN can propagate through
        established ones, as in production) but train/test samples are
        restricted to interactions with new items, mirroring the paper's
        "click and transaction logs about new arrival products".
        """
        cfg = self.config
        rng = derive_rng(self.rng, 4)
        new_ids = np.flatnonzero(self.truth.new_items)
        train_days = set(range(cfg.num_days - 1))
        train_log_all = self._log.filter_days(train_days)
        train_log = train_log_all.filter_items(new_ids)
        test_log = self._log.filter_days({cfg.num_days - 1}).filter_items(new_ids)
        user_feats, item_feats = self._graph_features(rng)
        graph = train_log_all.to_graph(
            cfg.num_users, cfg.num_items, user_feats, item_feats
        )
        return EcommerceDataset(
            name=name,
            graph=graph,
            train=LabeledSamples.from_log(train_log),
            test=LabeledSamples.from_log(test_log),
            user_profiles=self._user_profiles(rng),
            item_stats=self._item_stats(train_log_all, rng),
            log=self._log,
            ground_truth=self.truth,
            metadata={
                "train_days": sorted(train_days),
                "test_day": cfg.num_days - 1,
                "cold_start": True,
                "new_items": new_ids.tolist(),
            },
        )


# ---------------------------------------------------------------------------
# Streamed million-vertex worlds (written straight to shard files)
# ---------------------------------------------------------------------------
@dataclass
class StreamedWorldConfig:
    """Knobs of the streamed cluster-structured world.

    Unlike :class:`WorldConfig`, nothing here is ever materialised as an
    edge list: users are generated in chunks of ``chunk_users`` and
    written straight into a :class:`~repro.shard.storage.ShardedCSR`
    builder, so peak memory is O(vertices + chunk) however many edges
    the world has.  ``within_cluster`` is the probability a click stays
    inside the user's latent cluster — the community structure HiGNN's
    level-1 K-means recovers, and the reason cluster-aligned shards keep
    most edges local.
    """

    num_users: int = 100_000
    num_items: int = 60_000
    num_clusters: int = 64
    mean_degree: float = 8.0
    within_cluster: float = 0.93
    cluster_skew: float = 0.6  # popularity ~ 1/(rank+1)^skew
    feature_dim: int = 16
    feature_noise: float = 0.25
    chunk_users: int = 8192

    def __post_init__(self) -> None:
        if self.num_users < 1 or self.num_items < 1:
            raise ValueError("world needs at least one user and one item")
        if self.num_clusters < 1:
            raise ValueError("num_clusters must be >= 1")
        if not 0.0 <= self.within_cluster <= 1.0:
            raise ValueError("within_cluster must be in [0, 1]")
        if self.mean_degree <= 0:
            raise ValueError("mean_degree must be positive")
        if self.chunk_users < 1:
            raise ValueError("chunk_users must be >= 1")


def stream_world_to_shards(
    path,
    config: StreamedWorldConfig | None = None,
    num_shards: int = 4,
    seed: int | np.random.Generator | None = 0,
):
    """Generate a cluster-structured world directly into shard files.

    Both vertex sides share one latent cluster space; whole clusters are
    packed per shard (greedy, by combined vertex count), so a fraction
    ``>= within_cluster`` of edges is shard-local by construction —
    the locality a fitted hierarchy's level-1 partition would recover,
    available before any model exists.  Edge weights count repeated
    clicks (duplicates are merged per user, exactly like
    ``BipartiteGraph``).  Returns the owner ``ShardedCSR``.

    Memory stays bounded: per-vertex arrays (clusters, shard map,
    degrees) plus one ``chunk_users`` batch of edges; the builder spills
    the item-side adjacency per shard and sorts one shard at a time.
    """
    from repro.shard.partition import pack_groups
    from repro.shard.storage import ShardedCSRBuilder

    cfg = config or StreamedWorldConfig()
    assign_rng = derive_rng(ensure_rng(seed), 11)
    edge_rng = derive_rng(ensure_rng(seed), 13)
    feat_rng = derive_rng(ensure_rng(seed), 17)

    # Cluster popularity is zipf-tilted so shards face realistic skew.
    ranks = np.arange(cfg.num_clusters, dtype=np.float64)
    popularity = 1.0 / (ranks + 1.0) ** cfg.cluster_skew
    popularity /= popularity.sum()
    user_cluster = assign_rng.choice(cfg.num_clusters, size=cfg.num_users, p=popularity)
    item_cluster = assign_rng.choice(cfg.num_clusters, size=cfg.num_items, p=popularity)

    combined = np.bincount(user_cluster, minlength=cfg.num_clusters) + np.bincount(
        item_cluster, minlength=cfg.num_clusters
    )
    cluster_shard = pack_groups(combined, num_shards)
    user_shard = cluster_shard[user_cluster]
    item_shard = cluster_shard[item_cluster]

    # Items grouped by cluster for O(1) within-cluster draws.
    item_counts = np.bincount(item_cluster, minlength=cfg.num_clusters)
    items_by_cluster = np.argsort(item_cluster, kind="stable")
    item_offsets = np.concatenate(([0], np.cumsum(item_counts)))

    centroids = feat_rng.normal(size=(cfg.num_clusters, cfg.feature_dim))

    with ShardedCSRBuilder(
        path,
        cfg.num_users,
        cfg.num_items,
        num_shards,
        user_shard,
        item_shard,
        user_feature_dim=cfg.feature_dim,
        item_feature_dim=cfg.feature_dim,
        partition="stream-cluster",
    ) as builder:
        for start in range(0, cfg.num_users, cfg.chunk_users):
            stop = min(start + cfg.chunk_users, cfg.num_users)
            count = stop - start
            clicks = np.maximum(edge_rng.poisson(cfg.mean_degree, size=count), 1)
            total = int(clicks.sum())
            rep_cluster = np.repeat(user_cluster[start:stop], clicks)
            stay = edge_rng.random(total) < cfg.within_cluster
            stay &= item_counts[rep_cluster] > 0  # empty clusters explore
            draw = edge_rng.random(total)
            local_pick = (draw * item_counts[rep_cluster]).astype(np.int64)
            within_item = items_by_cluster[
                np.minimum(
                    item_offsets[rep_cluster] + local_pick, cfg.num_items - 1
                )
            ]
            uniform_item = (draw * cfg.num_items).astype(np.int64)
            items = np.where(stay, within_item, uniform_item)

            # Merge repeat clicks per (user, item); weights = click counts.
            rep_user = np.repeat(np.arange(start, stop, dtype=np.int64), clicks)
            keys = rep_user * np.int64(cfg.num_items) + items
            unique_keys, weights = np.unique(keys, return_counts=True)
            edge_users = unique_keys // cfg.num_items
            edge_items = unique_keys % cfg.num_items
            degrees = np.bincount(edge_users - start, minlength=count)
            builder.append_users(
                start, degrees, edge_items, weights.astype(np.float64)
            )
            builder.set_user_features(
                start,
                centroids[user_cluster[start:stop]]
                + cfg.feature_noise * feat_rng.normal(size=(count, cfg.feature_dim)),
            )
        for start in range(0, cfg.num_items, cfg.chunk_users):
            stop = min(start + cfg.chunk_users, cfg.num_items)
            builder.set_item_features(
                start,
                centroids[item_cluster[start:stop]]
                + cfg.feature_noise
                * feat_rng.normal(size=(stop - start, cfg.feature_dim)),
            )
        return builder.finalize()
