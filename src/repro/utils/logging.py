"""Library-wide logging helpers.

The library never configures the root logger; it only attaches a
``NullHandler`` so downstream applications stay in control of log output.
``get_logger`` namespaces everything under ``repro.``.

Applications (e.g. the CLI's ``--log-level`` flag) opt into visible
output with :func:`configure_logging`, which installs exactly one
stream handler on the ``repro`` logger — calling it again only adjusts
the level, so repeated configuration never duplicates lines.
"""

from __future__ import annotations

import logging
import sys
from typing import IO

__all__ = ["get_logger", "configure_logging", "reset_logging"]

_ROOT = logging.getLogger("repro")
_ROOT.addHandler(logging.NullHandler())

_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"
_stream_handler: logging.Handler | None = None


def get_logger(name: str) -> logging.Logger:
    """Return the logger ``repro.<name>`` (or ``repro`` for empty name)."""
    if not name:
        return _ROOT
    if name.startswith("repro.") or name == "repro":
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")


def configure_logging(
    level: int | str = "info", stream: IO[str] | None = None
) -> logging.Handler:
    """Install (or re-level) a stream handler on the ``repro`` logger.

    ``level`` is a logging constant or a case-insensitive name
    (``"debug"``, ``"info"``, ...).  ``stream`` defaults to stderr.
    Returns the handler so callers/tests can detach it.
    """
    global _stream_handler
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    if _stream_handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT))
        _ROOT.addHandler(handler)
        _stream_handler = handler
    elif stream is not None:
        _stream_handler.setStream(stream)
    _stream_handler.setLevel(level)
    _ROOT.setLevel(level)
    return _stream_handler


def reset_logging() -> None:
    """Detach the handler installed by :func:`configure_logging`."""
    global _stream_handler
    if _stream_handler is not None:
        _ROOT.removeHandler(_stream_handler)
        _stream_handler = None
    _ROOT.setLevel(logging.NOTSET)
