"""Library-wide logging helpers.

The library never configures the root logger; it only attaches a
``NullHandler`` so downstream applications stay in control of log output.
``get_logger`` namespaces everything under ``repro.``.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger"]

_ROOT = logging.getLogger("repro")
_ROOT.addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """Return the logger ``repro.<name>`` (or ``repro`` for empty name)."""
    if not name:
        return _ROOT
    if name.startswith("repro.") or name == "repro":
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")
