"""A tiny wall-clock timer used by the benchmark harness."""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example::

        with Timer() as t:
            expensive()
        print(t.elapsed)
    """

    def __init__(self) -> None:
        self.start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self.start is not None:
            self.elapsed = time.perf_counter() - self.start

    def lap(self) -> float:
        """Seconds since ``__enter__`` without stopping the timer."""
        if self.start is None:
            raise RuntimeError("Timer.lap() called outside context")
        return time.perf_counter() - self.start
