"""A tiny wall-clock timer used by the benchmark harness."""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Stopwatch measuring elapsed wall-clock seconds.

    Works as a context manager or via explicit :meth:`start` /
    :meth:`stop`.  Elapsed time *accumulates* across start/stop cycles
    (re-entering resumes rather than silently resetting); use
    :meth:`reset` or :meth:`restart` to zero the clock.

    Example::

        with Timer() as t:
            expensive()
        print(t.elapsed)

        t.start()          # resume: t.elapsed keeps growing
        more_work()
        t.stop()
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._ever_started = False
        self.elapsed: float = 0.0

    @property
    def running(self) -> bool:
        """True between a start and the matching stop."""
        return self._start is not None

    def start(self) -> "Timer":
        """Start (or resume) the clock; no-op if already running."""
        if self._start is None:
            self._start = time.perf_counter()
            self._ever_started = True
        return self

    def stop(self) -> float:
        """Stop the clock, folding the run into ``elapsed``; returns it."""
        if self._start is not None:
            self.elapsed += time.perf_counter() - self._start
            self._start = None
        return self.elapsed

    def reset(self) -> "Timer":
        """Zero the clock and stop it."""
        self._start = None
        self._ever_started = False
        self.elapsed = 0.0
        return self

    def restart(self) -> "Timer":
        """Zero the clock and immediately start it."""
        return self.reset().start()

    def lap(self) -> float:
        """Total elapsed seconds so far, without stopping the timer.

        While running this includes the in-flight interval; after a stop
        it equals ``elapsed``.  Raises if the timer was never started.
        """
        if not self._ever_started:
            raise RuntimeError("Timer.lap() called before the timer ever started")
        if self._start is None:
            return self.elapsed
        return self.elapsed + (time.perf_counter() - self._start)

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
