"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed
or a ``numpy.random.Generator``.  Components never touch the global numpy
RNG, so independent pipeline stages stay reproducible even when they are
re-ordered or run in isolation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "derive_rng", "clone_rng", "RngMixin"]


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    ``None`` yields a freshly seeded generator (non-deterministic); an
    integer seeds a new generator; an existing generator is returned
    unchanged so callers can thread one RNG through a pipeline.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(rng: int | np.random.Generator, *keys: int) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Useful when one seed must fan out into several independent streams
    (e.g. model init vs. negative sampling) without coupling their state.
    ``keys`` disambiguate multiple children derived from the same parent.

    When ``rng`` is a plain integer the child is a pure function of
    ``(rng, *keys)`` and no generator state is consumed — the form the
    parallel execution layer uses to hand each work chunk its own stream
    regardless of how many workers execute the chunks.
    """
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(np.random.SeedSequence([int(rng), *keys]))
    seed_material = list(rng.integers(0, 2**63 - 1, size=2)) + list(keys)
    return np.random.default_rng(np.random.SeedSequence(seed_material))


def clone_rng(rng: np.random.Generator) -> np.random.Generator:
    """An independent generator starting at ``rng``'s current state.

    Draws from the clone reproduce what draws from ``rng`` would have
    produced, without advancing ``rng`` itself — used to keep the first
    k-means restart bit-identical to the single-restart path while the
    remaining restarts run on derived streams.
    """
    clone = np.random.default_rng()
    clone.bit_generator.state = rng.bit_generator.state
    return clone


class RngMixin:
    """Mixin giving a class a lazily created ``self.rng`` attribute."""

    def __init__(self, seed: int | np.random.Generator | None = None) -> None:
        self.rng = ensure_rng(seed)

    def reseed(self, seed: int | np.random.Generator | None) -> None:
        """Replace the internal generator (e.g. between experiment runs)."""
        self.rng = ensure_rng(seed)
