"""Shared utilities: RNG management, configuration, logging, timing."""

from repro.utils.rng import RngMixin, derive_rng, ensure_rng
from repro.utils.config import (
    HiGNNConfig,
    KMeansConfig,
    SageConfig,
    TrainConfig,
)
from repro.utils.logging import get_logger
from repro.utils.timer import Timer
from repro.utils.tables import format_table

__all__ = [
    "RngMixin",
    "derive_rng",
    "ensure_rng",
    "HiGNNConfig",
    "KMeansConfig",
    "SageConfig",
    "TrainConfig",
    "get_logger",
    "Timer",
    "format_table",
]
