"""Shared utilities: RNG management, configuration, logging, timing."""

from repro.utils.rng import RngMixin, derive_rng, ensure_rng
from repro.utils.config import (
    HiGNNConfig,
    KMeansConfig,
    SageConfig,
    TrainConfig,
)
from repro.utils.logging import configure_logging, get_logger, reset_logging
from repro.utils.timer import Timer
from repro.utils.tables import format_table

__all__ = [
    "RngMixin",
    "derive_rng",
    "ensure_rng",
    "HiGNNConfig",
    "KMeansConfig",
    "SageConfig",
    "TrainConfig",
    "get_logger",
    "configure_logging",
    "reset_logging",
    "Timer",
    "format_table",
]
