"""Hot-path micro-benchmark harness (``BENCH_hotpaths.json``).

The paper's complexity analysis (Section III-D) puts the cost of one
HiGNN level in three loops: recursive neighbour embedding, neighbour
sampling, and K-means.  Each of those hot paths now has a
batch-efficient implementation *and* a retained reference
implementation, so this harness can report honest before/after numbers:

* ``embed_all`` — naive recursive inference (``before``) vs the
  dedup-frontier recursion (``recursive_dedup``) vs layer-wise
  full-graph inference (``after``).
* ``train_epoch`` — one training epoch with the naive recursion vs the
  dedup frontier.
* ``weighted_sampling`` — per-row cumulative-weight loop vs the batched
  ``searchsorted`` sampler.
* ``kmeans`` — per-point single-pass / mini-batch loops vs the chunked
  vectorised updates.

All workloads are seeded, so repeated runs time identical work; only
the wall-clock figures vary with the machine.  The JSON report is
written to the repo root (``BENCH_hotpaths.json``) so the perf
trajectory is tracked across PRs — see README.md "Performance".

Schema v2 stamps each report with the git commit it was produced at
(so the BENCH_* trajectory is attributable across PRs) and adds
counter-derived throughput columns — vertices/sec, samples/sec,
edges/sec — measured by re-running each "after" workload once under a
:mod:`repro.obs` session and dividing the observed work counters by the
best wall time.

Schema v3 adds two sections plus a ``cpu_count`` stamp:

* ``parallel`` — the three pool-backed hot paths (layer-wise
  ``embed_all``, k-means restarts, ``cvr_score_table``) timed at
  ``workers=1`` vs ``workers=N``.  Interpret the speedup column against
  ``cpu_count``: on a single-core box process fan-out cannot beat the
  in-process path and the honest number is ≤ 1.
* ``score_topk`` — eager full-table ``argsort`` ranking vs the lazy
  per-user ``argpartition`` top-k of :class:`ScoreTableRecommender`.

Schema v4 adds the ``shard`` section and two honesty columns on the
``parallel`` rows (``workers_effective``, ``degraded``) so a speedup of
≤ 1 on a single-core box is machine-attributable.  The ``shard`` rows
compare dense in-memory layer-wise inference against the out-of-core
sharded path over :class:`~repro.shard.storage.ShardedCSR` blocks: an
in-process smoke world in every mode, plus (``full`` mode only) a
streamed million-vertex world measured in subprocess children so each
side's peak RSS is isolated.

Schema v5 adds a top-level ``telemetry`` stamp (the resource-sampler
interval and where peak-RSS figures come from) and switches the shard
subprocess rows from ``getrusage`` high-water marks to the background
:class:`~repro.obs.monitor.ResourceMonitor` time-series measured inside
each child (``peak_rss_source`` says which).  v5 also introduces the
regression sentinel: :func:`check_report` compares a fresh run against
a recorded baseline row-by-row within a fractional tolerance, skipping
rows the baseline machine cannot reproduce honestly (``degraded``
hosts, mismatched ``workers_effective``), and
:func:`render_check_table` renders the per-row delta table that
``repro bench --check`` prints.

Schema v6 adds the ``serving`` section — the streaming serving stack:

* ``replay`` — a seeded Zipf-ish visitor stream served through
  :class:`~repro.streaming.frontend.ServingFrontend`, uncached
  (``before``) vs with the bounded LRU slate cache (``after``), with
  requests/sec, p50/p99 request latency (from the ``serving.latency_ms``
  histogram) and the cache hit rate.
* ``delta_refresh`` — full streaming re-embed of a mutated graph
  (``before``) vs the delta-aware
  :meth:`~repro.streaming.refresh.StreamingEmbedder.refresh`
  (``after``), with the recomputed-row fraction.
* ``run_day`` — the per-impression serving-day loop (``before``) vs the
  per-slate vectorised :meth:`OnlineEnvironment.run_day` (``after``).

:func:`load_report` still reads v1–v5 files.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.obs.monitor import DEFAULT_INTERVAL_S
from repro.utils.rng import ensure_rng

SCHEMA = "repro/hotpath-bench/v6"
SCHEMA_V1 = "repro/hotpath-bench/v1"
SCHEMA_V2 = "repro/hotpath-bench/v2"
SCHEMA_V3 = "repro/hotpath-bench/v3"
SCHEMA_V4 = "repro/hotpath-bench/v4"
SCHEMA_V5 = "repro/hotpath-bench/v5"
DEFAULT_REPORT = "BENCH_hotpaths.json"

# Fractional slowdown of ``after_s`` tolerated by ``check_report``
# before a row counts as a regression.  Micro-benchmarks on shared CI
# hosts jitter hard, so the default band is deliberately wide — the
# sentinel exists to catch the 2x+ accidents, not 10% noise.
CHECK_TOLERANCE = 0.5
# Absolute slack added on top of the fractional band: rows timed in
# hundreds of microseconds flap on scheduler noise alone, so a delta
# smaller than this many seconds never regresses regardless of ratio.
CHECK_MIN_DELTA_S = 0.005

# (num_users, num_items, num_edges) per benchmarked graph.
GRAPH_SIZES: dict[str, list[tuple[int, int, int]]] = {
    "quick": [(300, 200, 1500), (900, 600, 5400)],
    "full": [(300, 200, 1500), (1500, 1000, 9000), (4000, 2500, 30000)],
}
# (n_points, dim, k) per K-means workload.
KMEANS_SIZES: dict[str, list[tuple[int, int, int]]] = {
    "quick": [(1500, 16, 24)],
    "full": [(1500, 16, 24), (6000, 32, 48)],
}
# (num_users, num_candidates, slate_k, queries) per top-k workload.
SCORE_SIZES: dict[str, list[tuple[int, int, int, int]]] = {
    "quick": [(400, 300, 10, 50)],
    "full": [(2000, 800, 10, 100)],
}
# (num_users, num_candidates, batch_users) for the parallel score-table row.
PARALLEL_SCORE_SIZES: dict[str, tuple[int, int, int]] = {
    "quick": (256, 48, 32),
    "full": (1024, 96, 64),
}
# Streamed-world specs per ``shard`` row; ``subprocess`` rows measure
# peak RSS in isolated children (and are the expensive part of ``full``).
SHARD_SIZES: dict[str, list[dict[str, Any]]] = {
    "quick": [
        {"users": 4000, "items": 2500, "clusters": 24, "shards": 4, "degree": 6.0}
    ],
    "full": [
        {"users": 4000, "items": 2500, "clusters": 24, "shards": 4, "degree": 6.0},
        {
            "users": 600_000,
            "items": 400_000,
            "clusters": 256,
            "shards": 8,
            "degree": 8.0,
            "subprocess": True,
        },
    ],
}
# Streaming serving workloads: graph shape, replayed request count and
# slate size, visitor-day size, and the size of the mutation delta the
# refresh row applies.  ``delta_edges`` is deliberately small — the row
# times the delta path itself, not a degradation to full recompute.
SERVING_SIZES: dict[str, dict[str, Any]] = {
    "quick": {
        "graph": (600, 400, 3600),
        "requests": 400,
        "k": 10,
        "visitors": 150,
        "delta_edges": 2,
        "refresh_batch": 128,
    },
    "full": {
        "graph": (3000, 2000, 18000),
        "requests": 2000,
        "k": 10,
        "visitors": 400,
        "delta_edges": 2,
        "refresh_batch": 256,
    },
}

__all__ = [
    "bench_hotpaths",
    "write_report",
    "load_report",
    "render_report",
    "check_report",
    "render_check_table",
    "git_commit",
    "SCHEMA",
    "SCHEMA_V1",
    "SCHEMA_V2",
    "SCHEMA_V3",
    "SCHEMA_V4",
    "SCHEMA_V5",
    "DEFAULT_REPORT",
    "CHECK_TOLERANCE",
    "CHECK_MIN_DELTA_S",
    "dense_footprint_mb",
]


def _best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Best wall-clock seconds over ``repeats`` calls."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def git_commit() -> str | None:
    """The current commit hash, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else None


def _counter_during(fn: Callable[[], Any], name: str) -> float:
    """Run ``fn`` once under an obs session; return counter ``name``.

    Used to derive throughput honestly: the counted run is separate
    from the timed runs, so instrumentation never perturbs the timings,
    while the work counts themselves are deterministic per workload.
    """
    from repro import obs

    with obs.observe() as session:
        fn()
    return session.counter(name)


def _graph(size: tuple[int, int, int], feature_dim: int, seed: int):
    from repro.graph.generators import random_bipartite

    users, items, edges = size
    return random_bipartite(users, items, edges, feature_dim=feature_dim, rng=seed)


def _graph_meta(size: tuple[int, int, int]) -> dict[str, int]:
    return {"num_users": size[0], "num_items": size[1], "num_edges": size[2]}


def _sage_module(graph, seed: int):
    from repro.core.sage import BipartiteGraphSAGE
    from repro.utils.config import SageConfig

    cfg = SageConfig(embedding_dim=16, neighbor_samples=(10, 5))
    return BipartiteGraphSAGE(
        graph.user_features.shape[1], graph.item_features.shape[1], cfg, rng=seed
    )


def _bench_embed_all(mode: str, seed: int, repeats: int) -> list[dict[str, Any]]:
    rows = []
    for size in GRAPH_SIZES[mode]:
        graph = _graph(size, feature_dim=8, seed=seed)
        module = _sage_module(graph, seed)

        def run(embed_mode: str, dedup: bool):
            module.dedup_frontier = dedup
            try:
                module.embed_all(graph, mode=embed_mode)
            finally:
                module.dedup_frontier = True

        before = _best_of(lambda: run("recursive", False), repeats)
        dedup = _best_of(lambda: run("recursive", True), repeats)
        after = _best_of(lambda: run("layerwise", True), repeats)
        vertices = _counter_during(
            lambda: run("layerwise", True), "sage.vertices_embedded"
        )
        rows.append(
            {
                "graph": _graph_meta(size),
                "before_s": round(before, 6),
                "recursive_dedup_s": round(dedup, 6),
                "after_s": round(after, 6),
                "speedup": round(before / after, 2),
                "vertices_embedded": int(vertices),
                "vertices_per_sec": round(vertices / after, 1),
            }
        )
    return rows


def _bench_train_epoch(mode: str, seed: int, repeats: int) -> list[dict[str, Any]]:
    from repro.core.trainer import SageTrainer
    from repro.utils.config import TrainConfig

    size = GRAPH_SIZES[mode][0]
    graph = _graph(size, feature_dim=8, seed=seed)
    tcfg = TrainConfig(epochs=1, batch_size=512)

    def run(dedup: bool) -> None:
        module = _sage_module(graph, seed)
        module.dedup_frontier = dedup
        SageTrainer(module, graph, tcfg, rng=seed).fit()

    before = _best_of(lambda: run(False), repeats)
    after = _best_of(lambda: run(True), repeats)
    edges = _counter_during(lambda: run(True), "train.edges_seen")
    return [
        {
            "graph": _graph_meta(size),
            "epochs": tcfg.epochs,
            "batch_size": tcfg.batch_size,
            "before_s": round(before, 6),
            "after_s": round(after, 6),
            "speedup": round(before / after, 2),
            "edges_seen": int(edges),
            "edges_per_sec": round(edges / after, 1),
        }
    ]


def _bench_weighted_sampling(mode: str, seed: int, repeats: int) -> list[dict[str, Any]]:
    from repro.graph.sampling import NeighborSampler

    rows = []
    fanout = 10
    for size in GRAPH_SIZES[mode]:
        graph = _graph(size, feature_dim=4, seed=seed)
        vertices = np.arange(graph.num_users)
        sampler = NeighborSampler(graph, rng=seed, weighted=True)
        before = _best_of(
            lambda: sampler._sample_reference(vertices, fanout, "user"), repeats
        )
        after = _best_of(
            lambda: sampler.sample_items_for_users(vertices, fanout), repeats
        )
        samples = _counter_during(
            lambda: sampler.sample_items_for_users(vertices, fanout),
            "sampler.samples_drawn",
        )
        rows.append(
            {
                "graph": _graph_meta(size),
                "batch": int(len(vertices)),
                "fanout": fanout,
                "before_s": round(before, 6),
                "after_s": round(after, 6),
                "speedup": round(before / after, 2),
                "samples_drawn": int(samples),
                "samples_per_sec": round(samples / after, 1),
            }
        )
    return rows


def _bench_kmeans(mode: str, seed: int, repeats: int) -> list[dict[str, Any]]:
    from repro.clustering.kmeans import (
        _minibatch,
        _minibatch_loop,
        _single_pass,
        _single_pass_loop,
    )
    from repro.utils.config import KMeansConfig

    rows = []
    for n, dim, k in KMEANS_SIZES[mode]:
        points = ensure_rng(seed).normal(size=(n, dim))
        single_before = _best_of(
            lambda: _single_pass_loop(points, k, ensure_rng(seed)), repeats
        )
        single_after = _best_of(
            lambda: _single_pass(points, k, ensure_rng(seed)), repeats
        )
        rows.append(
            {
                "variant": "single_pass",
                "n": n,
                "dim": dim,
                "k": k,
                "before_s": round(single_before, 6),
                "after_s": round(single_after, 6),
                "speedup": round(single_before / single_after, 2),
            }
        )
        cfg = KMeansConfig(algorithm="minibatch", max_iter=20, batch_size=256)
        mb_before = _best_of(
            lambda: _minibatch_loop(points, k, cfg, ensure_rng(seed)), repeats
        )
        mb_after = _best_of(
            lambda: _minibatch(points, k, cfg, ensure_rng(seed)), repeats
        )
        rows.append(
            {
                "variant": "minibatch",
                "n": n,
                "dim": dim,
                "k": k,
                "before_s": round(mb_before, 6),
                "after_s": round(mb_after, 6),
                "speedup": round(mb_before / mb_after, 2),
            }
        )
    return rows


def _bench_score_topk(mode: str, seed: int, repeats: int) -> list[dict[str, Any]]:
    """Eager full-table ranking vs the lazy per-user top-k recommender."""
    from repro.serving.recommend import ScoreTableRecommender

    rows = []
    for num_users, n_cand, k, n_queries in SCORE_SIZES[mode]:
        rng = ensure_rng(seed)
        scores = rng.random((num_users, n_cand))
        candidates = np.arange(n_cand, dtype=np.int64)
        query_users = rng.integers(0, num_users, size=n_queries)

        def run_eager() -> None:
            ranked = np.argsort(-scores, axis=1, kind="mergesort")
            for user in query_users:
                candidates[ranked[user, :k]]

        def run_lazy() -> None:
            recommender = ScoreTableRecommender(scores, candidates)
            for user in query_users:
                recommender.recommend(int(user), k)

        before = _best_of(run_eager, repeats)
        after = _best_of(run_lazy, repeats)
        rows.append(
            {
                "variant": "score_topk",
                "n": num_users,
                "candidates": n_cand,
                "k": k,
                "queries": int(n_queries),
                "before_s": round(before, 6),
                "after_s": round(after, 6),
                "speedup": round(before / after, 2),
            }
        )
    return rows


def _bench_parallel(
    mode: str, seed: int, repeats: int, workers: int
) -> list[dict[str, Any]]:
    """The pool-backed hot paths at ``workers=1`` vs ``workers=N``.

    Same seeded workload both times — the outputs are bitwise equal by
    design, so the rows compare cost only.  On machines where
    ``os.cpu_count()`` is 1 the parallel row is expected to be *slower*
    (IPC with no extra cores); the report records it honestly.
    """
    from repro.clustering.kmeans import kmeans
    from repro.prediction.cvr_model import CVRModel
    from repro.prediction.features import FeatureAssembler
    from repro.serving.pipeline import cvr_score_table
    from repro.utils.config import KMeansConfig

    cpu_count = os.cpu_count() or 1
    workers_effective = min(workers, cpu_count)
    degraded = cpu_count == 1
    rows = []

    size = GRAPH_SIZES[mode][-1]
    graph = _graph(size, feature_dim=8, seed=seed)
    module = _sage_module(graph, seed)
    serial = _best_of(
        lambda: module.embed_all(graph, batch_size=256, workers=1), repeats
    )
    parallel = _best_of(
        lambda: module.embed_all(graph, batch_size=256, workers=workers), repeats
    )
    rows.append(
        {
            "variant": "embed_all_layerwise",
            "graph": _graph_meta(size),
            "workers": workers,
            "workers_effective": workers_effective,
            "degraded": degraded,
            "before_s": round(serial, 6),
            "after_s": round(parallel, 6),
            "speedup": round(serial / parallel, 2),
        }
    )

    n, dim, k = KMEANS_SIZES[mode][-1]
    points = ensure_rng(seed).normal(size=(n, dim))
    cfg = KMeansConfig(algorithm="lloyd", n_init=4, max_iter=15)
    serial = _best_of(
        lambda: kmeans(points, k, cfg, rng=ensure_rng(seed), workers=1),
        repeats,
    )
    parallel = _best_of(
        lambda: kmeans(points, k, cfg, rng=ensure_rng(seed), workers=workers),
        repeats,
    )
    rows.append(
        {
            "variant": "kmeans_restarts",
            "n": n,
            "dim": dim,
            "k": k,
            "n_init": cfg.n_init,
            "workers": workers,
            "workers_effective": workers_effective,
            "degraded": degraded,
            "before_s": round(serial, 6),
            "after_s": round(parallel, 6),
            "speedup": round(serial / parallel, 2),
        }
    )

    num_users, n_cand, batch_users = PARALLEL_SCORE_SIZES[mode]
    rng = ensure_rng(seed)
    assembler = FeatureAssembler(
        rng.normal(size=(num_users, 8)), rng.normal(size=(n_cand, 8))
    )
    model = CVRModel(assembler.feature_dim, hidden=(32, 16), rng=seed)
    candidates = np.arange(n_cand, dtype=np.int64)
    serial = _best_of(
        lambda: cvr_score_table(
            model, assembler, num_users, candidates, batch_users, workers=1
        ),
        repeats,
    )
    parallel = _best_of(
        lambda: cvr_score_table(
            model, assembler, num_users, candidates, batch_users, workers=workers
        ),
        repeats,
    )
    rows.append(
        {
            "variant": "cvr_score_table",
            "n": num_users,
            "candidates": n_cand,
            "k": n_cand,
            "workers": workers,
            "workers_effective": workers_effective,
            "degraded": degraded,
            "before_s": round(serial, 6),
            "after_s": round(parallel, 6),
            "speedup": round(serial / parallel, 2),
        }
    )
    return rows


def dense_footprint_mb(
    num_users: int, num_items: int, num_edges: int, dim: int
) -> float:
    """Analytic MB an in-memory ``BipartiteGraph`` of this shape holds.

    Edge list (E x 2 int64) + both CSR directions (indices + weights
    per edge, indptr per vertex) + float64 features on both sides —
    the baseline the sharded store's peak RSS is judged against.
    """
    edge_list = num_edges * 2 * 8
    csr = 2 * num_edges * (8 + 8) + (num_users + num_items + 2) * 8
    features = (num_users + num_items) * dim * 8
    return (edge_list + csr + features) / 2**20


def _shard_model(dim: int, seed: int):
    from repro.core.sage import BipartiteGraphSAGE
    from repro.utils.config import SageConfig

    cfg = SageConfig(embedding_dim=dim, neighbor_samples=(5, 3))
    return BipartiteGraphSAGE(dim, dim, cfg, rng=seed)


def _run_shard_child(run_mode: str, spec: dict[str, Any], seed: int, workers: int):
    """One ``repro shard --json`` subprocess; returns its parsed report.

    Children exist so each side's ``ru_maxrss`` is clean: the dense
    child materialises the full graph, the sharded child only ever maps
    shard blocks, and neither inherits the other's peak.
    """
    import sys

    import repro

    cmd = [
        sys.executable,
        "-m",
        "repro.cli",
        "shard",
        "--json",
        "--mode",
        run_mode,
        "--users",
        str(spec["users"]),
        "--items",
        str(spec["items"]),
        "--clusters",
        str(spec["clusters"]),
        "--shards",
        str(spec["shards"]),
        "--mean-degree",
        str(spec["degree"]),
        "--seed",
        str(seed),
        "--workers",
        str(workers),
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1]) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    out = subprocess.run(
        cmd, capture_output=True, text=True, env=env, timeout=3600
    )
    if out.returncode != 0:
        raise RuntimeError(f"shard child ({run_mode}) failed:\n{out.stderr}")
    return json.loads(out.stdout)


def _bench_shard(
    mode: str, seed: int, repeats: int, workers: int
) -> list[dict[str, Any]]:
    """Dense in-memory inference vs the out-of-core sharded path.

    The smoke row runs in-process (same world via ``to_graph``, bitwise
    compared).  ``subprocess`` rows stream a million-vertex world and
    measure each side's peak RSS in an isolated child; equality there is
    checked through embedding checksums.
    """
    import shutil
    import tempfile

    from repro.data.synthetic import StreamedWorldConfig, stream_world_to_shards

    dim = 16
    rows = []
    for spec in SHARD_SIZES[mode]:
        if spec.get("subprocess"):
            sharded = _run_shard_child("sharded", spec, seed, workers)
            dense = _run_shard_child("dense", spec, seed, workers)
            rows.append(
                {
                    "variant": "streamed_world_out_of_core",
                    "graph": {
                        "num_users": spec["users"],
                        "num_items": spec["items"],
                        "num_edges": sharded["num_edges"],
                    },
                    "num_shards": spec["shards"],
                    "workers": workers,
                    "build_s": sharded["build_s"],
                    "edges_shard_local": sharded["edges_shard_local"],
                    "before_s": dense["embed_s"],
                    "after_s": sharded["embed_s"],
                    "speedup": round(dense["embed_s"] / sharded["embed_s"], 2),
                    "bitwise_equal": sharded["checksum"] == dense["checksum"],
                    "peak_rss_mb": sharded["peak_rss_mb"],
                    "peak_rss_source": sharded.get("peak_rss_source", "rusage"),
                    "dense_peak_rss_mb": dense["peak_rss_mb"],
                    "dense_edge_list_mb": round(
                        dense_footprint_mb(
                            spec["users"], spec["items"], sharded["num_edges"], dim
                        ),
                        1,
                    ),
                }
            )
            continue

        cfg = StreamedWorldConfig(
            num_users=spec["users"],
            num_items=spec["items"],
            num_clusters=spec["clusters"],
            mean_degree=spec["degree"],
            feature_dim=dim,
        )
        work = Path(tempfile.mkdtemp(prefix="repro-bench-shard-"))
        try:
            t0 = time.perf_counter()
            store = stream_world_to_shards(
                work / "world", cfg, num_shards=spec["shards"], seed=seed
            )
            build = time.perf_counter() - t0
            with store:
                graph = store.to_graph()
                before = _best_of(
                    lambda: _shard_model(dim, seed).embed_all(
                        graph, batch_size=1024, mode="layerwise"
                    ),
                    repeats,
                )
                after = _best_of(
                    lambda: _shard_model(dim, seed).embed_all(
                        store, batch_size=1024, workers=workers
                    ),
                    repeats,
                )
                zu_d, zi_d = _shard_model(dim, seed).embed_all(
                    graph, batch_size=1024, mode="layerwise"
                )
                zu_s, zi_s = _shard_model(dim, seed).embed_all(
                    store, batch_size=1024, workers=workers
                )
                bitwise = np.array_equal(
                    np.asarray(zu_d), np.asarray(zu_s)
                ) and np.array_equal(np.asarray(zi_d), np.asarray(zi_s))
                del zu_s, zi_s
                vertices = _counter_during(
                    lambda: _shard_model(dim, seed).embed_all(
                        store, batch_size=1024, workers=workers
                    ),
                    "sage.vertices_embedded",
                )
                rows.append(
                    {
                        "variant": "embed_sharded_smoke",
                        "graph": {
                            "num_users": store.num_users,
                            "num_items": store.num_items,
                            "num_edges": store.num_edges,
                        },
                        "num_shards": store.num_shards,
                        "workers": workers,
                        "build_s": round(build, 6),
                        "edges_shard_local": round(store.edges_shard_local, 4),
                        "before_s": round(before, 6),
                        "after_s": round(after, 6),
                        "speedup": round(before / after, 2),
                        "bitwise_equal": bool(bitwise),
                        "vertices_embedded": int(vertices),
                        "vertices_per_sec": round(vertices / after, 1),
                    }
                )
        finally:
            shutil.rmtree(work, ignore_errors=True)
            from repro.shard.storage import forget_shard_dir

            forget_shard_dir(work / "world")
    return rows


def _bench_serving(mode: str, seed: int, repeats: int) -> list[dict[str, Any]]:
    """The streaming serving stack: replay, delta refresh, serving day."""
    from repro import obs
    from repro.data.synthetic import TaobaoGenerator, WorldConfig
    from repro.serving.environment import OnlineEnvironment
    from repro.serving.recommend import PopularityRecommender
    from repro.streaming import (
        IncrementalBipartiteGraph,
        ServingFrontend,
        StreamingEmbedder,
    )

    spec = SERVING_SIZES[mode]
    size = spec["graph"]
    requests, k = int(spec["requests"]), int(spec["k"])
    graph = _graph(size, feature_dim=8, seed=seed)
    module = _sage_module(graph, seed)
    meta = _graph_meta(size)
    rows: list[dict[str, Any]] = []

    # --- replay: uncached vs LRU-cached request loop -------------------
    # Zipf-tilted visitor stream so repeat visitors exist (that is what
    # a slate cache exists for); seeded, so both arms serve the same
    # requests in the same order.
    stream_rng = ensure_rng(seed)
    users = (stream_rng.zipf(1.5, size=requests) - 1) % size[0]

    def frontend(cache_size: int):
        fe = ServingFrontend(
            graph,
            StreamingEmbedder(module, sample_seed=seed),
            cache_size=cache_size,
            microbatch=64,
        )
        fe.warm()
        return fe

    uncached = frontend(0)
    cached = frontend(4096)
    before = _best_of(lambda: uncached.serve(users, k), repeats)
    after = _best_of(lambda: cached.serve(users, k), repeats)
    with obs.observe() as session:
        cached.serve(users, k)
    hist = session.registry.snapshot()["histograms"]["serving.latency_ms"]
    rows.append(
        {
            "graph": meta,
            "variant": "replay",
            "requests": requests,
            "k": k,
            "before_s": round(before, 6),
            "after_s": round(after, 6),
            "speedup": round(before / after, 2),
            "req_per_sec": round(requests / after, 1),
            "p50_ms": round(hist["p50"], 4),
            "p99_ms": round(hist["p99"], 4),
            "hit_rate": round(cached.hit_rate, 3),
        }
    )

    # --- delta refresh vs full re-embed of the mutated graph ----------
    refresh_bs = int(spec["refresh_batch"])
    embedder = StreamingEmbedder(
        module, sample_seed=seed, batch_size=refresh_bs, degrade_threshold=1.0
    )
    inc = IncrementalBipartiteGraph(graph, compact_threshold=None)
    embedder.full_embed(inc.graph)
    delta = int(spec["delta_edges"])
    delta_rng = ensure_rng(seed + 1)
    inc.add_edges(
        np.column_stack(
            [
                delta_rng.integers(0, size[0], delta),
                delta_rng.integers(0, size[1], delta),
            ]
        )
    )
    mutated = inc.graph
    dirty_u, dirty_i = inc.dirty_users, inc.dirty_items
    # refresh() replaces (never mutates) the cached per-step matrices,
    # so resetting the two references replays the same delta each run.
    base_h, base_shape = embedder._h, embedder._shape

    def run_refresh() -> None:
        embedder._h, embedder._shape = base_h, base_shape
        embedder.refresh(mutated, dirty_u, dirty_i)

    before = _best_of(
        lambda: StreamingEmbedder(
            module, sample_seed=seed, batch_size=refresh_bs
        ).full_embed(mutated),
        repeats,
    )
    after = _best_of(run_refresh, repeats)
    stats = embedder.last_stats
    rows.append(
        {
            "graph": meta,
            "variant": "delta_refresh",
            "delta_edges": delta,
            "batch": refresh_bs,
            "before_s": round(before, 6),
            "after_s": round(after, 6),
            "speedup": round(before / after, 2),
            "refresh_mode": stats.mode,
            "rows_recomputed": int(stats.rows_recomputed),
            "recompute_fraction": round(stats.recompute_fraction, 3),
        }
    )

    # --- serving day: per-impression loop vs per-slate vectorised -----
    truth = TaobaoGenerator(
        WorldConfig(num_users=size[0], num_items=size[1]), seed=seed
    ).truth
    visitors = ensure_rng(seed + 2).integers(0, size[0], int(spec["visitors"]))
    recommender = PopularityRecommender(
        ensure_rng(seed + 3).random(size[1]), np.arange(size[1])
    )

    def day(vectorised: bool) -> None:
        env = OnlineEnvironment(truth, rng=seed)
        if vectorised:
            env.run_day(recommender, visitors, slate_size=k)
        else:
            env._run_day_loop(recommender, visitors, slate_size=k)

    before = _best_of(lambda: day(False), repeats)
    after = _best_of(lambda: day(True), repeats)
    rows.append(
        {
            "variant": "run_day",
            "n": int(spec["visitors"]),
            "k": k,
            "before_s": round(before, 6),
            "after_s": round(after, 6),
            "speedup": round(before / after, 2),
        }
    )
    return rows


def bench_hotpaths(
    mode: str = "quick", seed: int = 0, repeats: int = 3, workers: int = 4
) -> dict[str, Any]:
    """Time every hot path and return the report dict.

    ``mode`` selects the workload grid (``quick`` for CI smoke, ``full``
    for the tracked record); ``seed`` fixes every workload so runs are
    comparable; ``repeats`` takes the best of N timings; ``workers`` is
    the pool size the ``parallel`` section compares against serial.
    """
    if mode not in GRAPH_SIZES:
        raise ValueError(f"unknown bench mode {mode!r} (use 'quick' or 'full')")
    return {
        "schema": SCHEMA,
        "git_commit": git_commit(),
        "mode": mode,
        "seed": seed,
        "repeats": repeats,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "telemetry": {
            "sampler_interval_s": DEFAULT_INTERVAL_S,
            "peak_rss_source": "monitor",
        },
        "benchmarks": {
            "embed_all": _bench_embed_all(mode, seed, repeats),
            "train_epoch": _bench_train_epoch(mode, seed, repeats),
            "weighted_sampling": _bench_weighted_sampling(mode, seed, repeats),
            "kmeans": _bench_kmeans(mode, seed, repeats),
            "parallel": _bench_parallel(mode, seed, repeats, workers),
            "score_topk": _bench_score_topk(mode, seed, repeats),
            "shard": _bench_shard(mode, seed, repeats, workers),
            "serving": _bench_serving(mode, seed, repeats),
        },
    }


def write_report(report: dict[str, Any], path: str | Path = DEFAULT_REPORT) -> Path:
    """Write ``report`` as stable, human-diffable JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def load_report(path: str | Path = DEFAULT_REPORT) -> dict[str, Any]:
    """Read a report, upgrading v1–v5 files to the v6 shape in memory.

    v1 reports predate the commit stamp and throughput columns; v2
    reports predate the ``parallel``/``score_topk`` sections and the
    ``cpu_count``/``workers`` stamps; v3 reports predate the ``shard``
    section and the per-row ``workers_effective``/``degraded`` honesty
    columns; v4 reports predate the ``telemetry`` stamp and the
    monitor-measured ``peak_rss_source`` column; v5 reports predate the
    ``serving`` section.  The loader fills the missing top-level fields
    with None and leaves rows as-is (newer columns and sections are
    optional), so consumers only handle one shape.
    """
    report = json.loads(Path(path).read_text())
    schema = report.get("schema")
    if schema in (SCHEMA_V1, SCHEMA_V2, SCHEMA_V3, SCHEMA_V4, SCHEMA_V5):
        report["schema"] = SCHEMA
        report.setdefault("git_commit", None)
        report.setdefault("cpu_count", None)
        report.setdefault("workers", None)
        report.setdefault("telemetry", None)
    elif schema != SCHEMA:
        raise ValueError(f"unknown bench report schema {schema!r} in {path}")
    return report


def render_report(report: dict[str, Any]) -> str:
    """Plain-text table of every benchmark row (before/after/speedup)."""
    commit = report.get("git_commit")
    cpus = report.get("cpu_count")
    lines = [
        f"hot-path benchmark — mode={report['mode']} seed={report['seed']} "
        f"repeats={report['repeats']} (numpy {report['numpy']}, "
        f"commit {commit[:12] if commit else 'unknown'}"
        + (f", cpus={cpus}" if cpus else "")
        + ")",
        f"{'benchmark':<20} {'workload':<28} {'before':>10} {'after':>10} "
        f"{'speedup':>8} {'throughput':>16}",
    ]
    for name, rows in report["benchmarks"].items():
        for row in rows:
            if "graph" in row:
                g = row["graph"]
                workload = f"{g['num_users']}x{g['num_items']} e={g['num_edges']}"
            else:
                workload = f"{row['variant']} n={row['n']} k={row['k']}"
            throughput = ""
            for key, unit in (
                ("vertices_per_sec", "vert/s"),
                ("samples_per_sec", "smp/s"),
                ("edges_per_sec", "edge/s"),
            ):
                if key in row:
                    throughput = f"{row[key]:,.0f} {unit}"
                    break
            lines.append(
                f"{name:<20} {workload:<28} {row['before_s']:>9.4f}s "
                f"{row['after_s']:>9.4f}s {row['speedup']:>7.2f}x {throughput:>16}"
            )
    return "\n".join(lines)


# Row fields that identify *what* was benchmarked (as opposed to the
# measurements).  Together with the section name and graph shape they
# form the key ``check_report`` matches rows on.
_IDENTITY_FIELDS = (
    "variant",
    "n",
    "dim",
    "k",
    "candidates",
    "queries",
    "batch",
    "fanout",
    "epochs",
    "batch_size",
    "n_init",
    "num_shards",
    "workers",
    "requests",
    "delta_edges",
)


def _row_key(section: str, row: dict[str, Any]) -> str:
    """Stable identity of one benchmark row across runs."""
    parts = [section]
    graph = row.get("graph")
    if graph is not None:
        parts.append(
            f"g={graph['num_users']}x{graph['num_items']}e{graph['num_edges']}"
        )
    for field in _IDENTITY_FIELDS:
        if field in row:
            parts.append(f"{field}={row[field]}")
    return " ".join(parts)


def _row_skip_reason(
    current: dict[str, Any], baseline: dict[str, Any]
) -> str | None:
    """Why this row pair cannot be compared honestly, or None."""
    if current.get("degraded") or baseline.get("degraded"):
        return "degraded host"
    cur_eff = current.get("workers_effective")
    base_eff = baseline.get("workers_effective")
    if cur_eff != base_eff:
        return f"workers_effective {base_eff} -> {cur_eff}"
    return None


def check_report(
    current: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = CHECK_TOLERANCE,
    min_delta_s: float = CHECK_MIN_DELTA_S,
) -> dict[str, Any]:
    """Compare a fresh run against a recorded baseline, row by row.

    Rows are matched by section plus identity fields (graph shape,
    variant, n/k/workers, ...), so quick-vs-full grid differences simply
    leave rows unmatched (``new``/``missing`` status) rather than
    failing.  A matched row regresses when its ``after_s`` exceeds the
    baseline by more than ``tolerance`` (fractional) *and* by more than
    ``min_delta_s`` absolute — the floor keeps sub-millisecond rows from
    flapping on scheduler noise.  Rows whose machines cannot be compared
    honestly are skipped, never failed: a ``degraded`` flag on either
    side (single-core host) or a ``workers_effective`` mismatch means
    the baseline's parallel timings are not reproducible here.

    Returns a dict with per-row status entries (``rows``), the keys that
    regressed (``regressions``), and checked/skipped/unmatched tallies.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    base_rows = {
        _row_key(section, row): row
        for section, rows in baseline.get("benchmarks", {}).items()
        for row in rows
    }
    entries: list[dict[str, Any]] = []
    regressions: list[str] = []
    checked = skipped = unmatched = 0
    for section, rows in current.get("benchmarks", {}).items():
        for row in rows:
            key = _row_key(section, row)
            base = base_rows.pop(key, None)
            entry: dict[str, Any] = {
                "key": key,
                "current_s": row.get("after_s"),
                "baseline_s": base.get("after_s") if base else None,
            }
            if base is None:
                entry["status"] = "new"
                unmatched += 1
            else:
                reason = _row_skip_reason(row, base)
                cur_s, base_s = row["after_s"], base["after_s"]
                if base_s:
                    entry["delta_pct"] = round(100.0 * (cur_s / base_s - 1), 1)
                if reason is not None:
                    entry["status"] = "skipped"
                    entry["reason"] = reason
                    skipped += 1
                elif (
                    cur_s > base_s * (1.0 + tolerance)
                    and cur_s - base_s > min_delta_s
                ):
                    entry["status"] = "regression"
                    regressions.append(key)
                    checked += 1
                else:
                    entry["status"] = "ok"
                    checked += 1
            entries.append(entry)
    for key, base in base_rows.items():
        entries.append(
            {
                "key": key,
                "current_s": None,
                "baseline_s": base.get("after_s"),
                "status": "missing",
            }
        )
        unmatched += 1
    return {
        "tolerance": tolerance,
        "min_delta_s": min_delta_s,
        "baseline_commit": baseline.get("git_commit"),
        "rows": entries,
        "regressions": regressions,
        "checked": checked,
        "skipped": skipped,
        "unmatched": unmatched,
    }


def render_check_table(result: dict[str, Any]) -> str:
    """Plain-text delta table for one :func:`check_report` result."""
    commit = result.get("baseline_commit")
    lines = [
        f"bench --check — tolerance +{result['tolerance'] * 100:.0f}% "
        f"(abs floor {result['min_delta_s'] * 1000:.1f} ms, baseline commit "
        f"{commit[:12] if commit else 'unknown'})",
        f"{'status':<12} {'workload':<52} {'baseline':>10} {'current':>10} "
        f"{'delta':>8}",
    ]
    for entry in sorted(
        result["rows"], key=lambda e: (e["status"] != "regression", e["key"])
    ):
        base_s = entry.get("baseline_s")
        cur_s = entry.get("current_s")
        delta = entry.get("delta_pct")
        status = entry["status"].upper() if entry["status"] == "regression" else entry["status"]
        if entry.get("reason"):
            status = f"{status} ({entry['reason']})"
        lines.append(
            f"{status:<12} {entry['key']:<52} "
            f"{f'{base_s:.4f}s' if base_s is not None else '-':>10} "
            f"{f'{cur_s:.4f}s' if cur_s is not None else '-':>10} "
            f"{f'{delta:+.1f}%' if delta is not None else '':>8}"
        )
    lines.append(
        f"{result['checked']} checked, {result['skipped']} skipped, "
        f"{result['unmatched']} unmatched, "
        f"{len(result['regressions'])} regression(s)"
    )
    return "\n".join(lines)
