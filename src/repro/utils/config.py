"""Configuration dataclasses shared across the library.

These mirror the hyper-parameters reported in the paper (Section IV-B-2):
embedding dimension 32, hierarchy depth L=3 (L=4 for taxonomy), K-means
decay alpha=5, fully connected sizes 256/128/64, learning rate 1e-3,
batch size 1024, Leaky ReLU activations, L2 regularisation.
The defaults here are the paper's values scaled where noted for
laptop-sized graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Any

__all__ = ["SageConfig", "KMeansConfig", "HiGNNConfig", "TrainConfig"]


@dataclass
class SageConfig:
    """Hyper-parameters of one bipartite GraphSAGE module (Section III-B)."""

    embedding_dim: int = 32
    num_steps: int = 2  # P, aggregation depth
    neighbor_samples: tuple[int, ...] = (10, 5)  # K1, K2 fan-outs
    aggregator: str = "mean"  # mean | sum | max | weighted_mean
    activation: str = "leaky_relu"
    negative_samples_user: int = 5  # Q_u in Eq. 5
    negative_samples_item: int = 5  # Q_i in Eq. 5
    # gamma in Eq. 5 — the edge-weight feature fed to f for negative
    # pairs.  Default 1.0 (= a single click) so the weight channel alone
    # cannot separate positives from negatives; a smaller gamma lets the
    # similarity head cheat and starves the embeddings of gradient.
    negative_weight: float = 1.0
    negative_distribution: str = "degree"  # degree (deg^0.75) | uniform
    similarity_head: str = "hybrid"  # mlp (paper-literal) | dot | hybrid
    shared_space: bool = False  # query-item variant (Section V-B)
    l2: float = 1e-5

    def __post_init__(self) -> None:
        if self.embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        if self.num_steps < 1:
            raise ValueError("num_steps (P) must be >= 1")
        if len(self.neighbor_samples) < self.num_steps:
            raise ValueError(
                "neighbor_samples must provide a fan-out for each of the "
                f"{self.num_steps} aggregation steps"
            )
        if self.aggregator not in {"mean", "sum", "max", "weighted_mean"}:
            raise ValueError(f"unknown aggregator {self.aggregator!r}")
        if self.negative_distribution not in {"degree", "uniform"}:
            raise ValueError(
                f"unknown negative_distribution {self.negative_distribution!r}"
            )
        if self.similarity_head not in {"mlp", "dot", "hybrid"}:
            raise ValueError(f"unknown similarity_head {self.similarity_head!r}")


@dataclass
class KMeansConfig:
    """Hyper-parameters of the deterministic clustering stage."""

    algorithm: str = "lloyd"  # lloyd | minibatch | single_pass
    max_iter: int = 50
    tol: float = 1e-4
    batch_size: int = 1024  # minibatch variant only
    chunk_size: int = 256  # single_pass variant: points assigned per chunk
    n_init: int = 1
    auto_k: bool = False  # pick k via Calinski-Harabasz (Eq. 13)
    auto_k_candidates: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.algorithm not in {"lloyd", "minibatch", "single_pass"}:
            raise ValueError(f"unknown kmeans algorithm {self.algorithm!r}")
        if self.max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")


@dataclass
class TrainConfig:
    """Optimisation settings for the unsupervised GraphSAGE stage."""

    epochs: int = 5
    batch_size: int = 1024
    learning_rate: float = 1e-3
    optimizer: str = "adam"
    gradient_clip: float | None = 5.0
    log_every: int = 0  # 0 disables progress logging

    def __post_init__(self) -> None:
        if self.epochs < 0:
            raise ValueError("epochs must be >= 0")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")


@dataclass
class HiGNNConfig:
    """Full HiGNN stack configuration (Algorithm 1).

    ``levels`` is L; ``cluster_decay`` is alpha with K_l = K_{l-1} / alpha
    (Section IV-B-4); ``initial_clusters`` gives K_1 per side as a fraction
    of the vertex count when expressed in (0, 1), or an absolute count when
    >= 1.
    """

    levels: int = 3
    cluster_decay: float = 5.0
    initial_user_clusters: float = 0.25
    initial_item_clusters: float = 0.25
    min_clusters: int = 2
    sage: SageConfig = field(default_factory=SageConfig)
    kmeans: KMeansConfig = field(default_factory=KMeansConfig)
    train: TrainConfig = field(default_factory=TrainConfig)

    def __post_init__(self) -> None:
        if self.levels < 1:
            raise ValueError("levels (L) must be >= 1")
        if self.cluster_decay < 1.0:
            raise ValueError("cluster_decay (alpha) must be >= 1")
        if self.min_clusters < 1:
            raise ValueError("min_clusters must be >= 1")

    def clusters_at(self, level: int, n_vertices: int, side: str) -> int:
        """Resolve the K-means cluster count for ``level`` (1-based).

        Implements the paper's geometric decay K_l = K_{l-1} / alpha
        (Section IV-B-4).  At level 1, a fractional ``initial_*_clusters``
        means "this fraction of the level-0 vertex count"; at deeper
        levels the *current* graph already has ~K_{l-1} vertices, so the
        rule reduces to ``n_vertices / alpha``.  The result is clamped to
        ``[min_clusters, n_vertices]``.
        """
        if side not in {"user", "item"}:
            raise ValueError(f"side must be 'user' or 'item', got {side!r}")
        initial = (
            self.initial_user_clusters
            if side == "user"
            else self.initial_item_clusters
        )
        if level == 1:
            k = initial * n_vertices if initial < 1.0 else initial
        elif initial < 1.0:
            k = n_vertices / self.cluster_decay
        else:
            k = initial / (self.cluster_decay ** (level - 1))
        k_int = int(round(k))
        return max(self.min_clusters, min(n_vertices, max(1, k_int)))

    def to_dict(self) -> dict[str, Any]:
        """Flatten to a plain dict (for experiment manifests)."""
        return asdict(self)
