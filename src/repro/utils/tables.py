"""Plain-text table formatting for experiment reports."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a padded ``header | header`` table with a separator rule.

    >>> print(format_table(["a", "b"], [[1, 22]]))
    a | b
    --+---
    1 | 22
    """
    if not headers:
        raise ValueError("headers must be non-empty")
    str_rows = [[str(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("every row must match the header width")
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in str_rows)) if str_rows else len(headers[c])
        for c in range(len(headers))
    ]

    def fmt(row: Sequence[str]) -> str:
        return " | ".join(str(v).ljust(w) for v, w in zip(row, widths)).rstrip()

    rule = "-+-".join("-" * w for w in widths)
    return "\n".join([fmt(headers), rule] + [fmt(r) for r in str_rows])
