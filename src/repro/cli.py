"""Command-line experiment runner.

Usage::

    python -m repro.cli stats   [--size small] [--seed 0]
    python -m repro.cli table3  [--size small] [--seed 0] [--methods ge,hignn,din]
    python -m repro.cli taxonomy [--size small] [--levels 3] [--seed 0]
    python -m repro.cli ab      [--size tiny]  [--days 2] [--seed 0]
    python -m repro.cli bench   [--mode quick] [--out BENCH_hotpaths.json]
    python -m repro.cli shard   [--users N] [--mode sharded|dense] [--json]
    python -m repro.cli serve   [--rounds 4] [--requests 400] [--json]
    python -m repro.cli lint    [PATHS ...] [--format json] [--write-baseline]

Each subcommand regenerates one of the paper's experiments at the
chosen scale and prints the result table.  For the full reproducible
record, run the benchmark suite instead (``pytest benchmarks/
--benchmark-only``).

Observability flags (see README "Observability"):

* ``--trace PATH`` runs the command under a :mod:`repro.obs` session,
  writes a Chrome trace-event JSON to PATH (open in Perfetto or
  ``chrome://tracing``) plus a flat dump next to it, and prints
  span/metrics summary tables.
* ``--metrics PATH`` dumps the final metrics snapshot (counters, gauges,
  percentile histograms) as JSON; composes with ``--trace``.
* ``--progress`` runs a :class:`repro.obs.ResourceMonitor` with a
  throttled single-line status renderer fed by library heartbeats —
  long ``shard``/training runs report vertices done, rate and ETA
  instead of staying silent.  With ``--trace``, the monitor's resource
  time-series lands in the Chrome trace as counter tracks.
* ``--log-level LEVEL`` / ``-v`` installs a stream handler on the
  ``repro`` logger so library progress logging (e.g.
  ``TrainConfig.log_every``) reaches the terminal.
* ``--workers N`` (every subcommand) sets the process-global worker
  count for the parallel hot paths (see README "Parallelism"); results
  are bitwise identical for any N given the same seed.

``repro bench --check`` re-runs the hot-path bench and compares it
against a recorded baseline (``BENCH_hotpaths.json``) instead of
overwriting it — non-zero exit plus a per-row delta table on
regression.  See README "Performance".
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="HiGNN reproduction experiment runner"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="Table I/II dataset statistics")
    _common(stats)

    table3 = sub.add_parser("table3", help="Table III CVR AUC comparison")
    _common(table3)
    table3.add_argument(
        "--methods",
        default="din,ge,hignn",
        help="comma-separated subset of: cgnn,din,ge,hup,hia,hignn",
    )
    table3.add_argument("--levels", type=int, default=3)
    table3.add_argument("--epochs", type=int, default=4)

    taxonomy = sub.add_parser("taxonomy", help="Table VII + Fig. 5 taxonomy build")
    _common(taxonomy)
    taxonomy.add_argument("--levels", type=int, default=3)

    ab = sub.add_parser("ab", help="Table IV simulated online A/B test")
    _common(ab)
    ab.add_argument("--days", type=int, default=2)
    ab.add_argument("--visitors", type=int, default=2000)

    bench = sub.add_parser(
        "bench", help="hot-path perf benchmark (writes BENCH_hotpaths.json)"
    )
    bench.add_argument("--mode", default="quick", choices=("quick", "full"))
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument("--out", default="BENCH_hotpaths.json")
    bench.add_argument(
        "--check",
        action="store_true",
        help="regression sentinel: compare against the baseline report "
        "instead of overwriting it; exit 1 on regression",
    )
    bench.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline report for --check (default: the --out path)",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="FRAC",
        help="fractional slowdown tolerated by --check before a row "
        "counts as a regression (default 0.5 = 50%%)",
    )
    _obs_flags(bench)
    _workers_flag(bench)
    _logging_flags(bench)

    shard = sub.add_parser(
        "shard",
        help="stream a sharded world, embed it out-of-core, report cost",
    )
    shard.add_argument("--users", type=int, default=100_000)
    shard.add_argument("--items", type=int, default=60_000)
    shard.add_argument("--clusters", type=int, default=64)
    shard.add_argument("--shards", type=int, default=8)
    shard.add_argument("--mean-degree", type=float, default=8.0)
    shard.add_argument("--dim", type=int, default=16)
    shard.add_argument("--batch-size", type=int, default=8192)
    shard.add_argument("--seed", type=int, default=0)
    shard.add_argument(
        "--path",
        default=None,
        help="shard directory (default: a temp dir, removed afterwards)",
    )
    shard.add_argument(
        "--mode",
        default="sharded",
        choices=("sharded", "dense"),
        help="embed over shard blocks, or materialise and run dense",
    )
    shard.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print a machine-readable report (used by `repro bench`)",
    )
    shard.add_argument(
        "--keep", action="store_true", help="leave the shard directory on disk"
    )
    _obs_flags(shard)
    _workers_flag(shard)
    _logging_flags(shard)

    serve = sub.add_parser(
        "serve",
        help="streaming serving demo: ingest edges, delta-refresh, serve slates",
    )
    serve.add_argument("--users", type=int, default=600)
    serve.add_argument("--items", type=int, default=400)
    serve.add_argument("--edges", type=int, default=3600)
    serve.add_argument("--rounds", type=int, default=4)
    serve.add_argument(
        "--requests", type=int, default=400, help="requests served per round"
    )
    serve.add_argument("--k", type=int, default=10)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--cache-size", type=int, default=4096)
    serve.add_argument("--microbatch", type=int, default=64)
    serve.add_argument(
        "--batch-size", type=int, default=256, help="embedding chunk size"
    )
    serve.add_argument(
        "--degrade-threshold",
        type=float,
        default=0.25,
        metavar="FRAC",
        help="recompute fraction above which a delta refresh degrades to "
        "a full pass (1.0 = never degrade)",
    )
    serve.add_argument(
        "--delta-edges",
        type=int,
        default=2,
        help="random interaction edges ingested per round",
    )
    serve.add_argument(
        "--new-users",
        type=int,
        default=1,
        help="cold-start users added per round (served via fallback)",
    )
    serve.add_argument(
        "--refresh-every",
        type=int,
        default=1,
        metavar="N",
        help="delta-refresh embeddings at the end of every N-th round "
        "(0 = never; rely on --refresh-threshold)",
    )
    serve.add_argument(
        "--refresh-threshold",
        type=float,
        default=None,
        metavar="FRAC",
        help="dirty fraction above which serve() auto-refreshes before "
        "answering (default: off)",
    )
    serve.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print a machine-readable report",
    )
    _obs_flags(serve)
    _workers_flag(serve)
    _logging_flags(serve)

    lint = sub.add_parser(
        "lint", help="static analysis: determinism / fork-safety / obs hygiene"
    )
    from repro.lint.cli import configure_parser as _configure_lint

    _configure_lint(lint)

    return parser


def _common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--size", default="small", choices=("tiny", "small", "default"))
    parser.add_argument("--seed", type=int, default=0)
    _obs_flags(parser)
    _workers_flag(parser)
    _logging_flags(parser)


def _obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record a trace: Chrome trace-event JSON to PATH + summary tables",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="dump the final metrics snapshot (counters/gauges/percentile "
        "histograms) as JSON to PATH",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="sample resources in the background and render a throttled "
        "single-line progress status from library heartbeats",
    )


def _workers_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for parallel hot paths (1 = in-process)",
    )


def _logging_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--log-level",
        default=None,
        choices=("debug", "info", "warning", "error"),
        help="install a stream handler on the 'repro' logger at this level",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="shorthand: -v = info, -vv = debug",
    )


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.data import dataset_statistics, load_dataset, load_query_dataset

    print(f"{'dataset':<16} {'users':>8} {'items':>8} {'clicks':>10} {'density':>10}")
    for name in ("mini-taobao1", "mini-taobao2"):
        ds = load_dataset(name, size=args.size, seed=args.seed)
        s = dataset_statistics(ds)
        print(
            f"{name:<16} {int(s['users']):>8,} {int(s['items']):>8,} "
            f"{int(s['clicks']):>10,} {s['density']:>10.2e}"
        )
    q = load_query_dataset(size=args.size, seed=args.seed)
    clicks = float(q.graph.edge_weights.sum())
    print(
        f"{'mini-taobao3':<16} {q.num_queries:>8,} {q.num_items:>8,} "
        f"{int(clicks):>10,} {clicks / (q.num_queries * q.num_items):>10.2e}"
    )
    return 0


def cmd_table3(args: argparse.Namespace) -> int:
    from repro.data import load_dataset
    from repro.prediction import ALL_METHODS, run_table3
    from repro.utils.config import HiGNNConfig, TrainConfig

    methods = tuple(m.strip() for m in args.methods.split(",") if m.strip())
    unknown = set(methods) - set(ALL_METHODS)
    if unknown:
        print(f"unknown methods: {sorted(unknown)}", file=sys.stderr)
        return 2
    config = HiGNNConfig(
        levels=args.levels,
        train=TrainConfig(epochs=args.epochs, batch_size=512, learning_rate=3e-3),
    )
    for name in ("mini-taobao1", "mini-taobao2"):
        dataset = load_dataset(name, size=args.size, seed=args.seed)
        results = run_table3(dataset, config, methods=methods, seed=args.seed)
        row = "  ".join(f"{m}={results[m].auc:.4f}" for m in methods)
        print(f"{name}: {row}")
    return 0


def cmd_taxonomy(args: argparse.Namespace) -> int:
    from repro.data import load_query_dataset
    from repro.taxonomy import (
        TaxonomyPipelineConfig,
        build_shoal_taxonomy,
        build_taxonomy,
        describe_taxonomy,
        evaluate_taxonomy,
        fit_query_item_hignn,
    )

    dataset = load_query_dataset(size=args.size, seed=args.seed)
    config = TaxonomyPipelineConfig(levels=args.levels, embedding_dim=16)
    hierarchy, _ = fit_query_item_hignn(dataset, config, rng=args.seed)
    taxonomy = build_taxonomy(hierarchy, dataset)
    describe_taxonomy(taxonomy, dataset)
    print(taxonomy.render(max_children=4, max_depth=3))
    counts = [len(taxonomy.at_level(l)) for l in range(1, taxonomy.num_levels + 1)]
    shoal = build_shoal_taxonomy(dataset, counts, rng=args.seed)
    for label, tax in (("HiGNN", taxonomy), ("SHOAL", shoal)):
        scores = evaluate_taxonomy(tax, dataset)
        print(
            f"{label}: levels={int(scores['levels'])} "
            f"accuracy={scores['accuracy']:.3f} diversity={scores['diversity']:.3f}"
        )
    return 0


def cmd_ab(args: argparse.Namespace) -> int:
    from repro.core.hignn import HiGNN
    from repro.data import load_dataset
    from repro.prediction import CVRTrainConfig, FeatureAssembler, train_cvr_model
    from repro.prediction.experiment import _prepare_train_samples, method_representations
    from repro.serving import (
        PopularityRecommender,
        ScoreTableRecommender,
        cvr_score_table,
        run_ab_test,
    )
    from repro.utils.config import HiGNNConfig, TrainConfig
    from repro.utils.rng import ensure_rng

    dataset = load_dataset("mini-taobao1", size=args.size, seed=args.seed)
    truth = dataset.ground_truth
    candidates = np.flatnonzero(truth.new_items)
    hierarchy = HiGNN(
        HiGNNConfig(levels=2, train=TrainConfig(epochs=5, batch_size=256)),
        seed=args.seed,
    ).fit(dataset.graph)
    user_repr, item_repr, inter = method_representations(hierarchy, "hignn")
    assembler = FeatureAssembler.for_dataset(
        dataset, user_repr, item_repr, interactions=inter
    )
    train = _prepare_train_samples(dataset, ensure_rng(args.seed))
    x, y = assembler.assemble_samples(train)
    model, _ = train_cvr_model(x, y, CVRTrainConfig(epochs=12), rng=args.seed)
    table = cvr_score_table(model, assembler, dataset.num_users, candidates)
    treatment = ScoreTableRecommender(table, candidates)
    clicks = np.zeros(dataset.num_items)
    np.add.at(clicks, dataset.log.items, dataset.log.clicks.astype(float))
    control = PopularityRecommender(clicks, candidates)
    report = run_ab_test(
        truth,
        control,
        treatment,
        num_days=args.days,
        visitors_per_day=args.visitors,
        slate_size=10,
        candidate_items=candidates,
        rng=args.seed,
    )
    print(report.render())
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.utils.bench import (
        bench_hotpaths,
        check_report,
        load_report,
        render_check_table,
        render_report,
        write_report,
    )

    # The parallel section compares serial vs N workers; default the
    # comparison to 4 when the global --workers was left at 1.
    workers = args.workers if args.workers and args.workers > 1 else 4
    if getattr(args, "check", False):
        baseline_path = args.baseline or args.out
        try:
            baseline = load_report(baseline_path)
        except (OSError, ValueError) as exc:
            print(f"cannot load baseline {baseline_path}: {exc}", file=sys.stderr)
            return 2
    report = bench_hotpaths(
        args.mode, seed=args.seed, repeats=args.repeats, workers=workers
    )
    if getattr(args, "check", False):
        tolerance = args.tolerance
        result = (
            check_report(report, baseline)
            if tolerance is None
            else check_report(report, baseline, tolerance=tolerance)
        )
        print(render_check_table(result))
        if result["regressions"]:
            print(
                f"\nREGRESSION: {len(result['regressions'])} row(s) slower "
                f"than baseline {baseline_path} beyond tolerance",
                file=sys.stderr,
            )
            return 1
        print(f"\nok: no regressions vs {baseline_path}")
        return 0
    print(render_report(report))
    path = write_report(report, args.out)
    print(f"wrote {path}")
    return 0


def cmd_shard(args: argparse.Namespace) -> int:
    """Stream a cluster-structured world to shards and embed it.

    ``--mode sharded`` keeps the graph on disk end to end (the
    out-of-core path); ``--mode dense`` materialises it in memory and
    runs the dense layer-wise path on identical content.  Both print
    wall times, this process's *measured* peak RSS (sampled by a
    :class:`repro.obs.ResourceMonitor` over build + embed), and a
    checksum of the embeddings — equal checksums across modes certify
    the bitwise guarantee at scales where comparing arrays in one
    process would defeat the RSS measurement.
    """
    import shutil
    import tempfile
    from pathlib import Path

    from repro import obs

    if args.path is not None:
        root, path = None, Path(args.path)
    else:
        root = Path(tempfile.mkdtemp(prefix="repro-shard-"))
        path = root / "world"
    try:
        monitor = obs.current_monitor()
        if monitor is not None:  # --progress (or a caller) already owns one
            return _shard_run(args, path, monitor)
        with obs.ResourceMonitor(tag="shard") as monitor:
            return _shard_run(args, path, monitor)
    finally:
        if root is not None and not args.keep:
            shutil.rmtree(root, ignore_errors=True)


def _shard_run(args: argparse.Namespace, path, monitor) -> int:
    """Body of :func:`cmd_shard` under an owned resource monitor."""
    import hashlib
    import json
    import time

    from repro.core.sage import BipartiteGraphSAGE
    from repro.data.synthetic import StreamedWorldConfig, stream_world_to_shards
    from repro.utils.config import SageConfig

    cfg = StreamedWorldConfig(
        num_users=args.users,
        num_items=args.items,
        num_clusters=args.clusters,
        mean_degree=args.mean_degree,
        feature_dim=args.dim,
    )
    t0 = time.perf_counter()
    store = stream_world_to_shards(path, cfg, num_shards=args.shards, seed=args.seed)
    build_s = time.perf_counter() - t0
    report = {
        "mode": args.mode,
        "num_users": store.num_users,
        "num_items": store.num_items,
        "num_edges": store.num_edges,
        "num_shards": store.num_shards,
        "workers": args.workers,
        "build_s": round(build_s, 3),
        "edges_shard_local": round(store.edges_shard_local, 4),
    }
    model = BipartiteGraphSAGE(
        args.dim,
        args.dim,
        SageConfig(embedding_dim=args.dim, neighbor_samples=(5, 3)),
        rng=args.seed,
    )
    if args.mode == "dense":
        graph = store.to_graph()
        store.close()
        t0 = time.perf_counter()
        z_u, z_i = model.embed_all(graph, batch_size=args.batch_size, mode="layerwise")
    else:
        t0 = time.perf_counter()
        z_u, z_i = model.embed_all(
            store, batch_size=args.batch_size, workers=args.workers
        )
    report["embed_s"] = round(time.perf_counter() - t0, 3)
    # Peak over build + embed only, measured by the background sampler
    # (with the process ru_maxrss high-water folded in): the checksum
    # below pages every output row back in, charging the cross-mode
    # verification convenience (not the out-of-core path) to this
    # process.
    monitor.sample_now()
    report["peak_rss_mb"] = round(monitor.peak_rss_mb, 1)
    report["peak_rss_source"] = "monitor"
    report["monitor_interval_s"] = monitor.interval_s
    report["monitor_samples"] = len(monitor.samples)
    digest = hashlib.sha256()
    for matrix in (z_u, z_i):
        for start in range(0, len(matrix), 65536):
            digest.update(
                np.ascontiguousarray(matrix[start : start + 65536]).tobytes()
            )
    report["checksum"] = digest.hexdigest()
    if args.keep:
        store.close()
        report["path"] = str(path)
    else:
        store.destroy()
    if args.as_json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for key, value in report.items():
            print(f"{key:<18} {value}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run a simulated streaming serving session.

    Each round ingests a few interaction edges and cold-start users,
    serves a zipf-tilted request stream through the micro-batched
    :class:`~repro.streaming.ServingFrontend` (cold users fall back to a
    popularity recommender), then delta-refreshes the embeddings so the
    next round serves them warm.  Prints one row per round plus a
    summary; ``--metrics`` additionally captures the serving latency
    histogram and cache counters.
    """
    import json
    import time

    from repro.core.sage import BipartiteGraphSAGE
    from repro.graph.generators import random_bipartite
    from repro.serving.recommend import PopularityRecommender
    from repro.streaming import ServingFrontend, StreamingEmbedder
    from repro.utils.config import SageConfig
    from repro.utils.rng import ensure_rng

    feature_dim = 8
    graph = random_bipartite(
        args.users, args.items, args.edges, feature_dim=feature_dim, rng=args.seed
    )
    model = BipartiteGraphSAGE(
        feature_dim,
        feature_dim,
        SageConfig(embedding_dim=16, neighbor_samples=(10, 5)),
        rng=args.seed,
    )
    embedder = StreamingEmbedder(
        model,
        sample_seed=args.seed,
        batch_size=args.batch_size,
        degrade_threshold=args.degrade_threshold,
    )
    degrees = np.zeros(args.items)
    np.add.at(degrees, graph.edges[:, 1], 1.0)
    fallback = PopularityRecommender(degrees, np.arange(args.items))
    frontend = ServingFrontend(
        graph,
        embedder,
        fallback=fallback,
        cache_size=args.cache_size,
        microbatch=args.microbatch,
        refresh_dirty_threshold=args.refresh_threshold,
    )
    t0 = time.perf_counter()
    frontend.warm(workers=args.workers)
    warm_s = time.perf_counter() - t0

    rng = ensure_rng(args.seed + 1)
    rounds: list[dict] = []
    total_requests = 0
    total_serve_s = 0.0
    for rnd in range(1, args.rounds + 1):
        if args.delta_edges:
            edges = np.stack(
                [
                    rng.integers(0, frontend.graph.num_users, args.delta_edges),
                    rng.integers(0, frontend.graph.num_items, args.delta_edges),
                ],
                axis=1,
            )
            frontend.ingest(edges)
        new_ids: list[int] = []
        if args.new_users:
            new_ids = frontend.graph.add_users(
                args.new_users,
                features=rng.normal(size=(args.new_users, feature_dim)),
            )
        users = (rng.zipf(1.5, size=args.requests) - 1) % args.users
        if new_ids:
            # Route the fresh users' first requests into this round so
            # the cold-start fallback path is actually exercised.
            users[: len(new_ids)] = new_ids
        warm_count = len(frontend.embedder.embeddings[0])
        cold_requests = int((users >= warm_count).sum())
        t0 = time.perf_counter()
        frontend.serve(users, args.k)
        serve_s = time.perf_counter() - t0
        total_requests += len(users)
        total_serve_s += serve_s
        row = {
            "round": rnd,
            "ingested_edges": int(args.delta_edges),
            "new_users": len(new_ids),
            "cold_requests": cold_requests,
            "requests": len(users),
            "serve_s": round(serve_s, 4),
            "req_per_sec": round(len(users) / serve_s, 1) if serve_s else None,
            "hit_rate": round(frontend.hit_rate, 3),
        }
        if args.refresh_every and rnd % args.refresh_every == 0:
            stats = frontend.refresh(workers=args.workers)
            row["refresh_mode"] = stats.mode
            row["recompute_fraction"] = round(stats.recompute_fraction, 3)
        rounds.append(row)

    report = {
        "graph": {
            "num_users": args.users,
            "num_items": args.items,
            "num_edges": args.edges,
        },
        "warm_s": round(warm_s, 4),
        "rounds": rounds,
        "total_requests": total_requests,
        "req_per_sec": (
            round(total_requests / total_serve_s, 1) if total_serve_s else None
        ),
        "hit_rate": round(frontend.hit_rate, 3),
        "cache_evictions": frontend.cache.evictions,
        "compactions": frontend.graph.compactions,
    }
    if args.as_json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(
        f"warmed {args.users}x{args.items} graph ({args.edges} edges) "
        f"in {report['warm_s']}s"
    )
    header = (
        f"{'round':>5} {'edges':>6} {'new':>4} {'cold':>5} {'reqs':>6} "
        f"{'req/s':>10} {'hit':>6} {'refresh':>8} {'frac':>6}"
    )
    print(header)
    for row in rounds:
        print(
            f"{row['round']:>5} {row['ingested_edges']:>6} {row['new_users']:>4} "
            f"{row['cold_requests']:>5} {row['requests']:>6} "
            f"{row['req_per_sec']:>10,.0f} {row['hit_rate']:>6.3f} "
            f"{row.get('refresh_mode', '-'):>8} "
            f"{row.get('recompute_fraction', float('nan')):>6.3f}"
        )
    print(
        f"total: {total_requests} requests, {report['req_per_sec']:,.0f} req/s, "
        f"hit rate {report['hit_rate']:.3f}, "
        f"{report['cache_evictions']} evictions, "
        f"{report['compactions']} compactions"
    )
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import cmd_lint as run

    return run(args)


_COMMANDS = {
    "stats": cmd_stats,
    "table3": cmd_table3,
    "taxonomy": cmd_taxonomy,
    "ab": cmd_ab,
    "bench": cmd_bench,
    "shard": cmd_shard,
    "serve": cmd_serve,
    "lint": cmd_lint,
}


def _setup_logging(args: argparse.Namespace) -> None:
    level = getattr(args, "log_level", None)
    if level is None and getattr(args, "verbose", 0):
        level = "debug" if args.verbose > 1 else "info"
    if level is not None:
        from repro.utils.logging import configure_logging

        configure_logging(level)


def _run_instrumented(args: argparse.Namespace) -> int:
    """Run the command under the requested obs plumbing.

    ``--trace``/``--metrics`` install a full obs session (tracer +
    registry) and export afterwards; ``--progress`` additionally runs an
    owned :class:`~repro.obs.ResourceMonitor` whose heartbeat renderer
    draws the status line and whose resource series rides into the
    Chrome trace as counter tracks.
    """
    import contextlib
    from pathlib import Path

    from repro import obs

    trace_path = Path(args.trace) if getattr(args, "trace", None) else None
    metrics_path = Path(args.metrics) if getattr(args, "metrics", None) else None
    with contextlib.ExitStack() as stack:
        session = None
        if trace_path is not None or metrics_path is not None:
            session = stack.enter_context(obs.observe())
        monitor = None
        if getattr(args, "progress", False):
            monitor = stack.enter_context(obs.ResourceMonitor(progress=True))
        if session is None:
            return _COMMANDS[args.command](args)
        with obs.span(
            f"cli.{args.command}",
            size=getattr(args, "size", None),
            seed=getattr(args, "seed", None),
        ):
            code = _COMMANDS[args.command](args)
        if monitor is not None:
            # Seal the series (and the peak-RSS gauge) before export.
            monitor.stop()
            session.monitor = monitor
        if trace_path is not None:
            session.write_chrome_trace(trace_path)
            flat_path = trace_path.with_name(trace_path.stem + ".flat.json")
            session.write_flat_trace(flat_path)
            print(f"\nwrote trace {trace_path} (flat dump: {flat_path})")
        if metrics_path is not None:
            obs.write_metrics_json(session.registry, metrics_path)
            print(f"\nwrote metrics {metrics_path}")
        if trace_path is not None:
            print("\n== span summary ==")
            print(session.span_summary())
            print("\n== metrics ==")
            print(session.metrics_summary())
    return code


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    _setup_logging(args)
    workers = getattr(args, "workers", 1)
    if workers is not None and workers > 1:
        from repro.parallel import configure

        configure(workers=workers)
    if (
        getattr(args, "trace", None)
        or getattr(args, "metrics", None)
        or getattr(args, "progress", False)
    ):
        return _run_instrumented(args)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
