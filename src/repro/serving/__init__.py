"""Simulated online serving and A/B testing (Sections IV-C and V-D-4)."""

from repro.serving.environment import OnlineEnvironment, Recommender, ServingMetrics
from repro.serving.recommend import (
    PopularityRecommender,
    ScoreTableRecommender,
    TaxonomyRecommender,
)
from repro.serving.abtest import ABDayResult, ABTestReport, run_ab_test
from repro.serving.pipeline import (
    build_taxonomy_ab_world,
    cvr_score_table,
    sample_user_histories,
    user_topics_from_history,
)

__all__ = [
    "OnlineEnvironment",
    "Recommender",
    "ServingMetrics",
    "PopularityRecommender",
    "ScoreTableRecommender",
    "TaxonomyRecommender",
    "ABDayResult",
    "ABTestReport",
    "run_ab_test",
    "build_taxonomy_ab_world",
    "cvr_score_table",
    "sample_user_histories",
    "user_topics_from_history",
]
