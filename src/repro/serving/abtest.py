"""A/B testing harness over the simulated serving environment.

``run_ab_test`` splits a visitor population, serves control and
treatment arms against the same ground truth, and reports the paper's
Table IV rows: control -> treatment with percentage lift for UV, CNT,
CTR and CVR, over any number of test days.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.synthetic import GroundTruth
from repro.obs import span
from repro.serving.environment import OnlineEnvironment, Recommender, ServingMetrics
from repro.utils.rng import derive_rng, ensure_rng

__all__ = ["ABDayResult", "ABTestReport", "run_ab_test"]


@dataclass(frozen=True)
class ABDayResult:
    """One day's control and treatment metrics."""

    day: int
    control: ServingMetrics
    treatment: ServingMetrics

    def lift(self, metric: str) -> float:
        """Relative lift treatment vs control for UV/CNT/CTR/CVR."""
        c = self.control.as_dict()[metric]
        t = self.treatment.as_dict()[metric]
        if c == 0:
            return float("inf") if t > 0 else 0.0
        return (t - c) / c

    def row(self, metric: str) -> str:
        """Formatted 'control -> treatment (+x.xx%)' cell as in Table IV."""
        c = self.control.as_dict()[metric]
        t = self.treatment.as_dict()[metric]
        lift = self.lift(metric) * 100.0
        if metric in ("UV", "CNT"):
            return f"{int(c):,} -> {int(t):,} ({lift:+.2f}%)"
        return f"{c:.4f} -> {t:.4f} ({lift:+.2f}%)"


@dataclass
class ABTestReport:
    """All days of one A/B experiment."""

    days: list[ABDayResult] = field(default_factory=list)

    def mean_lift(self, metric: str) -> float:
        return float(np.mean([d.lift(metric) for d in self.days]))

    def render(self) -> str:
        """ASCII table mirroring the paper's Table IV layout."""
        header = "Metric | " + " | ".join(f"Day {d.day + 1}" for d in self.days)
        lines = [header, "-" * len(header)]
        for metric in ("UV", "CNT", "CTR", "CVR"):
            cells = " | ".join(d.row(metric) for d in self.days)
            lines.append(f"{metric:<6} | {cells}")
        return "\n".join(lines)


def run_ab_test(
    truth: GroundTruth,
    control: Recommender,
    treatment: Recommender,
    num_days: int = 2,
    visitors_per_day: int = 2000,
    slate_size: int = 10,
    candidate_items: np.ndarray | None = None,
    rng: int | np.random.Generator | None = 0,
) -> ABTestReport:
    """Run a standard A/B configuration.

    Each day draws a fresh visitor sample (with replacement — the same
    member can visit on both days) and splits it 50/50; both arms face
    statistically identical populations and the identical behaviour
    oracle, so metric deltas measure recommender quality alone.
    """
    if num_days < 1:
        raise ValueError("num_days must be >= 1")
    rng = ensure_rng(rng)
    num_users = len(truth.user_affinity)
    report = ABTestReport()
    for day in range(num_days):
        with span("serving.ab_day", day=day, visitors=visitors_per_day):
            day_rng = derive_rng(rng, day)
            visitors = day_rng.integers(0, num_users, size=visitors_per_day)
            half = visitors_per_day // 2
            env_control = OnlineEnvironment(
                truth, candidate_items, rng=derive_rng(day_rng, 1)
            )
            env_treatment = OnlineEnvironment(
                truth, candidate_items, rng=derive_rng(day_rng, 2)
            )
            metrics_control = env_control.run_day(control, visitors[:half], slate_size)
            metrics_treatment = env_treatment.run_day(
                treatment, visitors[half:], slate_size
            )
        report.days.append(
            ABDayResult(day=day, control=metrics_control, treatment=metrics_treatment)
        )
    return report
