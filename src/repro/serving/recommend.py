"""Recommenders used in the simulated A/B tests.

``ModelRecommender`` ranks a candidate pool by a trained CVR model's
scores (the Table IV treatment/control arms).  ``TaxonomyRecommender``
serves items from the taxonomy topic matching the user's interests (the
Section V-D-4 taxonomy A/B).  ``PopularityRecommender`` is a sanity
floor.
"""

from __future__ import annotations

import numpy as np

from repro.obs.metrics import counter_add
from repro.serving.environment import Recommender
from repro.taxonomy.builder import Taxonomy
from repro.utils.rng import ensure_rng

__all__ = ["ScoreTableRecommender", "PopularityRecommender", "TaxonomyRecommender"]


class ScoreTableRecommender(Recommender):
    """Top-K over a precomputed (num_users, num_candidates) score table.

    Scoring every (user, candidate) pair up front keeps the serving loop
    fast and makes the recommender deterministic.
    """

    def __init__(self, scores: np.ndarray, candidate_items: np.ndarray) -> None:
        scores = np.asarray(scores, dtype=np.float64)
        candidate_items = np.asarray(candidate_items, dtype=np.int64)
        if scores.ndim != 2 or scores.shape[1] != len(candidate_items):
            raise ValueError("scores must be (num_users, num_candidates)")
        self._ranked = np.argsort(-scores, axis=1, kind="mergesort")
        self._candidates = candidate_items

    def recommend(self, user: int, k: int) -> np.ndarray:
        counter_add("serving.recommendations", 1)
        return self._candidates[self._ranked[user, :k]]


class PopularityRecommender(Recommender):
    """Everyone gets the globally most-clicked candidates."""

    def __init__(self, click_counts: np.ndarray, candidate_items: np.ndarray) -> None:
        candidate_items = np.asarray(candidate_items, dtype=np.int64)
        order = np.argsort(-np.asarray(click_counts)[candidate_items], kind="mergesort")
        self._ranked_items = candidate_items[order]

    def recommend(self, user: int, k: int) -> np.ndarray:
        counter_add("serving.recommendations", 1)
        return self._ranked_items[:k]


class TaxonomyRecommender(Recommender):
    """Serve items from the taxonomy topics matching a user's interests.

    ``user_topics`` maps each user to the finest-level topic ids that
    cover their interest profile (e.g. the topics containing their
    recently clicked items).  The slate is filled with the most popular
    unseen items of those topics, walking up to the parent topic when a
    topic runs dry — so a *better* taxonomy (items truly sharing intent)
    yields slates the user actually clicks.
    """

    def __init__(
        self,
        taxonomy: Taxonomy,
        user_topics: dict[int, list[str]],
        click_counts: np.ndarray,
        candidate_items: np.ndarray | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        self.taxonomy = taxonomy
        self.user_topics = user_topics
        self.click_counts = np.asarray(click_counts, dtype=np.float64)
        self.candidate_set = (
            set(int(i) for i in candidate_items) if candidate_items is not None else None
        )
        self.rng = ensure_rng(rng)

    def _topic_items(self, topic_id: str) -> np.ndarray:
        items = self.taxonomy.topics[topic_id].items
        if self.candidate_set is not None:
            items = np.array(
                [i for i in items if int(i) in self.candidate_set], dtype=np.int64
            )
        return items

    def recommend(self, user: int, k: int) -> np.ndarray:
        counter_add("serving.recommendations", 1)
        slate: list[int] = []
        seen: set[int] = set()
        topics = list(self.user_topics.get(int(user), []))
        # Round-robin over the user's topics, most popular items first;
        # escalate to parents if the user's topics cannot fill the slate.
        frontier = topics
        while frontier and len(slate) < k:
            next_frontier: list[str] = []
            for topic_id in frontier:
                if topic_id not in self.taxonomy.topics:
                    continue
                items = self._topic_items(topic_id)
                fresh = [int(i) for i in items if int(i) not in seen]
                fresh.sort(key=lambda i: -self.click_counts[i])
                for item in fresh:
                    if len(slate) >= k:
                        break
                    slate.append(item)
                    seen.add(item)
                parent = self.taxonomy.topics[topic_id].parent
                if parent:
                    next_frontier.append(parent)
            frontier = next_frontier
        if len(slate) < k and self.candidate_set is not None:
            # Back-fill with popular candidates outside the user's topics.
            pool = sorted(self.candidate_set - seen, key=lambda i: -self.click_counts[i])
            slate.extend(pool[: k - len(slate)])
        return np.asarray(slate[:k], dtype=np.int64)
