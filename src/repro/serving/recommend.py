"""Recommenders used in the simulated A/B tests.

``ModelRecommender`` ranks a candidate pool by a trained CVR model's
scores (the Table IV treatment/control arms).  ``TaxonomyRecommender``
serves items from the taxonomy topic matching the user's interests (the
Section V-D-4 taxonomy A/B).  ``PopularityRecommender`` is a sanity
floor.
"""

from __future__ import annotations

import numpy as np

from repro.obs.metrics import counter_add
from repro.serving.environment import Recommender
from repro.streaming.lru import LRUCache
from repro.taxonomy.builder import Taxonomy
from repro.utils.rng import ensure_rng

__all__ = [
    "ScoreTableRecommender",
    "PopularityRecommender",
    "TaxonomyRecommender",
    "stable_topk",
]


def stable_topk(row: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest entries, stable-sort tie order.

    Equivalent to ``np.argsort(-row, kind="mergesort")[:k]`` but via an
    O(n + k·log k) ``argpartition`` selection: the kth-largest value
    bounds the slate, everything strictly above it is in, and boundary
    ties are filled lowest-index-first — exactly the stable full sort's
    tie order.  Shared by :class:`ScoreTableRecommender` and the
    streaming :class:`~repro.streaming.frontend.ServingFrontend`.
    """
    n = row.shape[0]
    if k >= n:
        return np.argsort(-row, kind="mergesort")
    thresh = np.partition(row, n - k)[n - k]
    above = np.flatnonzero(row > thresh)
    equal = np.flatnonzero(row == thresh)[: k - len(above)]
    take = np.concatenate([above, equal])
    return take[np.lexsort((take, -row[take]))]


class ScoreTableRecommender(Recommender):
    """Top-K over a precomputed (num_users, num_candidates) score table.

    Scoring every (user, candidate) pair up front keeps the serving loop
    fast and makes the recommender deterministic.

    Ranking is lazy: instead of a full ``argsort`` of every row at
    construction (O(U·C·log C) before the first request is served), each
    served user gets a :func:`stable_topk` selection on first use —
    O(C + k·log k) — with the selected prefix cached for repeat visits.
    Tie-breaking reproduces the stable full sort exactly: ties at the
    slate boundary go to the lowest candidate index.

    The per-user cache is a *bounded* LRU (``cache_size`` entries,
    eviction/hit/miss counters under ``serving.topk``): one cached row
    per unique visitor with no bound is a slow memory leak under
    million-user traffic.
    """

    def __init__(
        self,
        scores: np.ndarray,
        candidate_items: np.ndarray,
        cache_size: int = 4096,
    ) -> None:
        scores = np.asarray(scores, dtype=np.float64)
        candidate_items = np.asarray(candidate_items, dtype=np.int64)
        if scores.ndim != 2 or scores.shape[1] != len(candidate_items):
            raise ValueError("scores must be (num_users, num_candidates)")
        self._scores = scores
        self._candidates = candidate_items
        # user -> (k, top-k column indices); reused whenever the cached
        # prefix covers the requested k.
        self._topk_cache = LRUCache(cache_size, metric_prefix="serving.topk")

    def recommend(self, user: int, k: int) -> np.ndarray:
        counter_add("serving.recommendations", 1)
        if k <= 0:
            return self._candidates[:0]
        cached = self._topk_cache.get(user)
        if cached is None or cached[0] < k:
            cached = (k, stable_topk(self._scores[user], k))
            self._topk_cache.put(user, cached)
        return self._candidates[cached[1][:k]]


class PopularityRecommender(Recommender):
    """Everyone gets the globally most-clicked candidates."""

    def __init__(self, click_counts: np.ndarray, candidate_items: np.ndarray) -> None:
        candidate_items = np.asarray(candidate_items, dtype=np.int64)
        order = np.argsort(-np.asarray(click_counts)[candidate_items], kind="mergesort")
        self._ranked_items = candidate_items[order]

    def recommend(self, user: int, k: int) -> np.ndarray:
        counter_add("serving.recommendations", 1)
        return self._ranked_items[:k]


class TaxonomyRecommender(Recommender):
    """Serve items from the taxonomy topics matching a user's interests.

    ``user_topics`` maps each user to the finest-level topic ids that
    cover their interest profile (e.g. the topics containing their
    recently clicked items).  The slate is filled with the most popular
    unseen items of those topics, walking up to the parent topic when a
    topic runs dry — so a *better* taxonomy (items truly sharing intent)
    yields slates the user actually clicks.
    """

    def __init__(
        self,
        taxonomy: Taxonomy,
        user_topics: dict[int, list[str]],
        click_counts: np.ndarray,
        candidate_items: np.ndarray | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        self.taxonomy = taxonomy
        self.user_topics = user_topics
        self.click_counts = np.asarray(click_counts, dtype=np.float64)
        self.candidate_set = (
            set(int(i) for i in candidate_items) if candidate_items is not None else None
        )
        self.rng = ensure_rng(rng)
        # Candidate-filtered, popularity-ordered item list per topic,
        # computed once here instead of filtered + sorted on every
        # recommend() call.  Stable sort keeps tie order identical to the
        # per-call path (ties follow the topic's item order).
        self._topic_ranked: dict[str, list[int]] = {
            topic_id: self._rank_topic_items(topic_id)
            for topic_id in self.taxonomy.topics
        }
        # Popularity-ranked back-fill pool, precomputed for *both* cases:
        # without a candidate set every item is fair game — previously
        # no-candidate-set recommenders skipped back-fill entirely and
        # short-history users got under-filled slates.
        if self.candidate_set is not None:
            pool = np.array(sorted(self.candidate_set), dtype=np.int64)
        else:
            pool = np.arange(len(self.click_counts), dtype=np.int64)
        order = np.argsort(-self.click_counts[pool], kind="mergesort")
        self._ranked_candidates: list[int] = [int(i) for i in pool[order]]

    def _rank_topic_items(self, topic_id: str) -> list[int]:
        items = np.asarray(self.taxonomy.topics[topic_id].items, dtype=np.int64)
        if self.candidate_set is not None:
            items = np.array(
                [i for i in items if int(i) in self.candidate_set], dtype=np.int64
            )
        if not len(items):
            return []
        order = np.argsort(-self.click_counts[items], kind="mergesort")
        return [int(i) for i in items[order]]

    def _topic_items_ranked(self, topic_id: str) -> list[int]:
        ranked = self._topic_ranked.get(topic_id)
        if ranked is None:  # topic added after construction
            ranked = self._topic_ranked[topic_id] = self._rank_topic_items(topic_id)
        return ranked

    def recommend(self, user: int, k: int) -> np.ndarray:
        counter_add("serving.recommendations", 1)
        slate: list[int] = []
        seen: set[int] = set()
        topics = list(self.user_topics.get(int(user), []))
        # Round-robin over the user's topics, most popular items first;
        # escalate to parents if the user's topics cannot fill the slate.
        frontier = topics
        while frontier and len(slate) < k:
            next_frontier: list[str] = []
            for topic_id in frontier:
                if topic_id not in self.taxonomy.topics:
                    continue
                for item in self._topic_items_ranked(topic_id):
                    if len(slate) >= k:
                        break
                    if item in seen:
                        continue
                    slate.append(item)
                    seen.add(item)
                parent = self.taxonomy.topics[topic_id].parent
                if parent:
                    next_frontier.append(parent)
            frontier = next_frontier
        if len(slate) < k:
            # Back-fill with popular candidates outside the user's
            # topics, stopping as soon as the slate is full instead of
            # materialising the whole O(num_candidates) filtered list.
            for item in self._ranked_candidates:
                if len(slate) >= k:
                    break
                if item not in seen:
                    slate.append(item)
        return np.asarray(slate[:k], dtype=np.int64)
