"""Glue between trained models and the serving simulator.

Two entry points:

* :func:`cvr_score_table` — precompute model scores for every
  (user, candidate) pair, feeding :class:`ScoreTableRecommender`
  (the Table IV arms).
* :func:`build_taxonomy_ab_world` + :func:`user_topics_from_history` —
  synthesise a browsing population over the *query-item* world's topic
  tree so taxonomy-driven recommendations can be A/B tested
  (Section V-D-4).
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import GroundTruth, WorldConfig
from repro.data.synthetic_text import QueryItemDataset
from repro.obs import span
from repro.obs.metrics import counter_add
from repro.parallel import get_pool
from repro.prediction.cvr_model import CVRModel
from repro.prediction.features import FeatureAssembler
from repro.taxonomy.builder import Taxonomy
from repro.utils.rng import derive_rng, ensure_rng

__all__ = [
    "cvr_score_table",
    "build_taxonomy_ab_world",
    "sample_user_histories",
    "user_topics_from_history",
]


def _score_users_chunk(task: tuple, context: tuple) -> np.ndarray:
    """Score one fixed user-range against every candidate item.

    Module-level so worker processes can execute it; the (model,
    assembler, candidates) context is broadcast once per map.
    """
    start, stop = task
    model, assembler, candidate_items = context
    n_cand = len(candidate_items)
    users = np.repeat(np.arange(start, stop), n_cand)
    items = np.tile(candidate_items, stop - start)
    feats = assembler.assemble(users, items)
    counter_add("serving.pairs_scored", (stop - start) * n_cand)
    return model.predict_proba(feats).reshape(stop - start, n_cand)


def cvr_score_table(
    model: CVRModel,
    assembler: FeatureAssembler,
    num_users: int,
    candidate_items: np.ndarray,
    batch_users: int = 64,
    workers: int | None = None,
) -> np.ndarray:
    """(num_users, num_candidates) model scores for slate ranking.

    User batches are scored independently — over a process pool when
    ``workers`` (or the configured default) exceeds one — and written
    back in batch order, so the table is bitwise identical for every
    worker count.
    """
    candidate_items = np.asarray(candidate_items, dtype=np.int64)
    n_cand = len(candidate_items)
    table = np.zeros((num_users, n_cand))
    pool = get_pool(workers)
    tasks = [
        (start, min(start + batch_users, num_users))
        for start in range(0, num_users, batch_users)
    ]
    with span("serving.score_table", num_users=num_users, num_candidates=n_cand):
        blocks = pool.map(
            _score_users_chunk,
            tasks,
            context=(model, assembler, candidate_items),
            label="serving.score_chunk",
        )
        for (start, stop), block in zip(tasks, blocks):
            table[start:stop] = block
    return table


def build_taxonomy_ab_world(
    dataset: QueryItemDataset,
    num_users: int = 1000,
    affinity_decay: float = 0.35,
    seed: int | np.random.Generator | None = 0,
) -> GroundTruth:
    """A browsing population over the query-world's items and topic tree.

    Users get home leaves and decaying affinities exactly like the
    prediction world, but the item table is the query–item dataset's, so
    taxonomy recommenders built on that dataset can be evaluated online.
    """
    rng = ensure_rng(seed)
    tree = dataset.tree
    n_leaves = tree.n_leaves
    leaf_index = {int(l): i for i, l in enumerate(tree.leaves)}
    item_leaf_index = np.array([leaf_index[int(l)] for l in dataset.item_leaf])

    home = rng.integers(0, n_leaves, size=num_users)
    dist = tree.leaf_distance_matrix()
    affinity = affinity_decay ** dist[home].astype(float)
    affinity = affinity * rng.uniform(0.5, 1.5, size=affinity.shape)
    affinity /= affinity.sum(axis=1, keepdims=True)

    num_items = dataset.num_items
    return GroundTruth(
        tree=tree,
        item_leaf=dataset.item_leaf.copy(),
        item_leaf_index=item_leaf_index,
        user_affinity=affinity,
        user_home_leaf_index=home,
        purchasing_power=rng.uniform(-1.0, 1.0, size=num_users),
        price_tier=rng.uniform(-1.0, 1.0, size=num_items),
        new_items=np.zeros(num_items, dtype=bool),
        config=WorldConfig(num_users=num_users, num_items=num_items),
    )


def sample_user_histories(
    truth: GroundTruth,
    items_per_user: int = 5,
    seed: int | np.random.Generator | None = 0,
) -> dict[int, list[int]]:
    """Short click histories sampled from each user's true affinity.

    These are the 'recently clicked items' a production system would
    observe; the taxonomy recommender sees only these, never the truth.
    """
    rng = ensure_rng(seed)
    n_leaves = truth.user_affinity.shape[1]
    items_by_leaf = [
        np.flatnonzero(truth.item_leaf_index == leaf) for leaf in range(n_leaves)
    ]
    histories: dict[int, list[int]] = {}
    for user in range(len(truth.user_affinity)):
        leaves = rng.choice(n_leaves, size=items_per_user, p=truth.user_affinity[user])
        history: list[int] = []
        for leaf in leaves:
            pool = items_by_leaf[leaf]
            if len(pool):
                history.append(int(rng.choice(pool)))
        histories[user] = history
    return histories


def user_topics_from_history(
    taxonomy: Taxonomy,
    histories: dict[int, list[int]],
    level: int = 1,
) -> dict[int, list[str]]:
    """Map users to the taxonomy topics containing their history items."""
    item_to_topic: dict[int, str] = {}
    for topic in taxonomy.at_level(level):
        for item in topic.items:
            item_to_topic[int(item)] = topic.topic_id
    user_topics: dict[int, list[str]] = {}
    for user, history in histories.items():
        topics: list[str] = []
        for item in history:
            topic_id = item_to_topic.get(int(item))
            if topic_id is not None and topic_id not in topics:
                topics.append(topic_id)
        user_topics[user] = topics
    return user_topics
