"""Simulated online serving environment (the paper's Taobao A/B substrate).

Visitors arrive, receive a top-K recommendation slate, click each shown
item with the world's ground-truth click propensity, and convert clicks
into purchases with the ground-truth conversion propensity.  The four
business metrics of Section IV-C fall out of the event log:

* UV  — unique visitors who clicked at least once,
* CNT — number of transactions,
* CTR — clicks / impressions,
* CVR — transactions / clicks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthetic import GroundTruth
from repro.utils.rng import ensure_rng

__all__ = ["ServingMetrics", "Recommender", "OnlineEnvironment"]


@dataclass(frozen=True)
class ServingMetrics:
    """Aggregated business metrics of one serving day."""

    visitors: int
    impressions: int
    clicks: int
    transactions: int
    unique_click_visitors: int

    @property
    def uv(self) -> int:
        """Unique visitors with >= 1 click (the paper's UV)."""
        return self.unique_click_visitors

    @property
    def cnt(self) -> int:
        """Transaction count (the paper's CNT)."""
        return self.transactions

    @property
    def ctr(self) -> float:
        return self.clicks / self.impressions if self.impressions else 0.0

    @property
    def cvr(self) -> float:
        return self.transactions / self.clicks if self.clicks else 0.0

    def as_dict(self) -> dict[str, float]:
        return {"UV": self.uv, "CNT": self.cnt, "CTR": self.ctr, "CVR": self.cvr}


class Recommender:
    """Interface: produce a top-K slate of item ids for a user."""

    def recommend(self, user: int, k: int) -> np.ndarray:
        raise NotImplementedError


class OnlineEnvironment:
    """Replays one serving day against the ground-truth behaviour model."""

    def __init__(
        self,
        truth: GroundTruth,
        candidate_items: np.ndarray | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        self.truth = truth
        self.candidate_items = (
            np.asarray(candidate_items)
            if candidate_items is not None
            else np.arange(len(truth.item_leaf))
        )
        self.rng = ensure_rng(rng)

    def run_day(
        self,
        recommender: Recommender,
        visitors: np.ndarray,
        slate_size: int = 10,
    ) -> ServingMetrics:
        """Serve every visitor one slate and simulate the responses.

        Responses are drawn per *slate*, not per impression: one uniform
        vector against the vectorised click oracle, then one uniform
        vector (over the clicked items only) against the purchase
        oracle.  Seeded runs are reproducible, but the RNG stream is two
        ``rng.random(n)`` calls per slate — it intentionally differs
        from the retained per-impression reference
        (:meth:`_run_day_loop`), which draws scalars interleaved
        click/purchase per item.  The two are distributionally
        identical: each impression still consumes an independent uniform
        per Bernoulli decision.
        """
        if slate_size < 1:
            raise ValueError("slate_size must be >= 1")
        impressions = 0
        clicks = 0
        transactions = 0
        clicked_visitors: set[int] = set()
        for user in visitors:
            user = int(user)
            slate = np.asarray(recommender.recommend(user, slate_size), dtype=np.int64)
            if not len(slate):
                continue
            impressions += len(slate)
            clicked = (
                self.rng.random(len(slate))
                < self.truth.click_probabilities(user, slate)
            )
            n_clicked = int(clicked.sum())
            if n_clicked:
                clicks += n_clicked
                clicked_visitors.add(user)
                bought = (
                    self.rng.random(n_clicked)
                    < self.truth.purchase_probabilities(user, slate[clicked])
                )
                transactions += int(bought.sum())
        return ServingMetrics(
            visitors=len(visitors),
            impressions=impressions,
            clicks=clicks,
            transactions=transactions,
            unique_click_visitors=len(clicked_visitors),
        )

    def _run_day_loop(
        self,
        recommender: Recommender,
        visitors: np.ndarray,
        slate_size: int = 10,
    ) -> ServingMetrics:
        """Per-impression reference implementation (pre-vectorisation).

        Retained for equivalence-in-distribution tests and the serving
        benchmark's before/after pair.  Draws one scalar uniform per
        impression and, on click, one more for the purchase — the
        original interleaved stream.
        """
        if slate_size < 1:
            raise ValueError("slate_size must be >= 1")
        impressions = 0
        clicks = 0
        transactions = 0
        clicked_visitors: set[int] = set()
        for user in visitors:
            user = int(user)
            slate = recommender.recommend(user, slate_size)
            for item in slate:
                item = int(item)
                impressions += 1
                if self.rng.random() < self.truth.click_probability(user, item):
                    clicks += 1
                    clicked_visitors.add(user)
                    if self.rng.random() < self.truth.purchase_probability(user, item):
                        transactions += 1
        return ServingMetrics(
            visitors=len(visitors),
            impressions=impressions,
            clicks=clicks,
            transactions=transactions,
            unique_click_visitors=len(clicked_visitors),
        )
