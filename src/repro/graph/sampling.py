"""Neighbour and negative samplers over bipartite graphs.

``NeighborSampler`` implements the fixed-fan-out sampling GraphSAGE uses
(K1, K2 in the paper's complexity analysis, Section III-D).
``NegativeSampler`` draws the negatives of Eq. 5's ``P_n`` distribution
— uniform, or proportional to degree^0.75 as in word2vec.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.obs.metrics import counter_add
from repro.utils.rng import ensure_rng

__all__ = ["NeighborSampler", "NegativeSampler", "sample_edge_batches"]


class NeighborSampler:
    """Draw fixed-size neighbour samples with replacement.

    Sampling is fully vectorised over the batch: per-vertex uniform
    offsets into the CSR neighbour slices.  Sampling *with* replacement
    (as in production GraphSAGE implementations) keeps the fan-out shape
    rectangular and the estimator unbiased.  Vertices with no neighbours
    receive the placeholder index ``-1``, which callers map to a zero
    vector.

    With ``weighted=True`` neighbours are drawn proportionally to their
    edge weights (importance sampling for the ``weighted_mean``
    aggregator).
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        rng: int | np.random.Generator | None = None,
        weighted: bool = False,
    ) -> None:
        self.graph = graph
        self.rng = ensure_rng(rng)
        self.weighted = weighted
        if weighted:
            self._user_cum = self._cumulative(graph._user_csr)
            self._item_cum = self._cumulative(graph._item_csr)

    @staticmethod
    def _cumulative(csr) -> np.ndarray:
        """Per-row cumulative weight shares for weighted sampling."""
        cum = np.cumsum(csr.weights)
        return cum

    def sample_items_for_users(self, users: np.ndarray, fanout: int) -> np.ndarray:
        """``(len(users), fanout)`` item ids; -1 marks isolated users."""
        return self._sample(users, fanout, side="user")

    def sample_users_for_items(self, items: np.ndarray, fanout: int) -> np.ndarray:
        """``(len(items), fanout)`` user ids; -1 marks isolated items."""
        return self._sample(items, fanout, side="item")

    def _sample(self, vertices: np.ndarray, fanout: int, side: str) -> np.ndarray:
        if fanout <= 0:
            raise ValueError("fanout must be positive")
        vertices = np.asarray(vertices, dtype=np.int64)
        counter_add("sampler.samples_drawn", len(vertices) * fanout)
        counter_add("sampler.batches", 1)
        csr = self.graph._user_csr if side == "user" else self.graph._item_csr
        starts = csr.indptr[vertices]
        degrees = csr.indptr[vertices + 1] - starts
        if self.weighted:
            return self._sample_weighted(csr, vertices, starts, degrees, fanout, side)
        if len(csr.indices) == 0:
            return np.full((len(vertices), fanout), -1, dtype=np.int64)
        offsets = (
            self.rng.random((len(vertices), fanout)) * degrees[:, None]
        ).astype(np.int64)
        positions = np.minimum(starts[:, None] + offsets, len(csr.indices) - 1)
        return np.where(degrees[:, None] > 0, csr.indices[positions], -1)

    def _sample_weighted(
        self,
        csr,
        vertices: np.ndarray,
        starts: np.ndarray,
        degrees: np.ndarray,
        fanout: int,
        side: str,
    ) -> np.ndarray:
        """Weighted draws via batched ``searchsorted`` (no per-row loop).

        One ``rng.random`` call covers every non-isolated row (the same
        draw sequence the per-row loop consumed), and one searchsorted
        over the global cumulative-weight array inverts all CDFs at
        once.  Per-row positions follow by subtracting the row offsets.
        """
        cum = self._user_cum if side == "user" else self._item_cum
        out = np.full((len(vertices), fanout), -1, dtype=np.int64)
        active = np.flatnonzero(degrees > 0)
        if len(active) == 0:
            return out
        a_starts = starts[active]
        a_degrees = degrees[active]
        base = np.where(a_starts > 0, cum[a_starts - 1], 0.0)
        totals = cum[a_starts + a_degrees - 1] - base
        draws = self.rng.random((len(active), fanout)) * totals[:, None]
        picks = np.searchsorted(cum, base[:, None] + draws, side="right") - a_starts[:, None]
        picks = np.clip(picks, 0, (a_degrees - 1)[:, None])
        out[active] = csr.indices[a_starts[:, None] + picks]
        return out

    def _sample_weighted_loop(
        self,
        csr,
        vertices: np.ndarray,
        starts: np.ndarray,
        degrees: np.ndarray,
        fanout: int,
        side: str,
    ) -> np.ndarray:
        """Per-row reference implementation (equivalence tests + bench)."""
        cum = self._user_cum if side == "user" else self._item_cum
        out = np.full((len(vertices), fanout), -1, dtype=np.int64)
        for row, (start, deg) in enumerate(zip(starts, degrees)):
            if deg == 0:
                continue
            base = cum[start - 1] if start > 0 else 0.0
            slice_cum = cum[start : start + deg] - base
            total = slice_cum[-1]
            draws = self.rng.random(fanout) * total
            picks = np.searchsorted(slice_cum, draws, side="right")
            out[row] = csr.indices[start + np.minimum(picks, deg - 1)]
        return out

    def _sample_reference(self, vertices: np.ndarray, fanout: int, side: str) -> np.ndarray:
        """Mirror of :meth:`_sample` routed through the per-row loop."""
        if not self.weighted:
            raise RuntimeError("_sample_reference is only defined for weighted samplers")
        vertices = np.asarray(vertices, dtype=np.int64)
        csr = self.graph._user_csr if side == "user" else self.graph._item_csr
        starts = csr.indptr[vertices]
        degrees = csr.indptr[vertices + 1] - starts
        return self._sample_weighted_loop(csr, vertices, starts, degrees, fanout, side)


class NegativeSampler:
    """Sample negative users/items for the unsupervised loss (Eq. 5).

    ``distribution`` is ``"uniform"`` or ``"degree"`` (propto deg^0.75,
    with +1 smoothing so isolated vertices remain reachable).
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        distribution: str = "degree",
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if distribution not in {"uniform", "degree"}:
            raise ValueError(f"unknown distribution {distribution!r}")
        self.graph = graph
        self.distribution = distribution
        self.rng = ensure_rng(rng)
        if distribution == "degree":
            u_w = (graph.user_degrees() + 1.0) ** 0.75
            i_w = (graph.item_degrees() + 1.0) ** 0.75
            self._user_probs = u_w / u_w.sum()
            self._item_probs = i_w / i_w.sum()
        else:
            self._user_probs = None
            self._item_probs = None

    def sample_users(self, size: int) -> np.ndarray:
        """Draw ``size`` negative user ids from P_n(u)."""
        counter_add("sampler.negatives_drawn", size)
        return self.rng.choice(
            self.graph.num_users, size=size, replace=True, p=self._user_probs
        )

    def sample_items(self, size: int) -> np.ndarray:
        """Draw ``size`` negative item ids from P_n(i)."""
        counter_add("sampler.negatives_drawn", size)
        return self.rng.choice(
            self.graph.num_items, size=size, replace=True, p=self._item_probs
        )


def sample_edge_batches(
    graph: BipartiteGraph,
    batch_size: int,
    rng: int | np.random.Generator | None = None,
    shuffle: bool = True,
):
    """Yield ``(users, items, weights)`` mini-batches covering every edge.

    Edges are visited exactly once per epoch in a shuffled order.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    rng = ensure_rng(rng)
    order = np.arange(graph.num_edges)
    if shuffle:
        rng.shuffle(order)
    edges = graph.edges
    weights = graph.edge_weights
    for start in range(0, len(order), batch_size):
        batch = order[start : start + batch_size]
        yield edges[batch, 0], edges[batch, 1], weights[batch]
