"""Random bipartite graph generators (testing and micro-benchmarks).

The realistic e-commerce workloads live in :mod:`repro.data.synthetic`;
these generators produce structurally simple graphs for unit tests and
for the complexity-scaling bench.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.utils.rng import ensure_rng

__all__ = ["random_bipartite", "block_bipartite", "star_bipartite"]


def random_bipartite(
    num_users: int,
    num_items: int,
    num_edges: int,
    feature_dim: int = 8,
    weighted: bool = True,
    rng: int | np.random.Generator | None = None,
) -> BipartiteGraph:
    """Erdos–Renyi-style bipartite graph with random features."""
    rng = ensure_rng(rng)
    max_edges = num_users * num_items
    if num_edges > max_edges:
        raise ValueError("more edges requested than user-item pairs exist")
    flat = rng.choice(max_edges, size=num_edges, replace=False)
    edges = np.column_stack([flat // num_items, flat % num_items])
    weights = rng.integers(1, 10, size=num_edges).astype(float) if weighted else None
    return BipartiteGraph(
        num_users,
        num_items,
        edges,
        weights,
        user_features=rng.normal(size=(num_users, feature_dim)),
        item_features=rng.normal(size=(num_items, feature_dim)),
    )


def block_bipartite(
    n_blocks: int,
    users_per_block: int,
    items_per_block: int,
    p_in: float = 0.5,
    p_out: float = 0.01,
    feature_dim: int = 8,
    rng: int | np.random.Generator | None = None,
) -> tuple[BipartiteGraph, np.ndarray, np.ndarray]:
    """Stochastic block bipartite graph with planted co-clusters.

    Returns the graph plus ground-truth user and item block labels —
    the canonical fixture for clustering/coarsening tests, since HiGNN's
    thesis is that such co-community structure is recoverable.
    Block features are separated Gaussians so even feature-only methods
    have signal.
    """
    rng = ensure_rng(rng)
    num_users = n_blocks * users_per_block
    num_items = n_blocks * items_per_block
    user_blocks = np.repeat(np.arange(n_blocks), users_per_block)
    item_blocks = np.repeat(np.arange(n_blocks), items_per_block)

    edges = []
    for u in range(num_users):
        for i in range(num_items):
            p = p_in if user_blocks[u] == item_blocks[i] else p_out
            if rng.random() < p:
                edges.append((u, i))
    if not edges:  # degenerate parameters; guarantee one edge
        edges.append((0, 0))
    centers = rng.normal(scale=4.0, size=(n_blocks, feature_dim))
    user_feats = centers[user_blocks] + rng.normal(scale=0.5, size=(num_users, feature_dim))
    item_feats = centers[item_blocks] + rng.normal(scale=0.5, size=(num_items, feature_dim))
    graph = BipartiteGraph(
        num_users,
        num_items,
        np.asarray(edges),
        user_features=user_feats,
        item_features=item_feats,
    )
    return graph, user_blocks, item_blocks


def star_bipartite(num_items: int, feature_dim: int = 4) -> BipartiteGraph:
    """One user connected to every item — a degenerate-case fixture."""
    edges = np.column_stack([np.zeros(num_items, dtype=int), np.arange(num_items)])
    return BipartiteGraph(
        1,
        num_items,
        edges,
        user_features=np.ones((1, feature_dim)),
        item_features=np.ones((num_items, feature_dim)),
    )
