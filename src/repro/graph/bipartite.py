"""The bipartite graph data structure (Section III-A).

A user–item (or query–item) graph is the quadruple G = (U, I, E, S):
two disjoint vertex sets, weighted edges only *between* the sides, and
a weight function S.  The structure is stored in CSR form twice — once
from the user side, once from the item side — so neighbour queries are
O(degree) in both directions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BipartiteGraph"]


@dataclass(frozen=True)
class _CSR:
    """One direction of adjacency in compressed sparse row form."""

    indptr: np.ndarray  # (n_rows + 1,)
    indices: np.ndarray  # (n_edges,) column ids
    weights: np.ndarray  # (n_edges,)

    def neighbors(self, row: int) -> np.ndarray:
        return self.indices[self.indptr[row] : self.indptr[row + 1]]

    def neighbor_weights(self, row: int) -> np.ndarray:
        return self.weights[self.indptr[row] : self.indptr[row + 1]]

    def degree(self, row: int) -> int:
        return int(self.indptr[row + 1] - self.indptr[row])


class BipartiteGraph:
    """A weighted bipartite graph over ``num_users`` x ``num_items``.

    Parameters
    ----------
    num_users, num_items:
        Vertex counts of each side.  For the taxonomy task the "user"
        side holds queries; the structure is identical.
    edges:
        ``(n_edges, 2)`` integer array of (user, item) pairs.  Duplicate
        pairs are merged with weights summed.
    weights:
        Per-edge positive connection strengths ``S(e)``; defaults to 1.
    user_features, item_features:
        Optional dense feature matrices ``X_u`` (num_users x d_u) and
        ``X_i`` (num_items x d_i).
    """

    def __init__(
        self,
        num_users: int,
        num_items: int,
        edges: np.ndarray,
        weights: np.ndarray | None = None,
        user_features: np.ndarray | None = None,
        item_features: np.ndarray | None = None,
    ) -> None:
        if num_users <= 0 or num_items <= 0:
            raise ValueError("both vertex sets must be non-empty")
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if weights is None:
            weights = np.ones(len(edges), dtype=np.float64)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != (len(edges),):
                raise ValueError("weights must align one-to-one with edges")
            if len(weights) and weights.min() <= 0:
                raise ValueError("edge weights (connection strengths) must be positive")
        if len(edges):
            if edges[:, 0].min() < 0 or edges[:, 0].max() >= num_users:
                raise ValueError("user index out of range")
            if edges[:, 1].min() < 0 or edges[:, 1].max() >= num_items:
                raise ValueError("item index out of range")

        self.num_users = int(num_users)
        self.num_items = int(num_items)
        self._edges, self._weights = self._merge_duplicates(edges, weights)
        self._user_csr = self._build_csr(
            self._edges[:, 0], self._edges[:, 1], self._weights, self.num_users
        )
        self._item_csr = self._build_csr(
            self._edges[:, 1], self._edges[:, 0], self._weights, self.num_items
        )
        self.user_features = self._check_features(user_features, num_users, "user")
        self.item_features = self._check_features(item_features, num_items, "item")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _merge_duplicates(
        edges: np.ndarray, weights: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        if not len(edges):
            return edges, weights
        unique, inverse = np.unique(edges, axis=0, return_inverse=True)
        if len(unique) == len(edges):
            return edges, weights
        merged = np.zeros(len(unique), dtype=np.float64)
        np.add.at(merged, inverse, weights)
        return unique, merged

    @staticmethod
    def _build_csr(
        rows: np.ndarray, cols: np.ndarray, weights: np.ndarray, n_rows: int
    ) -> _CSR:
        order = np.argsort(rows, kind="stable")
        sorted_rows = rows[order]
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        counts = np.bincount(sorted_rows, minlength=n_rows)
        indptr[1:] = np.cumsum(counts)
        return _CSR(indptr=indptr, indices=cols[order], weights=weights[order])

    @staticmethod
    def _check_features(
        features: np.ndarray | None, n: int, side: str
    ) -> np.ndarray | None:
        if features is None:
            return None
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[0] != n:
            raise ValueError(
                f"{side}_features must have shape ({n}, d), got {features.shape}"
            )
        return features

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def edges(self) -> np.ndarray:
        """``(n_edges, 2)`` array of (user, item) pairs (deduplicated)."""
        return self._edges

    @property
    def edge_weights(self) -> np.ndarray:
        return self._weights

    @property
    def total_weight(self) -> float:
        """Sum of all connection strengths (conserved by coarsening)."""
        return float(self._weights.sum())

    @property
    def density(self) -> float:
        """|E| / (|U| * |I|), as reported in the paper's Tables I and V."""
        return self.num_edges / (self.num_users * self.num_items)

    def item_neighbors(self, user: int) -> np.ndarray:
        """Items adjacent to ``user`` — N(u) of Eq. 1."""
        return self._user_csr.neighbors(user)

    def user_neighbors(self, item: int) -> np.ndarray:
        """Users adjacent to ``item`` — N(i) of Eq. 2."""
        return self._item_csr.neighbors(item)

    def item_neighbor_weights(self, user: int) -> np.ndarray:
        return self._user_csr.neighbor_weights(user)

    def user_neighbor_weights(self, item: int) -> np.ndarray:
        return self._item_csr.neighbor_weights(item)

    def user_degree(self, user: int) -> int:
        return self._user_csr.degree(user)

    def item_degree(self, item: int) -> int:
        return self._item_csr.degree(item)

    def user_degrees(self) -> np.ndarray:
        return np.diff(self._user_csr.indptr)

    def item_degrees(self) -> np.ndarray:
        return np.diff(self._item_csr.indptr)

    def has_edge(self, user: int, item: int) -> bool:
        return item in self.item_neighbors(user)

    def edge_weight(self, user: int, item: int) -> float:
        """S((u, i)); 0.0 when the edge does not exist."""
        neigh = self.item_neighbors(user)
        mask = neigh == item
        if not mask.any():
            return 0.0
        return float(self.item_neighbor_weights(user)[mask][0])

    def edge_set(self) -> set[tuple[int, int]]:
        """All edges as python tuples (test/diagnostic helper)."""
        return {(int(u), int(i)) for u, i in self._edges}

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def with_features(
        self,
        user_features: np.ndarray | None = None,
        item_features: np.ndarray | None = None,
    ) -> "BipartiteGraph":
        """A copy of this graph with the given feature matrices attached."""
        return BipartiteGraph(
            self.num_users,
            self.num_items,
            self._edges,
            self._weights,
            user_features if user_features is not None else self.user_features,
            item_features if item_features is not None else self.item_features,
        )

    def subgraph_by_edges(self, edge_mask: np.ndarray) -> "BipartiteGraph":
        """Graph with only the edges selected by the boolean ``edge_mask``.

        Vertex sets (and features) are preserved so ids stay aligned.
        """
        edge_mask = np.asarray(edge_mask, dtype=bool)
        if edge_mask.shape != (self.num_edges,):
            raise ValueError("edge_mask must have one entry per edge")
        return BipartiteGraph(
            self.num_users,
            self.num_items,
            self._edges[edge_mask],
            self._weights[edge_mask],
            self.user_features,
            self.item_features,
        )

    # ------------------------------------------------------------------
    # Sharded storage interop
    # ------------------------------------------------------------------
    def to_sharded(
        self,
        path,
        num_shards: int = 4,
        hierarchy=None,
        user_shard: np.ndarray | None = None,
        item_shard: np.ndarray | None = None,
    ):
        """Write this graph into a :class:`~repro.shard.storage.ShardedCSR`.

        Returns the owner store handle.  Partitioning follows
        ``ShardedCSR.from_graph``: explicit shard arrays, else a fitted
        HiGNN hierarchy's level-1 clusters, else degree balancing.  Per
        row neighbour order is preserved exactly, so samplers over the
        store replay this graph's draw streams bit for bit.
        """
        from repro.shard.storage import ShardedCSR

        return ShardedCSR.from_graph(
            self,
            path,
            num_shards=num_shards,
            hierarchy=hierarchy,
            user_shard=user_shard,
            item_shard=item_shard,
        )

    @staticmethod
    def from_sharded(path) -> "BipartiteGraph":
        """Load a shard directory back into an in-memory graph.

        Edges come back in canonical user-major order with per-user
        neighbour order preserved; intended for graphs that fit in RAM
        (round-trip tests, small-scale verification).
        """
        from repro.shard.storage import ShardedCSR

        with ShardedCSR.open(path) as store:
            return store.to_graph()

    def adjacency_matrix(self) -> np.ndarray:
        """Dense (num_users, num_items) weight matrix — small graphs only."""
        if self.num_users * self.num_items > 50_000_000:
            raise MemoryError("graph too large for a dense adjacency matrix")
        mat = np.zeros((self.num_users, self.num_items))
        mat[self._edges[:, 0], self._edges[:, 1]] = self._weights
        return mat

    def __repr__(self) -> str:
        return (
            f"BipartiteGraph(users={self.num_users}, items={self.num_items}, "
            f"edges={self.num_edges}, density={self.density:.3e})"
        )
