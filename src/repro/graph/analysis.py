"""Structural analysis of bipartite graphs.

Descriptive statistics used when validating synthetic worlds against
the paper's datasets (degree distributions, connectivity) and for
sanity-checking coarsened graphs between HiGNN levels.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteGraph

__all__ = [
    "degree_summary",
    "connected_components",
    "giant_component_fraction",
    "weight_gini",
]


def degree_summary(graph: BipartiteGraph) -> dict[str, float]:
    """Mean/median/max degrees and isolated-vertex counts per side."""
    du = graph.user_degrees()
    di = graph.item_degrees()
    return {
        "user_mean": float(du.mean()),
        "user_median": float(np.median(du)),
        "user_max": int(du.max()),
        "user_isolated": int((du == 0).sum()),
        "item_mean": float(di.mean()),
        "item_median": float(np.median(di)),
        "item_max": int(di.max()),
        "item_isolated": int((di == 0).sum()),
    }


def connected_components(graph: BipartiteGraph) -> tuple[np.ndarray, np.ndarray]:
    """Component ids for users and items (shared id space, BFS).

    Isolated vertices form singleton components.  Returns
    ``(user_components, item_components)``.
    """
    user_comp = np.full(graph.num_users, -1, dtype=np.int64)
    item_comp = np.full(graph.num_items, -1, dtype=np.int64)
    next_id = 0
    for seed_user in range(graph.num_users):
        if user_comp[seed_user] != -1:
            continue
        user_comp[seed_user] = next_id
        frontier_users = [seed_user]
        frontier_items: list[int] = []
        while frontier_users or frontier_items:
            new_items: list[int] = []
            for u in frontier_users:
                for i in graph.item_neighbors(u):
                    i = int(i)
                    if item_comp[i] == -1:
                        item_comp[i] = next_id
                        new_items.append(i)
            new_users: list[int] = []
            for i in frontier_items + new_items:
                for u in graph.user_neighbors(i):
                    u = int(u)
                    if user_comp[u] == -1:
                        user_comp[u] = next_id
                        new_users.append(u)
            frontier_users = new_users
            frontier_items = []
        next_id += 1
    for item in range(graph.num_items):
        if item_comp[item] == -1:
            item_comp[item] = next_id
            next_id += 1
    return user_comp, item_comp


def giant_component_fraction(graph: BipartiteGraph) -> float:
    """Share of all vertices inside the largest connected component."""
    user_comp, item_comp = connected_components(graph)
    all_comp = np.concatenate([user_comp, item_comp])
    counts = np.bincount(all_comp)
    return float(counts.max() / len(all_comp))


def weight_gini(graph: BipartiteGraph) -> float:
    """Gini coefficient of edge weights (0 = uniform, ->1 = concentrated)."""
    weights = np.sort(graph.edge_weights)
    n = len(weights)
    if n == 0:
        raise ValueError("graph has no edges")
    cum = np.cumsum(weights)
    if cum[-1] == 0:
        return 0.0
    return float((n + 1 - 2 * np.sum(cum) / cum[-1]) / n)
