"""Bipartite graph substrate: storage, sampling, coarsening, generators."""

from repro.graph.bipartite import BipartiteGraph
from repro.graph.coarsen import CoarseningResult, coarsen, compose_assignments
from repro.graph.sampling import NegativeSampler, NeighborSampler, sample_edge_batches
from repro.graph.generators import block_bipartite, random_bipartite, star_bipartite

__all__ = [
    "BipartiteGraph",
    "CoarseningResult",
    "coarsen",
    "compose_assignments",
    "NeighborSampler",
    "NegativeSampler",
    "sample_edge_batches",
    "random_bipartite",
    "block_bipartite",
    "star_bipartite",
]
