"""Graph coarsening — the F(C_u, C_i, G) step of Algorithm 1.

Given cluster assignments of users and items, build the next-level
bipartite graph whose vertices are the clusters.  Edge weights follow
Eq. 6: S(C_u, C_i) = sum of S(e) over all original edges between members
of the two clusters; an edge exists iff that sum is positive.  Cluster
features are the mean embedding of the members (Section III-C).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.obs import span
from repro.obs.metrics import counter_add

__all__ = ["CoarseningResult", "coarsen"]


@dataclass(frozen=True)
class CoarseningResult:
    """Output of one coarsening step.

    Attributes
    ----------
    graph:
        The coarsened bipartite graph with cluster-mean features attached.
    user_assignment, item_assignment:
        Arrays mapping each fine vertex to its cluster id at this level.
    """

    graph: BipartiteGraph
    user_assignment: np.ndarray
    item_assignment: np.ndarray


def coarsen(
    graph: BipartiteGraph,
    user_assignment: np.ndarray,
    item_assignment: np.ndarray,
    user_embeddings: np.ndarray,
    item_embeddings: np.ndarray,
) -> CoarseningResult:
    """Build the coarsened graph F(C_u, C_i, G) of Algorithm 1 line 6.

    Parameters
    ----------
    graph:
        The current-level bipartite graph G^{l-1}.
    user_assignment, item_assignment:
        Cluster ids per vertex (0-based, dense — every id in
        ``[0, n_clusters)`` should be used).
    user_embeddings, item_embeddings:
        The level-l embeddings Z_u^l, Z_i^l from which cluster features
        X_{C_u}, X_{C_i} are computed as member means.
    """
    user_assignment = _validated(user_assignment, graph.num_users, "user")
    item_assignment = _validated(item_assignment, graph.num_items, "item")
    n_user_clusters = int(user_assignment.max()) + 1
    n_item_clusters = int(item_assignment.max()) + 1

    with span(
        "coarsen",
        num_users=graph.num_users,
        num_items=graph.num_items,
        num_edges=graph.num_edges,
    ) as cspan:
        user_feats = _cluster_means(user_embeddings, user_assignment, n_user_clusters)
        item_feats = _cluster_means(item_embeddings, item_assignment, n_item_clusters)

        # Aggregate edge weights per (user-cluster, item-cluster) pair (Eq. 6).
        edges = graph.edges
        cu = user_assignment[edges[:, 0]]
        ci = item_assignment[edges[:, 1]]
        pair_key = cu * n_item_clusters + ci
        unique_keys, inverse = np.unique(pair_key, return_inverse=True)
        summed = np.zeros(len(unique_keys))
        np.add.at(summed, inverse, graph.edge_weights)
        coarse_edges = np.column_stack(
            [unique_keys // n_item_clusters, unique_keys % n_item_clusters]
        )
        cspan.set(
            coarse_users=n_user_clusters,
            coarse_items=n_item_clusters,
            coarse_edges=len(coarse_edges),
        )
        counter_add("coarsen.edges_merged", graph.num_edges - len(coarse_edges))
        counter_add("coarsen.runs", 1)

    coarse = BipartiteGraph(
        num_users=n_user_clusters,
        num_items=n_item_clusters,
        edges=coarse_edges,
        weights=summed,
        user_features=user_feats,
        item_features=item_feats,
    )
    return CoarseningResult(
        graph=coarse,
        user_assignment=user_assignment,
        item_assignment=item_assignment,
    )


def compose_assignments(levels: list[np.ndarray]) -> np.ndarray:
    """Compose per-level assignments into base-vertex -> top-cluster.

    ``levels[0]`` maps base vertices to level-1 clusters, ``levels[1]``
    maps level-1 clusters to level-2 clusters, and so on.
    """
    if not levels:
        raise ValueError("need at least one assignment level")
    composed = levels[0]
    for nxt in levels[1:]:
        composed = nxt[composed]
    return composed


def _validated(assignment: np.ndarray, n: int, side: str) -> np.ndarray:
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape != (n,):
        raise ValueError(f"{side}_assignment must have shape ({n},)")
    if len(assignment) and assignment.min() < 0:
        raise ValueError(f"{side}_assignment contains negative cluster ids")
    return assignment


def _cluster_means(
    embeddings: np.ndarray, assignment: np.ndarray, n_clusters: int
) -> np.ndarray:
    embeddings = np.asarray(embeddings, dtype=np.float64)
    if embeddings.shape[0] != len(assignment):
        raise ValueError("embeddings and assignment lengths differ")
    dim = embeddings.shape[1]
    sums = np.zeros((n_clusters, dim))
    np.add.at(sums, assignment, embeddings)
    counts = np.bincount(assignment, minlength=n_clusters).astype(np.float64)
    empty = counts == 0
    counts[empty] = 1.0  # leave empty clusters at the zero vector
    return sums / counts[:, None]
