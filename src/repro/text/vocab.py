"""Vocabulary: token <-> id mapping with frequency-based pruning."""

from __future__ import annotations

from collections import Counter
from typing import Iterable

__all__ = ["Vocabulary"]


class Vocabulary:
    """Immutable token index built from a corpus.

    Tokens below ``min_count`` are dropped; lookups of unknown tokens
    return ``None`` from :meth:`get` or raise from :meth:`__getitem__`.
    Ids are assigned by descending frequency (ties broken
    lexicographically) so id 0 is always the most frequent token —
    convenient for frequency-aware downstream code.
    """

    def __init__(self, documents: Iterable[list[str]], min_count: int = 1) -> None:
        if min_count < 1:
            raise ValueError("min_count must be >= 1")
        counts: Counter[str] = Counter()
        for doc in documents:
            counts.update(doc)
        kept = [(tok, c) for tok, c in counts.items() if c >= min_count]
        kept.sort(key=lambda pair: (-pair[1], pair[0]))
        self._tokens = [tok for tok, _ in kept]
        self._index = {tok: i for i, tok in enumerate(self._tokens)}
        self._counts = {tok: c for tok, c in kept}

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._index

    def __getitem__(self, token: str) -> int:
        return self._index[token]

    def get(self, token: str) -> int | None:
        return self._index.get(token)

    def token(self, index: int) -> str:
        return self._tokens[index]

    def count(self, token: str) -> int:
        return self._counts.get(token, 0)

    @property
    def tokens(self) -> list[str]:
        return list(self._tokens)

    def encode(self, doc: list[str]) -> list[int]:
        """Token ids of ``doc``, silently dropping out-of-vocabulary tokens."""
        return [self._index[t] for t in doc if t in self._index]

    def decode(self, ids: list[int]) -> list[str]:
        return [self._tokens[i] for i in ids]
