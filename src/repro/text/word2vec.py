"""Skip-gram word2vec with negative sampling (Mikolov et al., 2013).

The taxonomy variant of HiGNN (Section V-B) embeds query and item-title
tokens "into the same latent space" with word2vec before the GNN stage.
This is a compact numpy implementation of skip-gram negative sampling
(SGNS) with the standard deg^0.75 noise distribution, sufficient for the
mini-corpus scale of the reproduction.
"""

from __future__ import annotations

import numpy as np

from repro.text.vocab import Vocabulary
from repro.utils.rng import ensure_rng

__all__ = ["Word2Vec", "embed_documents"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class Word2Vec:
    """Skip-gram negative-sampling embeddings.

    Parameters
    ----------
    vocab:
        The :class:`Vocabulary` the model embeds.
    dim:
        Embedding dimensionality (the paper uses 32 throughout).
    window:
        Max distance between centre and context tokens.
    negatives:
        Noise samples per positive pair.
    """

    def __init__(
        self,
        vocab: Vocabulary,
        dim: int = 32,
        window: int = 3,
        negatives: int = 5,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        if window < 1:
            raise ValueError("window must be >= 1")
        if negatives < 1:
            raise ValueError("negatives must be >= 1")
        self.vocab = vocab
        self.dim = dim
        self.window = window
        self.negatives = negatives
        self.rng = ensure_rng(rng)
        n = len(vocab)
        if n == 0:
            raise ValueError("vocabulary is empty")
        self.in_vectors = (self.rng.random((n, dim)) - 0.5) / dim
        self.out_vectors = np.zeros((n, dim))
        freqs = np.array([vocab.count(vocab.token(i)) for i in range(n)], dtype=float)
        noise = freqs**0.75
        self._noise_probs = noise / noise.sum()

    def train(
        self,
        documents: list[list[str]],
        epochs: int = 3,
        lr: float = 0.025,
        min_lr: float = 0.005,
        subsample: float = 1e-3,
    ) -> float:
        """Train on tokenised documents; returns the final mean pair loss.

        ``subsample`` applies word2vec's frequency subsampling: token t
        is kept with probability min(1, sqrt(subsample / f(t))) where
        f(t) is its corpus frequency — without it, ubiquitous filler
        words dominate every document vector.
        """
        encoded = [self.vocab.encode(doc) for doc in documents]
        if subsample and subsample > 0:
            total = sum(self.vocab.count(t) for t in self.vocab.tokens) or 1
            keep_prob = np.ones(len(self.vocab))
            for idx in range(len(self.vocab)):
                freq = self.vocab.count(self.vocab.token(idx)) / total
                if freq > subsample:
                    keep_prob[idx] = np.sqrt(subsample / freq)
            encoded = [
                [t for t in doc if self.rng.random() < keep_prob[t]]
                for doc in encoded
            ]
        encoded = [doc for doc in encoded if len(doc) >= 2]
        if not encoded:
            raise ValueError("no trainable documents after vocabulary filtering")
        total_steps = max(1, epochs * sum(len(d) for d in encoded))
        step = 0
        last_loss = 0.0
        for _ in range(epochs):
            order = self.rng.permutation(len(encoded))
            for doc_idx in order:
                doc = encoded[doc_idx]
                for pos, center in enumerate(doc):
                    cur_lr = max(min_lr, lr * (1.0 - step / total_steps))
                    step += 1
                    span = self.rng.integers(1, self.window + 1)
                    lo = max(0, pos - span)
                    hi = min(len(doc), pos + span + 1)
                    for ctx_pos in range(lo, hi):
                        if ctx_pos == pos:
                            continue
                        last_loss = self._update_pair(center, doc[ctx_pos], cur_lr)
        return last_loss

    def _update_pair(self, center: int, context: int, lr: float) -> float:
        negatives = self.rng.choice(
            len(self._noise_probs), size=self.negatives, p=self._noise_probs
        )
        targets = np.concatenate([[context], negatives])
        labels = np.zeros(len(targets))
        labels[0] = 1.0
        v_in = self.in_vectors[center]
        v_out = self.out_vectors[targets]
        scores = _sigmoid(v_out @ v_in)
        errors = scores - labels
        grad_in = errors @ v_out
        self.out_vectors[targets] -= lr * np.outer(errors, v_in)
        self.in_vectors[center] -= lr * grad_in
        eps = 1e-10
        return float(
            -np.log(scores[0] + eps) - np.sum(np.log(1.0 - scores[1:] + eps))
        )

    def vector(self, token: str) -> np.ndarray:
        """Embedding of ``token``; raises ``KeyError`` if unknown."""
        return self.in_vectors[self.vocab[token]]

    def document_vector(self, doc: list[str]) -> np.ndarray:
        """Mean of in-vectors over in-vocabulary tokens (zeros if none)."""
        ids = self.vocab.encode(doc)
        if not ids:
            return np.zeros(self.dim)
        return self.in_vectors[ids].mean(axis=0)

    def most_similar(self, token: str, topn: int = 5) -> list[tuple[str, float]]:
        """Nearest tokens by cosine similarity."""
        query = self.vector(token)
        norms = np.linalg.norm(self.in_vectors, axis=1) * (np.linalg.norm(query) + 1e-12)
        sims = self.in_vectors @ query / np.maximum(norms, 1e-12)
        order = np.argsort(sims)[::-1]
        results = []
        for idx in order:
            name = self.vocab.token(int(idx))
            if name == token:
                continue
            results.append((name, float(sims[idx])))
            if len(results) == topn:
                break
        return results


def embed_documents(
    documents: list[list[str]],
    dim: int = 32,
    epochs: int = 3,
    window: int = 3,
    min_count: int = 1,
    rng: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, Word2Vec]:
    """Train SGNS on ``documents`` and return per-document mean vectors."""
    vocab = Vocabulary(documents, min_count=min_count)
    model = Word2Vec(vocab, dim=dim, window=window, rng=rng)
    model.train(documents, epochs=epochs)
    matrix = np.stack([model.document_vector(doc) for doc in documents])
    return matrix, model
