"""Text substrate: tokenisation, vocabulary, word2vec (SGNS), BM25."""

from repro.text.tokenize import tokenize
from repro.text.vocab import Vocabulary
from repro.text.word2vec import Word2Vec, embed_documents
from repro.text.bm25 import BM25

__all__ = ["tokenize", "Vocabulary", "Word2Vec", "embed_documents", "BM25"]
