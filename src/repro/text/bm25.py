"""Okapi BM25 relevance scoring.

Used by the topic-description matcher (Eq. 16): ``rel(q, D_k)`` is the
BM25 relevance of query ``q`` against the concatenated titles of all
items in topic ``t_k``.
"""

from __future__ import annotations

import math
from collections import Counter

__all__ = ["BM25"]


class BM25:
    """Okapi BM25 over a fixed list of tokenised documents.

    Parameters follow the classic defaults k1=1.5, b=0.75.  IDF uses the
    standard +1 smoothing so scores stay non-negative.
    """

    def __init__(self, documents: list[list[str]], k1: float = 1.5, b: float = 0.75):
        if not documents:
            raise ValueError("BM25 requires at least one document")
        if k1 < 0 or not 0 <= b <= 1:
            raise ValueError("require k1 >= 0 and 0 <= b <= 1")
        self.k1 = k1
        self.b = b
        self._doc_freqs = [Counter(doc) for doc in documents]
        self._doc_lens = [len(doc) for doc in documents]
        self._avg_len = sum(self._doc_lens) / len(documents) or 1.0
        df: Counter[str] = Counter()
        for freqs in self._doc_freqs:
            df.update(freqs.keys())
        n = len(documents)
        self._idf = {
            term: math.log(1.0 + (n - count + 0.5) / (count + 0.5))
            for term, count in df.items()
        }

    @property
    def num_documents(self) -> int:
        return len(self._doc_freqs)

    def score(self, query: list[str], doc_index: int) -> float:
        """BM25 score of ``query`` against document ``doc_index``."""
        freqs = self._doc_freqs[doc_index]
        length = self._doc_lens[doc_index]
        norm = self.k1 * (1.0 - self.b + self.b * length / self._avg_len)
        total = 0.0
        for term in query:
            tf = freqs.get(term, 0)
            if tf == 0:
                continue
            idf = self._idf.get(term, 0.0)
            total += idf * tf * (self.k1 + 1.0) / (tf + norm)
        return total

    def scores(self, query: list[str]) -> list[float]:
        """Score ``query`` against every document."""
        return [self.score(query, i) for i in range(self.num_documents)]

    def top_documents(self, query: list[str], topn: int = 5) -> list[tuple[int, float]]:
        """Indices and scores of the ``topn`` best-matching documents."""
        ranked = sorted(enumerate(self.scores(query)), key=lambda p: -p[1])
        return ranked[:topn]
