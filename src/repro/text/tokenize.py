"""Whitespace/punctuation tokenisation for query and item-title text."""

from __future__ import annotations

import re

__all__ = ["tokenize"]

_TOKEN_RE = re.compile(r"[a-z0-9_]+(?:'[a-z]+)?")


def tokenize(text: str) -> list[str]:
    """Lowercase and split on non-word characters.

    Underscores stay inside tokens (SKU-style identifiers like
    ``shoe_42`` are single terms in e-commerce corpora).

    >>> tokenize("Beach-Dress, SPF 50 sunblock!")
    ['beach', 'dress', 'spf', '50', 'sunblock']
    >>> tokenize("shoe_42 SHOE_42")
    ['shoe_42', 'shoe_42']
    """
    return _TOKEN_RE.findall(text.lower())
