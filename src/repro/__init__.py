"""HiGNN — Hierarchical Bipartite Graph Neural Networks (ICDE 2020).

A full, self-contained reproduction of "Hierarchical Bipartite Graph
Neural Networks: Towards Large-Scale E-commerce Applications" on a
from-scratch numpy substrate.  See DESIGN.md for the system inventory
and EXPERIMENTS.md for the per-table/figure reproduction index.

Public API highlights::

    from repro import (
        BipartiteGraph, HiGNN, HiGNNConfig,
        load_dataset, load_query_dataset,
        run_table3, fit_query_item_hignn, build_taxonomy,
    )
"""

from repro.graph import BipartiteGraph
from repro.core import BipartiteGraphSAGE, HiGNN, HierarchicalEmbeddings
from repro.utils.config import HiGNNConfig, KMeansConfig, SageConfig, TrainConfig
from repro.data import (
    EcommerceDataset,
    QueryItemDataset,
    TaobaoGenerator,
    QueryItemGenerator,
    load_dataset,
    load_query_dataset,
)
from repro.prediction import run_table3, CVRModel, DIN
from repro.taxonomy import (
    build_shoal_taxonomy,
    build_taxonomy,
    describe_taxonomy,
    evaluate_taxonomy,
    fit_query_item_hignn,
)
from repro.serving import run_ab_test

__version__ = "1.0.0"

__all__ = [
    "BipartiteGraph",
    "BipartiteGraphSAGE",
    "HiGNN",
    "HierarchicalEmbeddings",
    "HiGNNConfig",
    "KMeansConfig",
    "SageConfig",
    "TrainConfig",
    "EcommerceDataset",
    "QueryItemDataset",
    "TaobaoGenerator",
    "QueryItemGenerator",
    "load_dataset",
    "load_query_dataset",
    "run_table3",
    "CVRModel",
    "DIN",
    "build_taxonomy",
    "build_shoal_taxonomy",
    "describe_taxonomy",
    "evaluate_taxonomy",
    "fit_query_item_hignn",
    "run_ab_test",
    "__version__",
]
