"""CVR prediction shoot-out (a fast cut of the paper's Table III).

Trains DIN (graph-free baseline), GE (single level) and HiGNN (full
hierarchy) on the dense mini-Taobao dataset and prints test AUCs.

Run:  python examples/cvr_prediction.py          (~2-4 minutes)
"""

from repro import HiGNNConfig, load_dataset
from repro.prediction import CVRTrainConfig, run_table3
from repro.utils.config import TrainConfig


def main() -> None:
    dataset = load_dataset("mini-taobao1", size="small", seed=0)
    print(f"dataset: {dataset.graph}")

    config = HiGNNConfig(
        levels=3,
        train=TrainConfig(epochs=5, batch_size=512, learning_rate=3e-3),
    )
    results = run_table3(
        dataset,
        hignn_config=config,
        cvr_config=CVRTrainConfig(epochs=12),
        methods=("din", "ge", "hignn"),
        seed=0,
    )

    print(f"\n{'method':<8} {'AUC':>8} {'seconds':>9}")
    for name in ("din", "ge", "hignn"):
        r = results[name]
        print(f"{name:<8} {r.auc:>8.4f} {r.seconds:>9.1f}")
    print(
        "\nExpected shape (paper Table III): the graph methods (ge, hignn) "
        "clearly ahead of the graph-free din, with hignn at or near the top "
        "(its margin over ge is small on the dense dataset — 0.007 in the "
        "paper — and grows on the sparse cold-start dataset; see "
        "benchmarks/test_table3_auc_comparison.py for the seed-averaged run)."
    )


if __name__ == "__main__":
    main()
