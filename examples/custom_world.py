"""Building custom synthetic worlds and inspecting their ground truth.

The generators expose the knobs the paper's analyses vary — sparsity,
hierarchy depth, cold-start share, behavioural noise — so you can stress
HiGNN in regimes the original Taobao traces covered.

Run:  python examples/custom_world.py
"""

import numpy as np

from repro.data import TaobaoGenerator, WorldConfig, QueryItemGenerator, QueryWorldConfig
from repro.data.schema import dataset_statistics


def main() -> None:
    # A deep 4-level hierarchy with aggressive cold-start churn.
    world = WorldConfig(
        num_users=400,
        num_items=300,
        branching=(3, 3, 2),  # 18 leaf topics under a 3-level tree
        interactions_per_user=20.0,
        new_item_fraction=0.5,
        exploration=0.3,
        feature_noise=1.2,
    )
    generator = TaobaoGenerator(world, seed=42)
    dense = generator.build_dataset("deep-world")
    cold = generator.build_cold_start_dataset("deep-world-cold")

    print("--- dataset statistics (Table I format) ---")
    for ds in (dense, cold):
        stats = dataset_statistics(ds)
        print(
            f"{ds.name:<16} users={stats['users']:>5} items={stats['items']:>5} "
            f"clicks={stats['clicks']:>8.0f} density={stats['density']:.3e}"
        )

    truth = generator.truth
    print(f"\ntopic tree: {truth.tree.n_nodes} nodes, {truth.tree.n_leaves} leaves")
    user = 0
    home = truth.tree.leaves[truth.user_home_leaf_index[user]]
    print(f"user {user} home topic: {truth.tree.names[home]!r}")
    top3 = np.argsort(-truth.user_affinity[user])[:3]
    for leaf_idx in top3:
        leaf = truth.tree.leaves[leaf_idx]
        print(
            f"  affinity {truth.user_affinity[user, leaf_idx]:.3f} -> "
            f"{truth.tree.names[leaf]!r}"
        )

    # The oracle the simulated A/B tests use (models never see it).
    item = int(np.flatnonzero(truth.item_leaf == home)[0])
    print(f"\noracle click prob (user {user}, home item {item}): "
          f"{truth.click_probability(user, item):.3f}")
    print(f"oracle purchase prob: {truth.purchase_probability(user, item):.3f}")

    # Query-item worlds share the same tree type; reuse the tree to keep
    # taxonomy experiments aligned with a prediction world.
    q_world = QueryWorldConfig(num_queries=150, num_items=200, branching=(3, 3, 2))
    q_dataset = QueryItemGenerator(q_world, seed=42, tree=truth.tree).build_dataset()
    print(f"\nquery-item graph on the same tree: {q_dataset.graph}")
    print(f"sample query text: {' '.join(q_dataset.query_texts[0])!r}")
    print(f"sample item title: {' '.join(q_dataset.item_titles[0])!r}")


if __name__ == "__main__":
    main()
