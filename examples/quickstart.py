"""Quickstart: fit HiGNN on a synthetic Taobao-like world in ~30 seconds.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import HiGNN, HiGNNConfig, load_dataset
from repro.utils.config import SageConfig, TrainConfig


def main() -> None:
    # 1. A laptop-sized analogue of the paper's Taobao #1 dataset: a
    #    click-weighted user-item bipartite graph plus CVR labels.
    dataset = load_dataset("mini-taobao1", size="tiny", seed=7)
    print(f"dataset: {dataset.graph}")
    print(
        f"train samples: {len(dataset.train)} "
        f"({dataset.train.num_positive} purchases)"
    )

    # 2. Fit the hierarchy: bipartite GraphSAGE + K-means, stacked twice.
    config = HiGNNConfig(
        levels=2,
        sage=SageConfig(embedding_dim=16),
        train=TrainConfig(epochs=5, batch_size=256),
    )
    hierarchy = HiGNN(config, seed=0).fit(dataset.graph)

    # 3. Hierarchical embeddings: one row per base user/item, one block
    #    of 16 dims per level (Section IV-A's z^H).
    z_users = hierarchy.hierarchical_user_embeddings()
    z_items = hierarchy.hierarchical_item_embeddings()
    print(f"hierarchical user embeddings: {z_users.shape}")
    print(f"hierarchical item embeddings: {z_items.shape}")

    # 4. Inspect the discovered structure: which users share user 0's
    #    top-level community?
    top = hierarchy.num_levels
    membership = hierarchy.user_membership(top)
    community = np.flatnonzero(membership == membership[0])
    print(f"user 0 shares its level-{top} community with {len(community) - 1} users")

    # 5. The coarsened graphs shrink level by level (Algorithm 1).
    for record in hierarchy.levels:
        print(
            f"level {record.level}: {record.graph.num_users}x{record.graph.num_items}"
            f" -> {record.coarse_graph.num_users}x{record.coarse_graph.num_items}"
        )


if __name__ == "__main__":
    main()
