"""Simulated online A/B test on cold-start items (the paper's Table IV).

The paper deploys HiGNN for new-arrival recommendations and reports UV,
CNT, CTR and CVR lifts over two testing days.  Here the control arm is
the DIN-style popularity x stats ranker and the treatment arm ranks by a
CVR model over HiGNN's hierarchical embeddings; both serve slates of
new-arrival items to the same simulated population.

Run:  python examples/cold_start_ab.py           (~1-2 minutes)
"""

import numpy as np

from repro import HiGNN, HiGNNConfig, load_dataset
from repro.prediction import FeatureAssembler, train_cvr_model
from repro.prediction.experiment import method_representations
from repro.serving import (
    PopularityRecommender,
    ScoreTableRecommender,
    cvr_score_table,
    run_ab_test,
)
from repro.utils.config import TrainConfig


def main() -> None:
    dataset = load_dataset("mini-taobao1", size="tiny", seed=3)
    truth = dataset.ground_truth
    new_items = np.flatnonzero(truth.new_items)
    print(f"{len(new_items)} new-arrival items in the candidate pool")

    # Treatment: CVR model over HiGNN hierarchical embeddings.
    hierarchy = HiGNN(
        HiGNNConfig(levels=2, train=TrainConfig(epochs=5, batch_size=256)),
        seed=0,
    ).fit(dataset.graph)
    user_repr, item_repr, interactions = method_representations(hierarchy, "hignn")
    assembler = FeatureAssembler.for_dataset(
        dataset, user_repr, item_repr, interactions=interactions
    )
    features, labels = assembler.assemble_samples(dataset.train)
    model, _ = train_cvr_model(features, labels, rng=0)
    scores = cvr_score_table(model, assembler, dataset.num_users, new_items)
    treatment = ScoreTableRecommender(scores, new_items)

    # Control: popularity ranking (what a cold-start system falls back to).
    clicks = np.zeros(dataset.num_items)
    np.add.at(clicks, dataset.log.items, dataset.log.clicks.astype(float))
    control = PopularityRecommender(clicks, new_items)

    report = run_ab_test(
        truth,
        control,
        treatment,
        num_days=2,
        visitors_per_day=2000,
        slate_size=10,
        candidate_items=new_items,
        rng=0,
    )
    print("\n--- A/B results (control -> treatment) ---")
    print(report.render())
    print(
        f"\nmean lifts: CTR {report.mean_lift('CTR') * 100:+.2f}%  "
        f"CVR {report.mean_lift('CVR') * 100:+.2f}%"
    )


if __name__ == "__main__":
    main()
