"""Personalized browsing navigation over a topic-driven taxonomy.

The paper motivates the unsupervised pipeline with "browsing navigation
that enhances user search experiences" (Section I).  This example builds
a taxonomy from a query-item world, then routes free-text queries into
it: landing topic, breadcrumb path, sibling topics to explore, and the
items the user would see.

Run:  python examples/browsing_navigation.py      (~1 minute)
"""

from repro import load_query_dataset
from repro.taxonomy import (
    TaxonomyNavigator,
    TaxonomyPipelineConfig,
    build_taxonomy,
    describe_taxonomy,
    fit_query_item_hignn,
)


def main() -> None:
    dataset = load_query_dataset(size="tiny", seed=0)
    config = TaxonomyPipelineConfig(
        levels=2, embedding_dim=8, sage_epochs=10, word2vec_epochs=2
    )
    hierarchy, _ = fit_query_item_hignn(dataset, config, rng=0)
    taxonomy = build_taxonomy(hierarchy, dataset)
    describe_taxonomy(taxonomy, dataset)

    navigator = TaxonomyNavigator(taxonomy, dataset)

    # Route three real queries from the corpus (as a user would type them).
    for query_id in (0, 10, 20):
        query = " ".join(dataset.query_texts[query_id])
        result = navigator.route(query)[0]
        crumbs = " > ".join(navigator.breadcrumbs(query))
        print(f"query: {query!r}")
        print(f"  landing topic: {result.topic_id} (score {result.score:.2f})")
        print(f"  breadcrumbs:   {crumbs}")
        print(f"  items shown:   {result.items[:6].tolist()}")
        siblings = [
            taxonomy.topics[s].description or s for s in result.siblings[:3]
        ]
        print(f"  explore also:  {siblings}")
        print()


if __name__ == "__main__":
    main()
