"""Topic-driven taxonomy construction (the paper's Section V / Fig. 5).

Builds a 3-level taxonomy from a synthetic query-item click graph with
word2vec text features and the shared-space HiGNN, assigns each topic a
query description (Eqs. 14-16), renders the tree, and compares quality
against the SHOAL baseline.

Run:  python examples/taxonomy_construction.py   (~1-2 minutes)
"""

from repro import load_query_dataset
from repro.taxonomy import (
    TaxonomyPipelineConfig,
    build_shoal_taxonomy,
    build_taxonomy,
    describe_taxonomy,
    evaluate_taxonomy,
    fit_query_item_hignn,
)


def main() -> None:
    dataset = load_query_dataset(size="small", seed=0)
    print(f"query-item graph: {dataset.graph}")

    config = TaxonomyPipelineConfig(levels=3, embedding_dim=16)
    hierarchy, _ = fit_query_item_hignn(dataset, config, rng=0)
    taxonomy = build_taxonomy(hierarchy, dataset)
    describe_taxonomy(taxonomy, dataset)

    print("\n--- discovered taxonomy (top of the tree) ---")
    print(taxonomy.render(max_children=4, max_depth=3))

    counts = [len(taxonomy.at_level(l)) for l in range(1, taxonomy.num_levels + 1)]
    shoal = build_shoal_taxonomy(dataset, counts)

    print("\n--- quality (Table VII protocol) ---")
    for name, tax in (("HiGNN", taxonomy), ("SHOAL", shoal)):
        scores = evaluate_taxonomy(tax, dataset)
        print(
            f"{name:<6} levels={int(scores['levels'])} "
            f"accuracy={scores['accuracy']:.3f} diversity={scores['diversity']:.3f}"
        )


if __name__ == "__main__":
    main()
