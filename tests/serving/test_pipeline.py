"""Serving glue: score tables from trained CVR models."""

import numpy as np
import pytest

from repro.prediction import CVRTrainConfig, FeatureAssembler, train_cvr_model
from repro.serving.pipeline import cvr_score_table


@pytest.fixture(scope="module")
def trained(tiny_dataset_session):
    dataset = tiny_dataset_session
    assembler = FeatureAssembler.for_dataset(dataset)
    x, y = assembler.assemble_samples(dataset.train)
    model, _ = train_cvr_model(x, y, CVRTrainConfig(hidden=(8,), epochs=2), rng=0)
    return dataset, assembler, model


@pytest.fixture(scope="module")
def tiny_dataset_session():
    from repro.data import load_dataset

    return load_dataset("mini-taobao1", size="tiny", seed=0)


class TestScoreTable:
    def test_shape_and_range(self, trained):
        dataset, assembler, model = trained
        candidates = np.array([0, 3, 5])
        table = cvr_score_table(model, assembler, dataset.num_users, candidates)
        assert table.shape == (dataset.num_users, 3)
        assert np.all((table >= 0) & (table <= 1))

    def test_matches_direct_prediction(self, trained):
        dataset, assembler, model = trained
        candidates = np.array([1, 2])
        table = cvr_score_table(model, assembler, dataset.num_users, candidates)
        user = 7
        direct = model.predict_proba(
            assembler.assemble(np.array([user, user]), candidates)
        )
        assert np.allclose(table[user], direct)

    def test_batching_invariant(self, trained):
        dataset, assembler, model = trained
        candidates = np.arange(4)
        a = cvr_score_table(model, assembler, dataset.num_users, candidates, batch_users=3)
        b = cvr_score_table(model, assembler, dataset.num_users, candidates, batch_users=64)
        assert np.allclose(a, b)
