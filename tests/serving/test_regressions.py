"""Seeded regression tests for the serving-layer bug squash.

Covers the three fixed defects: the unbounded ``ScoreTableRecommender``
top-k cache (now a bounded LRU), the ``TaxonomyRecommender`` back-fill
(previously an O(num_candidates) scan that skipped back-fill entirely
when no candidate set was given), and the per-impression scalar draw
loop in ``OnlineEnvironment.run_day`` (now vectorised per slate against
array-valued ground-truth oracles).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_dataset
from repro.serving.environment import OnlineEnvironment, Recommender
from repro.serving.recommend import (
    ScoreTableRecommender,
    TaxonomyRecommender,
    stable_topk,
)
from repro.taxonomy.builder import Taxonomy, Topic


@pytest.fixture(scope="module")
def truth():
    return load_dataset("mini-taobao1", size="tiny", seed=0).ground_truth


class TestScoreTableCacheBound:
    def test_cache_never_exceeds_bound(self):
        rng = np.random.default_rng(0)
        scores = rng.random((500, 20))
        rec = ScoreTableRecommender(scores, np.arange(20), cache_size=32)
        for user in range(500):
            rec.recommend(user, 5)
        assert len(rec._topk_cache) <= 32
        assert rec._topk_cache.evictions == 500 - 32

    def test_eviction_preserves_correctness(self):
        rng = np.random.default_rng(1)
        scores = rng.random((100, 15))
        bounded = ScoreTableRecommender(scores, np.arange(15), cache_size=4)
        unbounded = ScoreTableRecommender(scores, np.arange(15), cache_size=1000)
        order = rng.integers(0, 100, size=400)  # revisits evicted users
        for user in order:
            assert np.array_equal(
                bounded.recommend(int(user), 6), unbounded.recommend(int(user), 6)
            )

    def test_repeat_users_hit_the_cache(self):
        scores = np.random.default_rng(2).random((10, 8))
        rec = ScoreTableRecommender(scores, np.arange(8))
        rec.recommend(3, 4)
        rec.recommend(3, 4)
        assert rec._topk_cache.hits == 1

    def test_cache_size_zero_disables(self):
        scores = np.random.default_rng(3).random((5, 8))
        rec = ScoreTableRecommender(scores, np.arange(8), cache_size=0)
        first = rec.recommend(0, 3)
        second = rec.recommend(0, 3)
        assert np.array_equal(first, second)
        assert len(rec._topk_cache) == 0


class TestStableTopk:
    @pytest.mark.parametrize("k", [1, 3, 7, 12])
    def test_matches_stable_argsort(self, k):
        rng = np.random.default_rng(4)
        for _ in range(20):
            # Quantised scores force ties, the case partitioning can break.
            row = np.round(rng.random(12), 1)
            expected = np.argsort(-row, kind="mergesort")[:k]
            assert stable_topk(row, k).tolist() == expected.tolist()

    def test_k_at_least_n_returns_full_ranking(self):
        row = np.array([0.3, 0.9, 0.3, 0.1])
        assert stable_topk(row, 10).tolist() == [1, 0, 2, 3]


class TestTaxonomyBackfill:
    def _one_topic_taxonomy(self):
        taxonomy = Taxonomy(num_levels=1)
        taxonomy.topics["L1C0"] = Topic(
            "L1C0", 1, 0, np.array([0]), np.array([], dtype=int)
        )
        return taxonomy

    def test_backfill_without_candidate_set(self):
        # The original implementation skipped back-fill entirely when
        # candidate_set was None: short-history users got short slates.
        clicks = np.array([1.0, 5.0, 9.0, 2.0])
        rec = TaxonomyRecommender(self._one_topic_taxonomy(), {0: ["L1C0"]}, clicks, rng=0)
        slate = rec.recommend(0, 4)
        assert len(slate) == 4
        assert slate[0] == 0  # topic item first
        assert slate.tolist()[1:] == [2, 1, 3]  # then global popularity

    def test_backfill_ranked_once_not_rescanned(self):
        clicks = np.arange(50, dtype=float)
        rec = TaxonomyRecommender(
            self._one_topic_taxonomy(), {}, clicks, candidate_items=np.arange(50), rng=0
        )
        # Ranked pool is precomputed at construction, most-popular first.
        assert rec._ranked_candidates[0] == 49
        slate = rec.recommend(7, 3)
        assert slate.tolist() == [49, 48, 47]

    def test_backfill_respects_candidate_set(self):
        clicks = np.array([1.0, 5.0, 9.0, 2.0])
        rec = TaxonomyRecommender(
            self._one_topic_taxonomy(),
            {0: ["L1C0"]},
            clicks,
            candidate_items=np.array([0, 1, 3]),
            rng=0,
        )
        slate = rec.recommend(0, 4)
        assert 2 not in slate  # not a candidate, despite top popularity
        assert len(slate) == 3  # pool exhausted


class _FixedRecommender(Recommender):
    def __init__(self, num_items, slate_size, seed):
        rng = np.random.default_rng(seed)
        self._slates = {}
        self._num_items = num_items
        self._slate_size = slate_size
        self._rng = rng

    def recommend(self, user, k):
        key = (user, k)
        if key not in self._slates:
            self._slates[key] = self._rng.choice(
                self._num_items, size=k, replace=False
            )
        return self._slates[key]


class TestRunDayVectorisation:
    def test_vector_oracles_match_scalar(self, truth):
        rng = np.random.default_rng(5)
        for user in rng.integers(0, len(truth.user_affinity), size=8):
            items = rng.choice(len(truth.item_leaf), size=12, replace=False)
            clicks = truth.click_probabilities(int(user), items)
            buys = truth.purchase_probabilities(int(user), items)
            for pos, item in enumerate(items):
                assert clicks[pos] == truth.click_probability(int(user), int(item))
                assert buys[pos] == truth.purchase_probability(int(user), int(item))

    def test_seeded_run_day_deterministic(self, truth):
        visitors = np.arange(40)
        rec = _FixedRecommender(len(truth.item_leaf), 5, seed=0)
        a = OnlineEnvironment(truth, rng=7).run_day(rec, visitors, 5)
        b = OnlineEnvironment(truth, rng=7).run_day(rec, visitors, 5)
        assert a == b

    def test_distributionally_matches_reference_loop(self, truth):
        # The vectorised stream consumes uniforms in a different order
        # than the scalar reference, so single runs differ — but the
        # metrics must agree in distribution.  Compare means across
        # seeds with a generous band.
        visitors = np.arange(80)
        num_items = len(truth.item_leaf)
        vec_ctr, loop_ctr = [], []
        for seed in range(12):
            rec = _FixedRecommender(num_items, 5, seed=seed)
            vec = OnlineEnvironment(truth, rng=seed).run_day(rec, visitors, 5)
            loop = OnlineEnvironment(truth, rng=seed)._run_day_loop(
                rec, visitors, 5
            )
            assert vec.impressions == loop.impressions
            vec_ctr.append(vec.ctr)
            loop_ctr.append(loop.ctr)
        assert np.mean(vec_ctr) == pytest.approx(np.mean(loop_ctr), abs=0.02)

    def test_empty_slate_skipped(self, truth):
        class EmptyRecommender(Recommender):
            def recommend(self, user, k):
                return np.empty(0, dtype=np.int64)

        metrics = OnlineEnvironment(truth, rng=0).run_day(
            EmptyRecommender(), np.arange(10), 5
        )
        assert metrics.impressions == 0
        assert metrics.clicks == 0
