"""Simulated serving environment, recommenders, and A/B harness."""

import numpy as np
import pytest

from repro.serving.abtest import ABDayResult, run_ab_test
from repro.serving.environment import OnlineEnvironment, Recommender, ServingMetrics
from repro.serving.pipeline import (
    build_taxonomy_ab_world,
    sample_user_histories,
    user_topics_from_history,
)
from repro.serving.recommend import (
    PopularityRecommender,
    ScoreTableRecommender,
    TaxonomyRecommender,
)
from repro.taxonomy.builder import Taxonomy, Topic


class _OracleRecommender(Recommender):
    """Cheating arm: ranks by true click probability (upper bound)."""

    def __init__(self, truth, candidates):
        self.truth = truth
        self.candidates = candidates

    def recommend(self, user, k):
        scores = np.array(
            [self.truth.click_probability(user, int(i)) for i in self.candidates]
        )
        return self.candidates[np.argsort(-scores)[:k]]


class _RandomRecommender(Recommender):
    def __init__(self, candidates, rng):
        self.candidates = candidates
        self.rng = rng

    def recommend(self, user, k):
        return self.rng.choice(self.candidates, size=min(k, len(self.candidates)), replace=False)


@pytest.fixture(scope="module")
def world(tiny_dataset_module):
    return tiny_dataset_module.ground_truth


@pytest.fixture(scope="module")
def tiny_dataset_module():
    from repro.data import load_dataset

    return load_dataset("mini-taobao1", size="tiny", seed=0)


class TestServingMetrics:
    def test_derived_ratios(self):
        m = ServingMetrics(
            visitors=100, impressions=1000, clicks=250, transactions=50,
            unique_click_visitors=80,
        )
        assert m.ctr == 0.25
        assert m.cvr == 0.2
        assert m.uv == 80
        assert m.cnt == 50
        assert m.as_dict()["CTR"] == 0.25

    def test_zero_division_guarded(self):
        m = ServingMetrics(0, 0, 0, 0, 0)
        assert m.ctr == 0.0
        assert m.cvr == 0.0


class TestEnvironment:
    def test_oracle_beats_random(self, world):
        candidates = np.arange(len(world.item_leaf))
        env_a = OnlineEnvironment(world, candidates, rng=0)
        env_b = OnlineEnvironment(world, candidates, rng=0)
        visitors = np.arange(60)
        oracle = env_a.run_day(_OracleRecommender(world, candidates), visitors, 5)
        random_arm = env_b.run_day(
            _RandomRecommender(candidates, np.random.default_rng(0)), visitors, 5
        )
        assert oracle.ctr > random_arm.ctr

    def test_impressions_counted(self, world):
        env = OnlineEnvironment(world, rng=0)
        metrics = env.run_day(
            _RandomRecommender(np.arange(20), np.random.default_rng(1)),
            np.arange(10),
            slate_size=4,
        )
        assert metrics.impressions == 40
        assert metrics.visitors == 10

    def test_invalid_slate(self, world):
        env = OnlineEnvironment(world, rng=0)
        with pytest.raises(ValueError):
            env.run_day(_RandomRecommender(np.arange(5), np.random.default_rng(0)), np.arange(2), 0)


class TestRecommenders:
    def test_score_table_orders(self):
        scores = np.array([[0.1, 0.9, 0.5]])
        rec = ScoreTableRecommender(scores, np.array([10, 11, 12]))
        assert rec.recommend(0, 2).tolist() == [11, 12]

    def test_score_table_validates(self):
        with pytest.raises(ValueError):
            ScoreTableRecommender(np.ones(3), np.arange(3))

    def test_popularity_global_order(self):
        clicks = np.array([5.0, 50.0, 1.0])
        rec = PopularityRecommender(clicks, np.arange(3))
        assert rec.recommend(0, 3).tolist() == [1, 0, 2]
        assert rec.recommend(99, 2).tolist() == [1, 0]

    def test_taxonomy_recommender_prefers_user_topics(self):
        taxonomy = Taxonomy(num_levels=1)
        taxonomy.topics["L1C0"] = Topic("L1C0", 1, 0, np.array([0, 1]), np.array([], dtype=int))
        taxonomy.topics["L1C1"] = Topic("L1C1", 1, 1, np.array([2, 3]), np.array([], dtype=int))
        clicks = np.array([1.0, 5.0, 9.0, 2.0])
        rec = TaxonomyRecommender(
            taxonomy, {0: ["L1C0"]}, clicks, candidate_items=np.arange(4), rng=0
        )
        slate = rec.recommend(0, 2)
        assert slate.tolist() == [1, 0]  # own-topic items by popularity

    def test_taxonomy_recommender_backfills(self):
        taxonomy = Taxonomy(num_levels=1)
        taxonomy.topics["L1C0"] = Topic("L1C0", 1, 0, np.array([0]), np.array([], dtype=int))
        clicks = np.array([1.0, 5.0, 9.0])
        rec = TaxonomyRecommender(
            taxonomy, {0: ["L1C0"]}, clicks, candidate_items=np.arange(3), rng=0
        )
        slate = rec.recommend(0, 3)
        assert slate[0] == 0  # topic item first
        assert set(slate.tolist()) == {0, 1, 2}

    def test_taxonomy_recommender_unknown_user(self):
        taxonomy = Taxonomy(num_levels=1)
        taxonomy.topics["L1C0"] = Topic("L1C0", 1, 0, np.array([0]), np.array([], dtype=int))
        rec = TaxonomyRecommender(
            taxonomy, {}, np.ones(3), candidate_items=np.arange(3), rng=0
        )
        assert len(rec.recommend(7, 2)) == 2  # pure backfill


class TestABTest:
    def test_report_structure(self, world):
        candidates = np.arange(len(world.item_leaf))
        report = run_ab_test(
            world,
            _RandomRecommender(candidates, np.random.default_rng(0)),
            _OracleRecommender(world, candidates),
            num_days=2,
            visitors_per_day=200,
            slate_size=5,
            candidate_items=candidates,
            rng=0,
        )
        assert len(report.days) == 2
        text = report.render()
        assert "CTR" in text and "Day 2" in text
        assert report.mean_lift("CTR") > 0  # oracle wins

    def test_lift_math(self):
        day = ABDayResult(
            day=0,
            control=ServingMetrics(10, 100, 20, 4, 8),
            treatment=ServingMetrics(10, 100, 30, 6, 9),
        )
        assert day.lift("CTR") == pytest.approx(0.5)
        assert day.lift("CNT") == pytest.approx(0.5)
        assert "->" in day.row("UV")

    def test_zero_control_lift(self):
        day = ABDayResult(
            day=0,
            control=ServingMetrics(10, 100, 0, 0, 0),
            treatment=ServingMetrics(10, 100, 5, 1, 2),
        )
        assert day.lift("CTR") == float("inf")

    def test_invalid_days(self, world):
        with pytest.raises(ValueError):
            run_ab_test(world, None, None, num_days=0)


class TestTaxonomyABWorld:
    def test_world_dimensions(self, tiny_query_dataset_session):
        world = build_taxonomy_ab_world(tiny_query_dataset_session, num_users=50, seed=0)
        assert world.user_affinity.shape[0] == 50
        assert len(world.item_leaf) == tiny_query_dataset_session.num_items
        assert np.allclose(world.user_affinity.sum(axis=1), 1.0)

    def test_histories_respect_affinity(self, tiny_query_dataset_session):
        world = build_taxonomy_ab_world(tiny_query_dataset_session, num_users=30, seed=0)
        histories = sample_user_histories(world, items_per_user=4, seed=0)
        assert set(histories) == set(range(30))
        # History items exist.
        for items in histories.values():
            assert all(0 <= i < tiny_query_dataset_session.num_items for i in items)

    def test_user_topics_mapping(self, tiny_query_dataset_session):
        taxonomy = Taxonomy(num_levels=1)
        n = tiny_query_dataset_session.num_items
        half = n // 2
        taxonomy.topics["L1C0"] = Topic("L1C0", 1, 0, np.arange(half), np.array([], dtype=int))
        taxonomy.topics["L1C1"] = Topic("L1C1", 1, 1, np.arange(half, n), np.array([], dtype=int))
        topics = user_topics_from_history(taxonomy, {0: [0, half], 1: []})
        assert topics[0] == ["L1C0", "L1C1"]
        assert topics[1] == []


@pytest.fixture(scope="module")
def tiny_query_dataset_session():
    from repro.data import load_query_dataset

    return load_query_dataset(size="tiny", seed=0)
