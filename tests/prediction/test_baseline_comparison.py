"""Cross-baseline integration: all unsupervised learners on one graph.

On a planted-block world every representation learner in the library —
bipartite GraphSAGE (HiGNN level 1), HOP-Rec, and NGCF — must beat
random embeddings at link prediction, giving one test that the three
training pipelines and the shared evaluation stack agree end to end.
"""

import numpy as np
import pytest

from repro.core.evaluate import link_prediction_auc
from repro.core.sage import BipartiteGraphSAGE
from repro.core.trainer import SageTrainer
from repro.graph.generators import block_bipartite
from repro.prediction.hoprec import HopRec, HopRecConfig
from repro.prediction.ngcf import NGCFConfig, train_ngcf
from repro.utils.config import SageConfig, TrainConfig


@pytest.fixture(scope="module")
def world():
    return block_bipartite(
        n_blocks=3, users_per_block=12, items_per_block=10, p_in=0.5, p_out=0.02, rng=0
    )


@pytest.fixture(scope="module")
def aucs(world):
    graph, *_ = world
    results = {}

    # Shared space so user/item dot products are directly comparable —
    # the split-space variant scores edges through its trained head,
    # which a raw-dot evaluation would under-credit.
    module = BipartiteGraphSAGE(
        graph.user_features.shape[1],
        graph.item_features.shape[1],
        SageConfig(embedding_dim=8, neighbor_samples=(5, 3), shared_space=True),
        rng=0,
    )
    SageTrainer(
        module, graph, TrainConfig(epochs=15, batch_size=128, learning_rate=1e-2), rng=0
    ).fit()
    zu, zi = module.embed_all(graph)
    results["graphsage"] = link_prediction_auc(graph, zu, zi, rng=0)

    hoprec = HopRec(
        graph,
        HopRecConfig(embedding_dim=8, walks_per_user=12, epochs=6, learning_rate=0.08),
        rng=0,
    )
    hoprec.fit()
    zu, zi = hoprec.representations()
    results["hoprec"] = link_prediction_auc(graph, zu, zi, rng=0)

    ngcf, _ = train_ngcf(
        graph,
        NGCFConfig(embedding_dim=8, num_layers=2, epochs=12, batch_size=128),
        rng=0,
    )
    zu, zi = ngcf.user_item_representations()
    results["ngcf"] = link_prediction_auc(graph, zu, zi, rng=0)

    rng = np.random.default_rng(0)
    results["random"] = link_prediction_auc(
        graph,
        rng.normal(size=(graph.num_users, 8)),
        rng.normal(size=(graph.num_items, 8)),
        rng=0,
    )
    return results


@pytest.mark.parametrize("method", ["graphsage", "hoprec", "ngcf"])
def test_every_learner_beats_random(aucs, method):
    assert aucs[method] > aucs["random"] + 0.04


@pytest.mark.parametrize("method", ["graphsage", "hoprec", "ngcf"])
def test_every_learner_clearly_above_chance(aucs, method):
    assert aucs[method] > 0.58
