"""The DIN baseline: history building, attention mechanics, training."""

import numpy as np
import pytest

from repro.graph.bipartite import BipartiteGraph
from repro.prediction.cvr_model import CVRTrainConfig
from repro.prediction.din import DIN, DINConfig, build_user_histories, din_side_features, train_din


class TestHistories:
    def test_shape_and_padding(self):
        g = BipartiteGraph(3, 5, np.array([[0, 0], [0, 1], [1, 2]]))
        hist = build_user_histories(g, history_length=4)
        assert hist.shape == (3, 4)
        assert set(hist[0, :2].tolist()) == {0, 1}
        assert np.all(hist[0, 2:] == -1)
        assert np.all(hist[2] == -1)  # isolated user

    def test_truncates_by_weight(self):
        g = BipartiteGraph(
            1, 3, np.array([[0, 0], [0, 1], [0, 2]]), np.array([1.0, 9.0, 5.0])
        )
        hist = build_user_histories(g, history_length=2)
        assert hist[0].tolist() == [1, 2]  # heaviest first


class TestForward:
    def test_logit_shape(self):
        model = DIN(num_items=10, side_feature_dim=3, config=DINConfig(embedding_dim=4, history_length=5), rng=0)
        hist = np.array([[0, 1, -1, -1, -1], [2, -1, -1, -1, -1]])
        out = model(hist, np.array([3, 4]), np.zeros((2, 3)))
        assert out.shape == (2,)
        assert np.all(np.isfinite(out.data))

    def test_all_padding_history_is_finite(self):
        model = DIN(10, 3, DINConfig(embedding_dim=4, history_length=3), rng=0)
        hist = np.full((2, 3), -1)
        out = model(hist, np.array([0, 1]), np.zeros((2, 3)))
        assert np.all(np.isfinite(out.data))

    def test_attention_depends_on_candidate(self):
        model = DIN(10, 1, DINConfig(embedding_dim=8, history_length=4), rng=0)
        hist = np.array([[0, 1, 2, 3]])
        out_a = model(hist, np.array([5]), np.zeros((1, 1)))
        out_b = model(hist, np.array([6]), np.zeros((1, 1)))
        assert out_a.item() != out_b.item()

    def test_predict_proba_range(self):
        model = DIN(10, 2, DINConfig(embedding_dim=4, history_length=3), rng=0)
        hist = np.zeros((5, 3), dtype=int)
        probs = model.predict_proba(hist, np.arange(5), np.zeros((5, 2)))
        assert np.all((probs >= 0) & (probs <= 1))


class TestTraining:
    def test_loss_decreases_on_tiny_dataset(self, tiny_dataset):
        model, histories, result = train_din(
            tiny_dataset,
            DINConfig(embedding_dim=8, history_length=8, top_hidden=(16,)),
            CVRTrainConfig(epochs=4, batch_size=256),
            rng=0,
        )
        assert result.epoch_losses[-1] < result.epoch_losses[0]
        assert histories.shape == (tiny_dataset.num_users, 8)

    def test_side_features_aligned(self, tiny_dataset):
        side = din_side_features(
            tiny_dataset, np.array([0, 1]), np.array([2, 3])
        )
        expected = tiny_dataset.user_profiles.shape[1] + tiny_dataset.item_stats.shape[1]
        assert side.shape == (2, expected)


class TestConfig:
    def test_invalid(self):
        with pytest.raises(ValueError):
            DINConfig(embedding_dim=0)
        with pytest.raises(ValueError):
            DINConfig(history_length=0)
