"""Feature assembly for the CVR head."""

import numpy as np
import pytest

from repro.prediction.features import FeatureAssembler


def _assembler(**kwargs):
    rng = np.random.default_rng(0)
    return FeatureAssembler(
        user_profiles=rng.normal(size=(6, 3)),
        item_stats=rng.normal(size=(5, 2)),
        **kwargs,
    )


class TestAssembly:
    def test_base_dims(self):
        asm = _assembler()
        assert asm.feature_dim == 5
        rows = asm.assemble(np.array([0, 1]), np.array([2, 3]))
        assert rows.shape == (2, 5)

    def test_with_representations(self):
        rng = np.random.default_rng(1)
        asm = _assembler(
            user_repr=rng.normal(size=(6, 4)), item_repr=rng.normal(size=(5, 4))
        )
        assert asm.feature_dim == 13

    def test_interactions_add_columns(self):
        rng = np.random.default_rng(1)
        zu, zi = rng.normal(size=(6, 4)), rng.normal(size=(5, 4))
        asm = _assembler(interactions=[(zu, zi)])
        assert asm.feature_dim == 9
        rows = asm.assemble(np.array([0]), np.array([0]))
        assert rows.shape == (1, 9)

    def test_interaction_is_elementwise_product(self):
        zu = np.eye(4)[:4].repeat(2, axis=0)[:6] + 1.0
        zi = np.ones((5, 4)) * 2.0
        asm = FeatureAssembler(
            user_profiles=np.zeros((6, 1)),
            item_stats=np.zeros((5, 1)),
            interactions=[(zu, zi)],
            standardize=False,
        )
        rows = asm.assemble(np.array([0]), np.array([0]))
        # interactions are L2-normalised per row before the product
        left = zu[0] / np.linalg.norm(zu[0])
        right = zi[0] / np.linalg.norm(zi[0])
        assert np.allclose(rows[0, 2:], left * right)

    def test_interaction_dim_mismatch_raises(self):
        with pytest.raises(ValueError):
            _assembler(interactions=[(np.ones((6, 3)), np.ones((5, 4)))])

    def test_misaligned_ids_raise(self):
        asm = _assembler()
        with pytest.raises(ValueError):
            asm.assemble(np.array([0, 1]), np.array([0]))

    def test_standardized_columns(self):
        rng = np.random.default_rng(2)
        profiles = rng.normal(loc=100.0, scale=3.0, size=(50, 2))
        asm = FeatureAssembler(
            user_profiles=profiles, item_stats=np.zeros((5, 1)), standardize=True
        )
        table = asm._user_table
        assert np.allclose(table.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(table.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_survives_standardize(self):
        asm = FeatureAssembler(
            user_profiles=np.ones((5, 1)), item_stats=np.zeros((4, 1))
        )
        rows = asm.assemble(np.array([0]), np.array([0]))
        assert np.all(np.isfinite(rows))

    def test_assemble_samples(self):
        from repro.data.schema import LabeledSamples

        asm = _assembler()
        samples = LabeledSamples(
            users=np.array([0, 1]), items=np.array([2, 3]), labels=np.array([1, 0])
        )
        x, y = asm.assemble_samples(samples)
        assert x.shape == (2, 5)
        assert np.array_equal(y, [1.0, 0.0])
