"""Experiment harness: method registry and end-to-end smoke runs."""

import numpy as np
import pytest

from repro.core.hignn import HiGNN
from repro.prediction.experiment import (
    ALL_METHODS,
    GRAPH_METHODS,
    method_representations,
    run_din,
    run_graph_method,
    run_table3,
)
from repro.prediction.cvr_model import CVRTrainConfig
from repro.prediction.din import DINConfig
from repro.utils.config import HiGNNConfig, SageConfig, TrainConfig


FAST_HIGNN = HiGNNConfig(
    levels=2,
    sage=SageConfig(embedding_dim=8, neighbor_samples=(4, 3)),
    train=TrainConfig(epochs=2, batch_size=256),
)
FAST_CVR = CVRTrainConfig(hidden=(16,), epochs=3, batch_size=256)


@pytest.fixture(scope="module")
def hierarchy(tiny_dataset_module):
    return HiGNN(FAST_HIGNN, seed=0).fit(tiny_dataset_module.graph)


@pytest.fixture(scope="module")
def tiny_dataset_module():
    from repro.data import load_dataset

    return load_dataset("mini-taobao1", size="tiny", seed=0)


class TestRepresentations:
    def test_dims_per_method(self, hierarchy, tiny_dataset_module):
        n_users = tiny_dataset_module.num_users
        n_items = tiny_dataset_module.num_items
        d = 8
        ur, ir, inter = method_representations(hierarchy, "ge")
        assert ur.shape == (n_users, d)
        assert ir.shape == (n_items, d)
        assert len(inter) == 1

        ur, ir, inter = method_representations(hierarchy, "hignn")
        assert ur.shape == (n_users, 2 * d)
        assert ir.shape == (n_items, 2 * d)
        assert len(inter) == 2

        ur, ir, inter = method_representations(hierarchy, "cgnn")
        assert ur.shape == (n_users, 2 * d)
        assert ir is None
        assert inter == []

        ur, ir, _ = method_representations(hierarchy, "hup")
        assert ir is None
        ur, ir, _ = method_representations(hierarchy, "hia")
        assert ur is None

    def test_unknown_method(self, hierarchy):
        with pytest.raises(ValueError):
            method_representations(hierarchy, "gcn")

    def test_registry_consistency(self):
        assert set(GRAPH_METHODS) < set(ALL_METHODS)
        assert "din" in ALL_METHODS


class TestRuns:
    def test_graph_method_result(self, hierarchy, tiny_dataset_module):
        result = run_graph_method(
            "ge", tiny_dataset_module, hierarchy, FAST_CVR, seed=0
        )
        assert result.method == "ge"
        assert 0.0 <= result.auc <= 1.0
        assert result.seconds > 0
        assert result.detail["train_size"] >= len(tiny_dataset_module.train)

    def test_din_result(self, tiny_dataset_module):
        result = run_din(
            tiny_dataset_module,
            DINConfig(embedding_dim=8, history_length=6, top_hidden=(16,)),
            FAST_CVR,
            seed=0,
        )
        assert result.method == "din"
        assert 0.0 <= result.auc <= 1.0

    def test_run_table3_subset(self, tiny_dataset_module):
        results = run_table3(
            tiny_dataset_module,
            FAST_HIGNN,
            FAST_CVR,
            methods=("ge", "hignn"),
            seed=0,
        )
        assert set(results) == {"ge", "hignn"}

    def test_replicate_sampling_applied_to_dense_only(
        self, tiny_dataset_module, hierarchy
    ):
        from repro.data import load_dataset

        cold = load_dataset("mini-taobao2", size="tiny", seed=0)
        cold_hierarchy = HiGNN(FAST_HIGNN, seed=0).fit(cold.graph)
        dense_result = run_graph_method(
            "ge", tiny_dataset_module, hierarchy, FAST_CVR, seed=0
        )
        cold_result = run_graph_method("ge", cold, cold_hierarchy, FAST_CVR, seed=0)
        # Dense training set is replicate-balanced (bigger than raw);
        # cold-start keeps its raw size.
        assert dense_result.detail["train_size"] > len(tiny_dataset_module.train)
        assert cold_result.detail["train_size"] == len(cold.train)
