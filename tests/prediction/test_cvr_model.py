"""The supervised CVR head (Fig. 2, Eq. 7)."""

import numpy as np
import pytest

from repro.metrics.auc import auc
from repro.prediction.cvr_model import CVRModel, CVRTrainConfig, train_cvr_model


def _separable_problem(n=600, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 6))
    logits = 2.0 * x[:, 0] - 1.5 * x[:, 1] + 0.5 * x[:, 2] * 0
    y = (logits + rng.normal(scale=0.3, size=n) > 0).astype(float)
    return x, y


class TestTraining:
    def test_learns_separable_data(self):
        x, y = _separable_problem()
        model, result = train_cvr_model(
            x, y, CVRTrainConfig(hidden=(16,), epochs=20, batch_size=64), rng=0
        )
        assert auc(y, model.predict_proba(x)) > 0.9
        assert result.epoch_losses[-1] < result.epoch_losses[0]

    def test_learns_interaction_feature(self):
        # Labels depend on x0*x1 — an MLP must pick up the non-linearity.
        rng = np.random.default_rng(1)
        x = rng.normal(size=(800, 4))
        y = (x[:, 0] * x[:, 1] > 0).astype(float)
        model, _ = train_cvr_model(
            x, y, CVRTrainConfig(hidden=(32, 16), epochs=40, batch_size=64), rng=0
        )
        assert auc(y, model.predict_proba(x)) > 0.8

    def test_probabilities_in_range(self):
        x, y = _separable_problem(100)
        model, _ = train_cvr_model(x, y, CVRTrainConfig(epochs=1), rng=0)
        probs = model.predict_proba(x)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_empty_training_raises(self):
        with pytest.raises(ValueError):
            train_cvr_model(np.zeros((0, 3)), np.zeros(0))

    def test_misaligned_raises(self):
        with pytest.raises(ValueError):
            train_cvr_model(np.zeros((5, 3)), np.zeros(4))

    def test_deterministic(self):
        x, y = _separable_problem(150)
        cfg = CVRTrainConfig(hidden=(8,), epochs=2, batch_size=32)
        a, _ = train_cvr_model(x, y, cfg, rng=5)
        b, _ = train_cvr_model(x, y, cfg, rng=5)
        assert np.allclose(a.predict_proba(x), b.predict_proba(x))

    def test_dropout_config_runs(self):
        x, y = _separable_problem(100)
        model, _ = train_cvr_model(
            x, y, CVRTrainConfig(hidden=(8,), epochs=2, dropout=0.3), rng=0
        )
        assert np.all(np.isfinite(model.predict_proba(x)))


class TestConfig:
    def test_invalid_epochs(self):
        with pytest.raises(ValueError):
            CVRTrainConfig(epochs=0)

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            CVRTrainConfig(batch_size=0)


class TestModel:
    def test_logit_shape(self):
        from repro.nn.tensor import Tensor

        model = CVRModel(4, hidden=(8,), rng=0)
        out = model(Tensor(np.ones((3, 4))))
        assert out.shape == (3,)

    def test_predict_batching_consistent(self):
        x, y = _separable_problem(100)
        model, _ = train_cvr_model(x, y, CVRTrainConfig(epochs=1), rng=0)
        assert np.allclose(
            model.predict_proba(x, batch_size=7), model.predict_proba(x, batch_size=100)
        )
