"""The HOP-Rec random-walk MF baseline."""

import numpy as np
import pytest

from repro.graph.generators import block_bipartite
from repro.prediction.hoprec import HopRec, HopRecConfig


@pytest.fixture(scope="module")
def planted():
    return block_bipartite(
        n_blocks=3, users_per_block=10, items_per_block=8, p_in=0.5, p_out=0.02, rng=0
    )


FAST = HopRecConfig(
    embedding_dim=8, num_hops=2, hop_weights=(1.0, 0.5), walks_per_user=6, epochs=3
)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            HopRecConfig(embedding_dim=0)
        with pytest.raises(ValueError):
            HopRecConfig(num_hops=0)
        with pytest.raises(ValueError):
            HopRecConfig(num_hops=3, hop_weights=(1.0,))
        with pytest.raises(ValueError):
            HopRecConfig(epochs=0)


class TestTraining:
    def test_loss_decreases(self, planted):
        graph, *_ = planted
        model = HopRec(graph, FAST, rng=0)
        result = model.fit()
        assert result.epoch_losses[-1] < result.epoch_losses[0]

    def test_positive_pairs_outscore_random(self, planted):
        graph, *_ = planted
        model = HopRec(graph, FAST, rng=0)
        model.fit()
        pos = np.mean([model.score(int(u), int(i)) for u, i in graph.edges[:80]])
        rng = np.random.default_rng(0)
        neg = np.mean(
            [
                model.score(int(rng.integers(graph.num_users)), int(rng.integers(graph.num_items)))
                for _ in range(80)
            ]
        )
        assert pos > neg

    def test_block_structure_recovered(self, planted):
        graph, user_blocks, _ = planted
        model = HopRec(graph, FAST, rng=0)
        model.fit()
        zu, _ = model.representations()
        centroids = np.stack([zu[user_blocks == b].mean(axis=0) for b in range(3)])
        within = float(np.mean([zu[user_blocks == b].std() for b in range(3)]))
        between = float(
            np.mean(
                [
                    np.linalg.norm(centroids[i] - centroids[j])
                    for i in range(3)
                    for j in range(i + 1, 3)
                ]
            )
        )
        assert between > within * 0.5

    def test_representations_are_copies(self, planted):
        graph, *_ = planted
        model = HopRec(graph, FAST, rng=0)
        zu, zi = model.representations()
        zu[:] = 0.0
        assert not np.allclose(model.user_embeddings, 0.0)

    def test_deterministic(self, planted):
        graph, *_ = planted
        a = HopRec(graph, FAST, rng=7)
        a.fit()
        b = HopRec(graph, FAST, rng=7)
        b.fit()
        assert np.allclose(a.user_embeddings, b.user_embeddings)
