"""The NGCF dense-propagation baseline."""

import numpy as np
import pytest

from repro.graph.generators import block_bipartite
from repro.prediction.ngcf import NGCF, NGCFConfig, train_ngcf


@pytest.fixture(scope="module")
def planted():
    return block_bipartite(
        n_blocks=3, users_per_block=10, items_per_block=8, p_in=0.5, p_out=0.02, rng=0
    )


FAST = NGCFConfig(embedding_dim=8, num_layers=2, epochs=6, batch_size=128)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            NGCFConfig(embedding_dim=0)
        with pytest.raises(ValueError):
            NGCFConfig(num_layers=0)
        with pytest.raises(ValueError):
            NGCFConfig(epochs=0)

    def test_dense_guardrail(self, planted):
        graph, *_ = planted
        with pytest.raises(ValueError):
            NGCF(graph, NGCFConfig(max_dense_vertices=10), rng=0)


class TestModel:
    def test_laplacian_symmetric_normalised(self, planted):
        graph, *_ = planted
        model = NGCF(graph, FAST, rng=0)
        lap = model._laplacian
        assert np.allclose(lap, lap.T)
        # Rows of a symmetric-normalised adjacency have spectral norm <= 1;
        # check the largest eigenvalue is bounded by 1 (+ fp slack).
        eigs = np.linalg.eigvalsh(lap)
        assert eigs.max() <= 1.0 + 1e-8

    def test_representation_shapes(self, planted):
        graph, *_ = planted
        model = NGCF(graph, FAST, rng=0)
        zu, zi = model.user_item_representations()
        expected = 8 * (FAST.num_layers + 1)
        assert zu.shape == (graph.num_users, expected)
        assert zi.shape == (graph.num_items, expected)


class TestTraining:
    def test_loss_decreases(self, planted):
        graph, *_ = planted
        _, result = train_ngcf(graph, FAST, rng=0)
        assert result.epoch_losses[-1] < result.epoch_losses[0]

    def test_positive_pairs_outscore_random(self, planted):
        graph, *_ = planted
        model, _ = train_ngcf(graph, FAST, rng=0)
        zu, zi = model.user_item_representations()
        pos = np.mean([zu[u] @ zi[i] for u, i in graph.edges[:60]])
        rng = np.random.default_rng(0)
        neg = np.mean(
            [
                zu[rng.integers(graph.num_users)] @ zi[rng.integers(graph.num_items)]
                for _ in range(60)
            ]
        )
        assert pos > neg

    def test_blocks_separate(self, planted):
        graph, user_blocks, _ = planted
        model, _ = train_ngcf(graph, FAST, rng=0)
        zu, _ = model.user_item_representations()
        centroids = np.stack([zu[user_blocks == b].mean(axis=0) for b in range(3)])
        within = float(np.mean([zu[user_blocks == b].std() for b in range(3)]))
        between = float(
            np.mean(
                [
                    np.linalg.norm(centroids[i] - centroids[j])
                    for i in range(3)
                    for j in range(i + 1, 3)
                ]
            )
        )
        assert between > within * 0.5

    def test_deterministic(self, planted):
        graph, *_ = planted
        cfg = NGCFConfig(embedding_dim=4, num_layers=1, epochs=1, batch_size=64)
        a, ra = train_ngcf(graph, cfg, rng=5)
        b, rb = train_ngcf(graph, cfg, rng=5)
        assert ra.epoch_losses == rb.epoch_losses
