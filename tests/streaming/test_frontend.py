"""Serving frontend: cache semantics, micro-batching, cold start, refresh."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core.sage import BipartiteGraphSAGE
from repro.graph.generators import random_bipartite
from repro.serving.recommend import stable_topk
from repro.streaming import ServingFrontend, StreamingEmbedder
from repro.utils.config import SageConfig


def _frontend(**kwargs):
    graph = random_bipartite(60, 40, 240, feature_dim=6, rng=0)
    cfg = SageConfig(embedding_dim=8, neighbor_samples=(4, 3))
    model = BipartiteGraphSAGE(6, 6, cfg, rng=0)
    embedder = StreamingEmbedder(
        model, sample_seed=0, batch_size=16, degrade_threshold=1.0
    )
    frontend = ServingFrontend(graph, embedder, **kwargs)
    frontend.warm()
    return frontend


class TestServing:
    def test_slate_matches_inner_product_ranking(self):
        frontend = _frontend()
        slate = frontend.request(3, 5)
        z_user, z_item = frontend.embedder.embeddings
        scores = z_user[3] @ z_item.T
        expected = stable_topk(scores, 5)
        assert np.array_equal(slate, expected)

    def test_fixed_candidate_pool_restricts_slates(self):
        pool = np.array([1, 3, 5, 7, 9])
        frontend = _frontend(candidate_items=pool)
        slate = frontend.request(0, 3)
        assert set(slate) <= set(pool)

    def test_serve_preserves_request_order(self):
        frontend = _frontend(microbatch=2)
        users = np.array([5, 1, 5, 9, 1])
        slates = frontend.serve(users, 4)
        assert len(slates) == len(users)
        assert np.array_equal(slates[0], slates[2])
        assert np.array_equal(slates[1], slates[4])

    def test_microbatch_size_does_not_change_slates(self):
        reference = None
        users = np.arange(25) % 13
        for microbatch in (1, 4, 256):
            frontend = _frontend(microbatch=microbatch)
            slates = [s.tolist() for s in frontend.serve(users, 6)]
            if reference is None:
                reference = slates
            else:
                assert slates == reference

    def test_cold_frontend_raises(self):
        graph = random_bipartite(20, 15, 60, feature_dim=6, rng=0)
        cfg = SageConfig(embedding_dim=8, neighbor_samples=(4, 3))
        model = BipartiteGraphSAGE(6, 6, cfg, rng=0)
        frontend = ServingFrontend(graph, StreamingEmbedder(model))
        with pytest.raises(RuntimeError, match="warm"):
            frontend.serve(np.array([0]), 5)

    def test_argument_validation(self):
        frontend = _frontend()
        with pytest.raises(ValueError, match="k"):
            frontend.serve(np.array([0]), 0)
        with pytest.raises(ValueError, match="microbatch"):
            _frontend(microbatch=0)


class TestCache:
    def test_repeat_requests_hit(self):
        frontend = _frontend()
        frontend.request(7, 5)
        assert frontend.cache.hits == 0
        frontend.request(7, 5)
        assert frontend.cache.hits == 1
        assert frontend.hit_rate > 0

    def test_duplicates_within_one_call_hit_after_batch_flush(self):
        frontend = _frontend(microbatch=2)
        users = np.array([4, 8, 4, 8, 4])  # first batch caches 4 and 8
        frontend.serve(users, 5)
        assert frontend.cache.hits == 3

    def test_smaller_k_served_from_cached_prefix(self):
        frontend = _frontend()
        big = frontend.request(2, 8)
        small = frontend.request(2, 3)
        assert frontend.cache.hits == 1
        assert np.array_equal(small, big[:3])

    def test_larger_k_is_a_miss(self):
        frontend = _frontend()
        frontend.request(2, 3)
        frontend.request(2, 8)
        assert frontend.cache.hits == 0
        assert frontend.cache.misses == 2

    def test_cache_size_zero_never_hits(self):
        frontend = _frontend(cache_size=0)
        frontend.request(1, 5)
        frontend.request(1, 5)
        assert frontend.cache.hits == 0

    def test_latency_histogram_recorded(self):
        frontend = _frontend()
        with obs.observe() as session:
            frontend.serve(np.array([1, 2, 1]), 5)
        snap = session.registry.snapshot()
        assert snap["histograms"]["serving.latency_ms"]["count"] == 3
        assert snap["counters"]["serving.requests"] == 3


class TestRefresh:
    def test_refresh_invalidates_stale_slates(self):
        frontend = _frontend()
        before = frontend.request(0, 5)
        frontend.ingest(np.array([[0, 0], [0, 1]]))
        stats = frontend.refresh()
        assert stats.rows_recomputed > 0
        assert len(frontend.cache) == 0  # stale slates dropped
        after = frontend.request(0, 5)
        # The mutated user's neighbourhood changed; ranking may differ,
        # but the served slate must match a fresh scoring pass.
        z_user, z_item = frontend.embedder.embeddings
        assert np.array_equal(after, stable_topk(z_user[0] @ z_item.T, 5))
        assert before.shape == after.shape

    def test_auto_refresh_over_dirty_threshold(self):
        frontend = _frontend(refresh_dirty_threshold=0.0)
        frontend.request(0, 5)
        frontend.ingest(np.array([[1, 1]]))
        assert frontend.graph.dirty_fraction > 0
        frontend.request(0, 5)  # serve() refreshes first
        assert frontend.graph.dirty_fraction == 0.0

    def test_no_auto_refresh_without_threshold(self):
        frontend = _frontend()
        frontend.ingest(np.array([[1, 1]]))
        frontend.request(0, 5)
        assert frontend.graph.dirty_fraction > 0  # still stale


class TestColdStart:
    def test_new_user_served_by_fallback(self):
        class CannedFallback:
            def recommend(self, user, k):
                return np.arange(k)

        frontend = _frontend(fallback=CannedFallback())
        rng = np.random.default_rng(0)
        (user,) = frontend.graph.add_users(1, features=rng.normal(size=(1, 6)))
        slate = frontend.request(int(user), 4)
        assert np.array_equal(slate, np.arange(4))

    def test_new_user_without_fallback_gets_empty_slate(self):
        frontend = _frontend()
        rng = np.random.default_rng(0)
        (user,) = frontend.graph.add_users(1, features=rng.normal(size=(1, 6)))
        slate = frontend.request(int(user), 4)
        assert len(slate) == 0

    def test_refresh_warms_the_new_user(self):
        frontend = _frontend()
        rng = np.random.default_rng(0)
        (user,) = frontend.graph.add_users(1, features=rng.normal(size=(1, 6)))
        frontend.ingest(np.array([[user, 0]]))
        frontend.refresh()
        slate = frontend.request(int(user), 4)
        assert len(slate) == 4  # scored, not fallback

    def test_cold_start_counter(self):
        frontend = _frontend()
        rng = np.random.default_rng(0)
        (user,) = frontend.graph.add_users(1, features=rng.normal(size=(1, 6)))
        with obs.observe() as session:
            frontend.request(int(user), 4)
        counters = session.registry.snapshot()["counters"]
        assert counters["serving.cold_start"] == 1
