"""Delta refresh is bitwise-identical to a full re-embed of the mutated graph.

The contract: after any edge/vertex delta,
``StreamingEmbedder.refresh(mutated)`` produces exactly the floats of
``full_embed(mutated)`` on a fresh embedder — at any worker count, for
any delta size, whether the delta path ran or degradation kicked in.
The trick is content-addressed sampling (every chunk's neighbour draw is
seeded by its coordinates, not by stream position) plus whole-chunk
recomputation (identical task tuples through the same kernel).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sage import BipartiteGraphSAGE
from repro.graph.generators import random_bipartite
from repro.parallel import shutdown_pools
from repro.streaming import IncrementalBipartiteGraph, StreamingEmbedder
from repro.utils.config import SageConfig


def _world(num_users=200, num_items=150, num_edges=800, seed=0):
    graph = random_bipartite(
        num_users, num_items, num_edges, feature_dim=6, rng=seed
    )
    cfg = SageConfig(embedding_dim=8, neighbor_samples=(4, 3))
    model = BipartiteGraphSAGE(6, 6, cfg, rng=seed)
    return graph, model


def _mutate(graph, delta_edges, seed=1):
    rng = np.random.default_rng(seed)
    inc = IncrementalBipartiteGraph(graph, compact_threshold=None)
    edges = np.stack(
        [
            rng.integers(0, graph.num_users, delta_edges),
            rng.integers(0, graph.num_items, delta_edges),
        ],
        axis=1,
    )
    inc.add_edges(edges)
    return inc


def _assert_bitwise_equal(got, want):
    for side, (a, b) in enumerate(zip(got, want)):
        assert a.shape == b.shape
        assert np.array_equal(a, b), f"side {side} differs"


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("delta_edges", [1, 5, 50])
    def test_edge_delta_matches_full_embed(self, delta_edges):
        graph, model = _world()
        embedder = StreamingEmbedder(
            model, sample_seed=0, batch_size=32, degrade_threshold=1.0
        )
        embedder.full_embed(graph)
        inc = _mutate(graph, delta_edges)
        embedder.refresh(inc)
        reference = StreamingEmbedder(
            model, sample_seed=0, batch_size=32, degrade_threshold=1.0
        )
        reference.full_embed(inc.graph)
        _assert_bitwise_equal(embedder.embeddings, reference.embeddings)

    def test_vertex_delta_matches_full_embed(self):
        graph, model = _world()
        embedder = StreamingEmbedder(
            model, sample_seed=0, batch_size=32, degrade_threshold=1.0
        )
        embedder.full_embed(graph)
        rng = np.random.default_rng(2)
        inc = IncrementalBipartiteGraph(graph, compact_threshold=None)
        users = inc.add_users(3, features=rng.normal(size=(3, 6)))
        items = inc.add_items(2, features=rng.normal(size=(2, 6)))
        inc.add_edges(
            np.array([[users[0], items[0]], [users[1], items[1]], [users[2], 0]])
        )
        embedder.refresh(inc)
        z_user, z_item = embedder.embeddings
        assert len(z_user) == graph.num_users + 3
        assert len(z_item) == graph.num_items + 2
        reference = StreamingEmbedder(
            model, sample_seed=0, batch_size=32, degrade_threshold=1.0
        )
        reference.full_embed(inc.graph)
        _assert_bitwise_equal(embedder.embeddings, reference.embeddings)

    def test_chained_refreshes_match_full_embed(self):
        graph, model = _world()
        embedder = StreamingEmbedder(
            model, sample_seed=0, batch_size=32, degrade_threshold=1.0
        )
        embedder.full_embed(graph)
        inc = IncrementalBipartiteGraph(graph, compact_threshold=None)
        rng = np.random.default_rng(3)
        for _ in range(3):
            edges = np.stack(
                [
                    rng.integers(0, inc.num_users, 2),
                    rng.integers(0, inc.num_items, 2),
                ],
                axis=1,
            )
            inc.add_edges(edges)
            embedder.refresh(inc)
        reference = StreamingEmbedder(
            model, sample_seed=0, batch_size=32, degrade_threshold=1.0
        )
        reference.full_embed(inc.graph)
        _assert_bitwise_equal(embedder.embeddings, reference.embeddings)

    def test_refresh_after_compaction_matches(self):
        graph, model = _world()
        embedder = StreamingEmbedder(
            model, sample_seed=0, batch_size=32, degrade_threshold=1.0
        )
        embedder.full_embed(graph)
        inc = _mutate(graph, 4)
        inc.compact()  # storage layout changes, staleness does not
        embedder.refresh(inc)
        reference = StreamingEmbedder(
            model, sample_seed=0, batch_size=32, degrade_threshold=1.0
        )
        reference.full_embed(inc.graph)
        _assert_bitwise_equal(embedder.embeddings, reference.embeddings)


class TestRefreshStats:
    def test_sparse_delta_takes_the_delta_path(self):
        # Sparse graph + single-edge delta: the 2-hop affected set stays
        # well under the degradation threshold.
        graph, model = _world(800, 600, 1600)
        embedder = StreamingEmbedder(
            model, sample_seed=0, batch_size=64, degrade_threshold=0.9
        )
        embedder.full_embed(graph)
        inc = _mutate(graph, 1)
        embedder.refresh(inc)
        stats = embedder.last_stats
        assert stats.mode == "delta"
        assert not stats.degraded
        assert 0.0 < stats.recompute_fraction < 1.0
        assert stats.chunks_recomputed < stats.chunks_total
        assert stats.rows_recomputed < stats.rows_total

    def test_large_delta_degrades_to_full(self):
        graph, model = _world()
        embedder = StreamingEmbedder(
            model, sample_seed=0, batch_size=32, degrade_threshold=0.05
        )
        embedder.full_embed(graph)
        inc = _mutate(graph, 40)
        embedder.refresh(inc)
        stats = embedder.last_stats
        assert stats.degraded
        assert stats.mode == "full"
        # Degraded output still equals the full re-embed.
        reference = StreamingEmbedder(
            model, sample_seed=0, batch_size=32, degrade_threshold=0.05
        )
        reference.full_embed(inc.graph)
        _assert_bitwise_equal(embedder.embeddings, reference.embeddings)

    def test_cold_refresh_runs_full_embed(self):
        graph, model = _world()
        embedder = StreamingEmbedder(model, sample_seed=0, batch_size=32)
        embedder.refresh(graph)  # nothing cached yet
        assert embedder.last_stats.mode == "full"
        reference = StreamingEmbedder(model, sample_seed=0, batch_size=32)
        reference.full_embed(graph)
        _assert_bitwise_equal(embedder.embeddings, reference.embeddings)

    def test_noop_refresh_recomputes_nothing(self):
        graph, model = _world()
        embedder = StreamingEmbedder(model, sample_seed=0, batch_size=32)
        embedder.full_embed(graph)
        before = tuple(a.copy() for a in embedder.embeddings)
        embedder.refresh(graph)  # no dirty vertices, same graph
        stats = embedder.last_stats
        assert stats.mode == "delta"
        assert stats.rows_recomputed == 0
        _assert_bitwise_equal(embedder.embeddings, before)

    def test_incremental_graph_dirty_cleared_on_success(self):
        graph, model = _world()
        embedder = StreamingEmbedder(
            model, sample_seed=0, batch_size=32, degrade_threshold=1.0
        )
        embedder.full_embed(graph)
        inc = _mutate(graph, 2)
        assert len(inc.dirty_users) > 0
        embedder.refresh(inc)
        assert len(inc.dirty_users) == 0
        assert len(inc.dirty_items) == 0


class TestErrorPaths:
    def test_embeddings_before_any_pass_raises(self):
        _, model = _world()
        embedder = StreamingEmbedder(model)
        with pytest.raises(RuntimeError, match="embed"):
            embedder.embeddings

    def test_shrunken_graph_rejected(self):
        graph, model = _world()
        embedder = StreamingEmbedder(model, sample_seed=0, batch_size=32)
        embedder.full_embed(graph)
        smaller = random_bipartite(50, 40, 100, feature_dim=6, rng=0)
        with pytest.raises(ValueError, match="only grow"):
            embedder.refresh(smaller)

    def test_out_of_range_dirty_ids_rejected(self):
        graph, model = _world()
        embedder = StreamingEmbedder(model, sample_seed=0, batch_size=32)
        embedder.full_embed(graph)
        with pytest.raises(ValueError):
            embedder.refresh(graph, dirty_users=np.array([graph.num_users + 5]))


@pytest.mark.parallel
class TestWorkerEquivalence:
    @pytest.fixture(scope="class", autouse=True)
    def _shutdown(self):
        yield
        shutdown_pools()

    @pytest.mark.parametrize("delta_edges", [1, 8])
    def test_refresh_identical_at_any_worker_count(self, delta_edges):
        results = []
        for workers in (1, 3):
            graph, model = _world()
            embedder = StreamingEmbedder(
                model, sample_seed=0, batch_size=32, degrade_threshold=1.0
            )
            embedder.full_embed(graph, workers=workers)
            inc = _mutate(graph, delta_edges)
            embedder.refresh(inc, workers=workers)
            results.append(tuple(a.copy() for a in embedder.embeddings))
        _assert_bitwise_equal(results[0], results[1])

    def test_refresh_workers_vs_serial_full(self):
        graph, model = _world()
        embedder = StreamingEmbedder(
            model, sample_seed=0, batch_size=32, degrade_threshold=1.0
        )
        embedder.full_embed(graph)
        inc = _mutate(graph, 3)
        embedder.refresh(inc, workers=3)
        reference = StreamingEmbedder(
            model, sample_seed=0, batch_size=32, degrade_threshold=1.0
        )
        reference.full_embed(inc.graph)
        _assert_bitwise_equal(embedder.embeddings, reference.embeddings)
