"""Incremental graph overlay: O(delta) appends, dirty frontier, compaction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import random_bipartite
from repro.streaming import IncrementalBipartiteGraph


def _base(num_users=30, num_items=20, num_edges=90, feature_dim=4, rng=0):
    return random_bipartite(
        num_users, num_items, num_edges, feature_dim=feature_dim, rng=rng
    )


def _edge_weight_map(graph: BipartiteGraph) -> dict[tuple[int, int], float]:
    return {
        (int(u), int(i)): float(w)
        for (u, i), w in zip(graph.edges, graph.edge_weights)
    }


class TestAppendSemantics:
    def test_appends_stay_in_overlay(self):
        inc = IncrementalBipartiteGraph(_base(), compact_threshold=None)
        before = inc._base.num_edges
        inc.add_edges(np.array([[0, 0], [1, 5]]))
        assert inc.pending_edges == 2
        assert inc._base.num_edges == before  # base CSR untouched

    def test_overlay_neighbor_queries(self):
        base = _base()
        inc = IncrementalBipartiteGraph(base, compact_threshold=None)
        user, item = 3, 7
        inc.add_edges(np.array([[user, item]]))
        assert item in inc.item_neighbors(user)
        assert user in inc.user_neighbors(item)
        assert inc.user_degree(user) == base.user_degree(user) + 1
        assert inc.item_degree(item) == base.item_degree(item) + 1

    def test_materialised_graph_merges_duplicates_by_weight_sum(self):
        base = _base()
        inc = IncrementalBipartiteGraph(base, compact_threshold=None)
        user, item = int(base.edges[0, 0]), int(base.edges[0, 1])
        existing = _edge_weight_map(base)[(user, item)]
        inc.add_edges(np.array([[user, item]]), np.array([2.5]))
        merged = _edge_weight_map(inc.graph)
        assert merged[(user, item)] == pytest.approx(existing + 2.5)

    def test_materialised_graph_equals_from_scratch_build(self):
        base = _base()
        inc = IncrementalBipartiteGraph(base, compact_threshold=None)
        new_edges = np.array([[2, 4], [9, 11], [2, 4]])
        inc.add_edges(new_edges)
        expected = BipartiteGraph(
            base.num_users,
            base.num_items,
            np.concatenate([base.edges, new_edges]),
            np.concatenate([base.edge_weights, np.ones(3)]),
            base.user_features,
            base.item_features,
        )
        got = inc.graph
        assert np.array_equal(got.edges, expected.edges)
        assert np.array_equal(got.edge_weights, expected.edge_weights)

    def test_empty_append_is_a_noop(self):
        inc = IncrementalBipartiteGraph(_base(), compact_threshold=None)
        inc.add_edges(np.empty((0, 2), dtype=np.int64))
        assert inc.pending_edges == 0
        assert len(inc.dirty_users) == 0

    def test_rejects_out_of_range_and_bad_weights(self):
        inc = IncrementalBipartiteGraph(_base(), compact_threshold=None)
        with pytest.raises(ValueError, match="user index"):
            inc.add_edges(np.array([[999, 0]]))
        with pytest.raises(ValueError, match="item index"):
            inc.add_edges(np.array([[0, 999]]))
        with pytest.raises(ValueError, match="positive"):
            inc.add_edges(np.array([[0, 0]]), np.array([0.0]))
        with pytest.raises(ValueError, match="align"):
            inc.add_edges(np.array([[0, 0]]), np.array([1.0, 2.0]))


class TestVertexAppends:
    def test_add_users_returns_fresh_contiguous_ids(self):
        base = _base()
        inc = IncrementalBipartiteGraph(base, compact_threshold=None)
        rng = np.random.default_rng(0)
        ids = inc.add_users(2, features=rng.normal(size=(2, 4)))
        assert list(ids) == [base.num_users, base.num_users + 1]
        assert inc.num_users == base.num_users + 2
        more = inc.add_users(1, features=rng.normal(size=(1, 4)))
        assert list(more) == [base.num_users + 2]

    def test_new_vertex_can_receive_edges(self):
        inc = IncrementalBipartiteGraph(_base(), compact_threshold=None)
        rng = np.random.default_rng(0)
        (user,) = inc.add_users(1, features=rng.normal(size=(1, 4)))
        (item,) = inc.add_items(1, features=rng.normal(size=(1, 4)))
        inc.add_edges(np.array([[user, item]]))
        assert item in inc.item_neighbors(user)
        graph = inc.graph
        assert graph.num_users == inc.num_users
        assert graph.user_features.shape == (inc.num_users, 4)

    def test_features_required_iff_base_has_them(self):
        inc = IncrementalBipartiteGraph(_base(), compact_threshold=None)
        with pytest.raises(ValueError, match="feature"):
            inc.add_users(1)
        with pytest.raises(ValueError, match="dim"):
            inc.add_users(1, features=np.zeros((1, 99)))
        featureless = BipartiteGraph(10, 8, np.array([[0, 0], [1, 2]]))
        bare = IncrementalBipartiteGraph(featureless, compact_threshold=None)
        bare.add_users(1)  # no features needed
        with pytest.raises(ValueError, match="no user features"):
            bare.add_users(1, features=np.zeros((1, 4)))


class TestDirtyFrontier:
    def test_edge_endpoints_marked_dirty(self):
        inc = IncrementalBipartiteGraph(_base(), compact_threshold=None)
        inc.add_edges(np.array([[5, 3], [7, 3]]))
        assert list(inc.dirty_users) == [5, 7]
        assert list(inc.dirty_items) == [3]
        assert inc.dirty_fraction == pytest.approx(3 / 50)

    def test_new_vertices_marked_dirty(self):
        inc = IncrementalBipartiteGraph(_base(), compact_threshold=None)
        rng = np.random.default_rng(0)
        ids = inc.add_users(2, features=rng.normal(size=(2, 4)))
        assert set(ids) <= set(int(u) for u in inc.dirty_users)

    def test_clear_dirty(self):
        inc = IncrementalBipartiteGraph(_base(), compact_threshold=None)
        inc.add_edges(np.array([[0, 0]]))
        inc.clear_dirty()
        assert len(inc.dirty_users) == 0
        assert len(inc.dirty_items) == 0

    def test_dirty_survives_compaction(self):
        inc = IncrementalBipartiteGraph(_base(), compact_threshold=None)
        inc.add_edges(np.array([[5, 3]]))
        inc.compact()
        assert list(inc.dirty_users) == [5]
        assert list(inc.dirty_items) == [3]


class TestCompaction:
    def test_round_trip_preserves_graph(self):
        inc = IncrementalBipartiteGraph(_base(), compact_threshold=None)
        rng = np.random.default_rng(1)
        inc.add_edges(np.array([[2, 4], [9, 11]]), np.array([1.5, 2.0]))
        (user,) = inc.add_users(1, features=rng.normal(size=(1, 4)))
        inc.add_edges(np.array([[user, 0]]))
        before = inc.graph
        inc.compact()
        after = inc.graph
        assert inc.pending_edges == 0
        assert after is inc._base  # overlay folded in
        assert np.array_equal(before.edges, after.edges)
        assert np.array_equal(before.edge_weights, after.edge_weights)
        assert np.array_equal(before.user_features, after.user_features)
        assert np.array_equal(before.item_features, after.item_features)

    def test_compact_on_clean_graph_is_a_noop(self):
        base = _base()
        inc = IncrementalBipartiteGraph(base, compact_threshold=None)
        assert inc.compact() is base
        assert inc.compactions == 0

    def test_auto_compaction_at_threshold(self):
        base = _base(num_edges=90)
        inc = IncrementalBipartiteGraph(base, compact_threshold=0.05)
        # 0.05 * 90 = 4.5 -> fifth pending edge trips the compactor.
        for step in range(5):
            inc.add_edges(np.array([[step, step]]))
        assert inc.compactions == 1
        assert inc.pending_edges == 0

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="compact_threshold"):
            IncrementalBipartiteGraph(_base(), compact_threshold=0.0)

    def test_queries_identical_before_and_after_compaction(self):
        inc = IncrementalBipartiteGraph(_base(), compact_threshold=None)
        inc.add_edges(np.array([[3, 7], [3, 9]]))
        before = {u: sorted(inc.item_neighbors(u)) for u in range(inc.num_users)}
        inc.compact()
        after = {u: sorted(inc.item_neighbors(u)) for u in range(inc.num_users)}
        assert before == after
