"""LRU cache semantics: bounding, eviction order, counters."""

from __future__ import annotations

import pytest

from repro import obs
from repro.streaming.lru import LRUCache


class TestBounding:
    def test_never_exceeds_maxsize(self):
        cache = LRUCache(3)
        for key in range(10):
            cache.put(key, key * 2)
        assert len(cache) == 3

    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert "a" not in cache
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # "b" is now LRU
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache

    def test_put_refreshes_recency_and_overwrites(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh + overwrite, no eviction
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache
        assert cache.evictions == 1

    def test_maxsize_zero_disables_caching(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.get("a") is None
        assert cache.misses == 1

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError, match="maxsize"):
            LRUCache(-1)


class TestCounters:
    def test_hit_rate(self):
        cache = LRUCache(4)
        assert cache.hit_rate == 0.0
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("missing")
        assert cache.hits == 2
        assert cache.misses == 1
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_get_if_counts_unusable_entries_as_misses(self):
        cache = LRUCache(4)
        cache.put("a", 3)
        assert cache.get_if("a", lambda v: v >= 5) is None
        assert cache.get_if("a", lambda v: v >= 2) == 3
        assert (cache.hits, cache.misses) == (1, 1)

    def test_clear_drops_entries_but_keeps_counters(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_obs_counters_published_under_prefix(self):
        with obs.observe() as session:
            cache = LRUCache(1, metric_prefix="test.cache")
            cache.put("a", 1)
            cache.get("a")
            cache.get("b")
            cache.put("b", 2)  # evicts "a"
        counters = session.registry.snapshot()["counters"]
        assert counters["test.cache.hits"] == 1
        assert counters["test.cache.misses"] == 1
        assert counters["test.cache.evictions"] == 1


class TestInvalidation:
    def test_invalidate_single_key(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        assert "a" not in cache

    def test_invalidate_where_predicate(self):
        cache = LRUCache(8)
        for key in range(6):
            cache.put(key, key)
        dropped = cache.invalidate_where(lambda k, v: v % 2 == 0)
        assert dropped == 3
        assert sorted(cache.keys()) == [1, 3, 5]

    def test_keys_in_lru_order(self):
        cache = LRUCache(3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        cache.get("a")
        assert list(cache.keys()) == ["b", "c", "a"]
