"""Tokeniser, vocabulary, and BM25."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.text.bm25 import BM25
from repro.text.tokenize import tokenize
from repro.text.vocab import Vocabulary


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Beach-Dress, SPF 50!") == ["beach", "dress", "spf", "50"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_apostrophes_kept(self):
        assert tokenize("women's shoes") == ["women's", "shoes"]

    def test_unicode_punctuation_stripped(self):
        assert tokenize("hello…world") == ["hello", "world"]

    def test_underscores_kept(self):
        assert tokenize("shoe_42 bag-7") == ["shoe_42", "bag", "7"]


class TestVocabulary:
    def test_roundtrip(self):
        vocab = Vocabulary([["a", "b"], ["b", "c"]])
        ids = vocab.encode(["a", "b", "c"])
        assert vocab.decode(ids) == ["a", "b", "c"]

    def test_frequency_order(self):
        vocab = Vocabulary([["x", "y", "y", "z", "y", "z"]])
        assert vocab.token(0) == "y"  # most frequent first
        assert vocab.count("y") == 3

    def test_min_count_filters(self):
        vocab = Vocabulary([["rare", "common", "common"]], min_count=2)
        assert "common" in vocab
        assert "rare" not in vocab
        assert vocab.get("rare") is None

    def test_encode_drops_oov(self):
        vocab = Vocabulary([["a", "b"]])
        assert vocab.decode(vocab.encode(["a", "zzz", "b"])) == ["a", "b"]

    def test_invalid_min_count(self):
        with pytest.raises(ValueError):
            Vocabulary([], min_count=0)

    def test_len_and_contains(self):
        vocab = Vocabulary([["a", "b", "a"]])
        assert len(vocab) == 2
        assert "a" in vocab
        assert "q" not in vocab

    def test_deterministic_tie_break(self):
        a = Vocabulary([["b", "a"]])
        b = Vocabulary([["a", "b"]])
        assert a.tokens == b.tokens  # lexicographic among equal counts


class TestBM25:
    DOCS = [
        ["red", "dress", "beach"],
        ["sun", "glasses", "beach", "beach"],
        ["laptop", "computer", "keyboard"],
    ]

    def test_topical_doc_wins(self):
        bm25 = BM25(self.DOCS)
        scores = bm25.scores(["beach"])
        assert np.argmax(scores) == 1  # two occurrences of 'beach'

    def test_unseen_terms_score_zero(self):
        bm25 = BM25(self.DOCS)
        assert bm25.scores(["spaceship"]) == [0.0, 0.0, 0.0]

    def test_scores_nonnegative(self):
        bm25 = BM25(self.DOCS)
        for doc in self.DOCS:
            assert all(s >= 0 for s in bm25.scores(doc))

    def test_rare_term_higher_idf(self):
        bm25 = BM25(self.DOCS)
        # 'laptop' appears in 1 doc, 'beach' in 2: idf(laptop) > idf(beach)
        assert bm25._idf["laptop"] > bm25._idf["beach"]

    def test_top_documents(self):
        bm25 = BM25(self.DOCS)
        top = bm25.top_documents(["laptop", "keyboard"], topn=1)
        assert top[0][0] == 2

    def test_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            BM25([])

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            BM25(self.DOCS, k1=-1)
        with pytest.raises(ValueError):
            BM25(self.DOCS, b=2.0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 5))
    def test_property_repeating_query_terms_monotone(self, reps):
        bm25 = BM25(self.DOCS)
        single = bm25.score(["beach"], 1)
        repeated = bm25.score(["beach"] * reps, 1)
        assert repeated >= single - 1e-12
