"""Skip-gram word2vec on small synthetic corpora."""

import numpy as np
import pytest

from repro.text.vocab import Vocabulary
from repro.text.word2vec import Word2Vec, embed_documents


def _topic_corpus(n_docs=60, seed=0):
    """Two topics with disjoint vocabularies."""
    rng = np.random.default_rng(seed)
    topics = [["cat", "dog", "pet", "fur"], ["car", "wheel", "engine", "road"]]
    docs = []
    labels = []
    for _ in range(n_docs):
        t = int(rng.integers(2))
        docs.append([str(w) for w in rng.choice(topics[t], size=6)])
        labels.append(t)
    return docs, np.array(labels)


class TestWord2Vec:
    def test_same_topic_words_more_similar(self):
        docs, _ = _topic_corpus()
        vocab = Vocabulary(docs)
        model = Word2Vec(vocab, dim=16, rng=0)
        model.train(docs, epochs=10)
        sims = dict(model.most_similar("cat", topn=len(vocab) - 1))
        assert sims["dog"] > sims["car"]

    def test_document_vectors_separate_topics(self):
        docs, labels = _topic_corpus()
        matrix, _ = embed_documents(docs, dim=16, epochs=10, rng=0)
        c0 = matrix[labels == 0].mean(axis=0)
        c1 = matrix[labels == 1].mean(axis=0)
        within = matrix[labels == 0].std()
        assert np.linalg.norm(c0 - c1) > within

    def test_document_vector_oov_is_zero(self):
        docs, _ = _topic_corpus()
        _, model = embed_documents(docs, dim=8, epochs=1, rng=0)
        assert np.allclose(model.document_vector(["zzz", "qqq"]), 0.0)

    def test_unknown_token_raises(self):
        docs, _ = _topic_corpus()
        _, model = embed_documents(docs, dim=8, epochs=1, rng=0)
        with pytest.raises(KeyError):
            model.vector("spaceship")

    def test_deterministic(self):
        docs, _ = _topic_corpus()
        a, _ = embed_documents(docs, dim=8, epochs=2, rng=42)
        b, _ = embed_documents(docs, dim=8, epochs=2, rng=42)
        assert np.allclose(a, b)

    def test_invalid_params(self):
        vocab = Vocabulary([["a", "b"]])
        with pytest.raises(ValueError):
            Word2Vec(vocab, dim=0)
        with pytest.raises(ValueError):
            Word2Vec(vocab, window=0)
        with pytest.raises(ValueError):
            Word2Vec(vocab, negatives=0)

    def test_empty_vocab_raises(self):
        with pytest.raises(ValueError):
            Word2Vec(Vocabulary([]))

    def test_no_trainable_docs_raises(self):
        vocab = Vocabulary([["a", "b"]])
        model = Word2Vec(vocab, dim=4, rng=0)
        with pytest.raises(ValueError):
            model.train([["zzz"]], epochs=1)

    def test_subsampling_trains_and_stays_finite(self):
        # A dominant filler token gets thinned; training still works.
        docs = [["the"] * 6 + ["cat", "dog", "pet", "fur"] for _ in range(30)]
        vocab = Vocabulary(docs)
        model = Word2Vec(vocab, dim=8, rng=0)
        loss = model.train(docs, epochs=2, subsample=0.05)
        assert np.isfinite(loss)

    def test_subsampling_off_keeps_all_tokens(self):
        docs, _ = _topic_corpus()
        vocab = Vocabulary(docs)
        model = Word2Vec(vocab, dim=8, rng=0)
        loss = model.train(docs, epochs=1, subsample=0.0)
        assert np.isfinite(loss)
