"""AUC: exact values, ties, invariances."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.auc import auc, roc_curve


class TestAUC:
    def test_perfect_separation(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert auc(labels, scores) == 1.0

    def test_inverted_is_zero(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert auc(labels, scores) == 0.0

    def test_known_value(self):
        # One misranked pair of 1x3=... labels [1,0,1], scores [0.3,0.5,0.9]
        # pairs: (p=0.3 vs n=0.5) lost, (p=0.9 vs n=0.5) won -> 0.5
        assert auc(np.array([1, 0, 1]), np.array([0.3, 0.5, 0.9])) == pytest.approx(0.5)

    def test_ties_give_half_credit(self):
        labels = np.array([0, 1])
        scores = np.array([0.5, 0.5])
        assert auc(labels, scores) == pytest.approx(0.5)

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            auc(np.ones(5), np.linspace(0, 1, 5))
        with pytest.raises(ValueError):
            auc(np.zeros(5), np.linspace(0, 1, 5))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            auc(np.ones(3), np.ones(4))

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, 5000)
        scores = rng.random(5000)
        assert auc(labels, scores) == pytest.approx(0.5, abs=0.03)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_property_monotone_transform_invariant(self, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, 50)
        if labels.min() == labels.max():
            labels[0] = 1 - labels[0]
        scores = rng.normal(size=50)
        a = auc(labels, scores)
        b = auc(labels, np.exp(scores))  # strictly monotone
        assert a == pytest.approx(b)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_property_complement_symmetry(self, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, 40)
        if labels.min() == labels.max():
            labels[0] = 1 - labels[0]
        scores = rng.normal(size=40)
        assert auc(labels, scores) == pytest.approx(1.0 - auc(labels, -scores))

    def test_matches_pairwise_bruteforce(self):
        rng = np.random.default_rng(3)
        labels = rng.integers(0, 2, 30)
        labels[:2] = [0, 1]
        scores = rng.normal(size=30)
        pos = scores[labels == 1]
        neg = scores[labels == 0]
        wins = sum((p > n) + 0.5 * (p == n) for p in pos for n in neg)
        assert auc(labels, scores) == pytest.approx(wins / (len(pos) * len(neg)))


class TestROC:
    def test_starts_at_origin_ends_at_one(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.array([0.1, 0.9, 0.4, 0.6])
        fpr, tpr, _ = roc_curve(labels, scores)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0

    def test_monotone(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, 100)
        scores = rng.normal(size=100)
        fpr, tpr, _ = roc_curve(labels, scores)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_trapezoid_matches_auc(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 2, 200)
        scores = rng.normal(size=200)
        fpr, tpr, _ = roc_curve(labels, scores)
        assert np.trapezoid(tpr, fpr) == pytest.approx(auc(labels, scores), abs=1e-9)
