"""Classification and ranking metrics."""

import numpy as np
import pytest

from repro.metrics.classification import (
    accuracy,
    confusion_matrix,
    log_loss,
    precision_recall_f1,
)
from repro.metrics.ranking import hit_rate_at_k, ndcg_at_k, precision_at_k, recall_at_k


class TestLogLoss:
    def test_perfect_predictions(self):
        assert log_loss(np.array([1, 0]), np.array([1.0, 0.0])) < 1e-6

    def test_uniform_is_log2(self):
        value = log_loss(np.array([1, 0]), np.array([0.5, 0.5]))
        assert value == pytest.approx(np.log(2))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            log_loss(np.ones(2), np.ones(3))


class TestConfusionAndPRF:
    def test_confusion_values(self):
        labels = np.array([1, 1, 0, 0])
        probs = np.array([0.9, 0.2, 0.8, 0.3])
        mat = confusion_matrix(labels, probs)
        assert mat.tolist() == [[1, 1], [1, 1]]

    def test_prf(self):
        labels = np.array([1, 1, 0, 0])
        probs = np.array([0.9, 0.2, 0.8, 0.3])
        p, r, f1 = precision_recall_f1(labels, probs)
        assert p == pytest.approx(0.5)
        assert r == pytest.approx(0.5)
        assert f1 == pytest.approx(0.5)

    def test_prf_zero_denominators(self):
        p, r, f1 = precision_recall_f1(np.array([0, 0]), np.array([0.1, 0.2]))
        assert (p, r, f1) == (0.0, 0.0, 0.0)

    def test_accuracy(self):
        assert accuracy(np.array([1, 0, 1]), np.array([0.9, 0.1, 0.2])) == pytest.approx(2 / 3)


class TestRanking:
    SCORES = np.array([0.9, 0.1, 0.8, 0.3, 0.5])  # ranking: 0, 2, 4, 3, 1

    def test_recall_at_k(self):
        assert recall_at_k({0, 2}, self.SCORES, 2) == 1.0
        assert recall_at_k({0, 1}, self.SCORES, 2) == 0.5
        assert recall_at_k(set(), self.SCORES, 2) == 0.0

    def test_precision_at_k(self):
        assert precision_at_k({0, 2}, self.SCORES, 2) == 1.0
        assert precision_at_k({0}, self.SCORES, 2) == 0.5

    def test_hit_rate(self):
        assert hit_rate_at_k({4}, self.SCORES, 3) == 1.0
        assert hit_rate_at_k({1}, self.SCORES, 3) == 0.0

    def test_ndcg_perfect(self):
        assert ndcg_at_k({0, 2}, self.SCORES, 2) == pytest.approx(1.0)

    def test_ndcg_partial(self):
        # Relevant item at rank 2 (0-indexed 1): dcg = 1/log2(3), idcg = 1
        value = ndcg_at_k({2}, self.SCORES, 2)
        assert value == pytest.approx(1.0 / np.log2(3))

    def test_k_larger_than_items(self):
        assert recall_at_k({0}, self.SCORES, 100) == 1.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            recall_at_k({0}, self.SCORES, 0)
