"""CH-guided cluster-count selection (Eq. 13)."""

import numpy as np
import pytest

from repro.clustering.autok import cluster_with_auto_k, select_k


def _blobs(k, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=10.0, size=(k, 3))
    return np.concatenate(
        [c + rng.normal(scale=0.3, size=(25, 3)) for c in centers]
    )


class TestSelectK:
    def test_finds_true_k(self):
        points = _blobs(4)
        best, scores = select_k(points, [2, 3, 4, 5, 6], rng=0)
        assert best == 4
        assert scores[4] == max(scores.values())

    def test_degenerate_candidates_score_zero(self):
        points = _blobs(2)
        _, scores = select_k(points, [1, 2, len(points) + 5], rng=0)
        assert scores[1] == 0.0
        assert scores[len(points) + 5] == 0.0

    def test_empty_candidates_raise(self):
        with pytest.raises(ValueError):
            select_k(_blobs(2), [])

    def test_deterministic(self):
        points = _blobs(3, seed=2)
        a, _ = select_k(points, [2, 3, 4], rng=9)
        b, _ = select_k(points, [2, 3, 4], rng=9)
        assert a == b


class TestClusterWithAutoK:
    def test_returns_fit_with_best_k(self):
        points = _blobs(3)
        result = cluster_with_auto_k(points, [2, 3, 4, 5], rng=0)
        assert result.n_clusters == 3
        assert len(result.labels) == len(points)
