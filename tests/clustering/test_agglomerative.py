"""Hierarchical agglomerative clustering (SHOAL's engine)."""

import numpy as np
import pytest

from repro.clustering.agglomerative import agglomerative_cluster, agglomerative_levels


def _blobs(seed=0):
    rng = np.random.default_rng(seed)
    return np.vstack(
        [rng.normal(size=(15, 2)) * 0.2 + offset for offset in ([0, 0], [8, 0], [0, 8])]
    )


class TestAgglomerative:
    def test_recovers_blobs(self):
        points = _blobs()
        labels = agglomerative_cluster(points, 3)
        truth = np.repeat(np.arange(3), 15)
        # purity
        total = sum(np.bincount(truth[labels == c]).max() for c in np.unique(labels))
        assert total / len(truth) > 0.95

    def test_labels_dense(self):
        labels = agglomerative_cluster(_blobs(), 4)
        assert set(labels) == set(range(len(set(labels))))

    def test_k_clamped(self):
        points = np.ones((3, 2))
        labels = agglomerative_cluster(points, 10)
        assert len(labels) == 3

    def test_single_point(self):
        assert np.array_equal(agglomerative_cluster(np.ones((1, 2)), 1), [0])

    def test_k_equals_n(self):
        labels = agglomerative_cluster(np.arange(6, dtype=float).reshape(3, 2), 3)
        assert len(set(labels)) == 3

    def test_unknown_linkage(self):
        with pytest.raises(ValueError):
            agglomerative_cluster(_blobs(), 2, method="centroid-ish")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            agglomerative_cluster(np.zeros((0, 2)), 2)

    def test_ward_linkage_works(self):
        labels = agglomerative_cluster(_blobs(), 3, method="ward")
        assert len(set(labels)) == 3


class TestLevels:
    def test_multiple_cuts(self):
        points = _blobs()
        levels = agglomerative_levels(points, [6, 3, 1])
        assert len(levels) == 3
        assert len(set(levels[0])) == 6
        assert len(set(levels[1])) == 3
        assert len(set(levels[2])) == 1

    def test_cuts_are_nested(self):
        # Coarser cuts of one dendrogram never split a finer cluster.
        points = _blobs(seed=1)
        fine, coarse = agglomerative_levels(points, [6, 2])
        for c in np.unique(fine):
            members = coarse[fine == c]
            assert len(np.unique(members)) == 1

    def test_empty_counts_raise(self):
        with pytest.raises(ValueError):
            agglomerative_levels(_blobs(), [])
