"""Cluster validity indices (incl. Eq. 13's Calinski–Harabasz)."""

import numpy as np
import pytest

from repro.clustering.validity import calinski_harabasz, davies_bouldin, silhouette


def _separated(seed=0, spread=0.2):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(20, 3)) * spread
    b = rng.normal(size=(20, 3)) * spread + 10.0
    points = np.vstack([a, b])
    labels = np.repeat([0, 1], 20)
    return points, labels


class TestCalinskiHarabasz:
    def test_separated_beats_random_labels(self):
        points, labels = _separated()
        rng = np.random.default_rng(1)
        shuffled = rng.permutation(labels)
        assert calinski_harabasz(points, labels) > calinski_harabasz(points, shuffled)

    def test_single_cluster_zero(self):
        points, _ = _separated()
        assert calinski_harabasz(points, np.zeros(len(points), dtype=int)) == 0.0

    def test_perfect_separation_large(self):
        points, labels = _separated(spread=0.01)
        assert calinski_harabasz(points, labels) > 1000

    def test_matches_formula_small_case(self):
        points = np.array([[0.0], [1.0], [10.0], [11.0]])
        labels = np.array([0, 0, 1, 1])
        # between = 2*(0.5-5.5)^2 + 2*(10.5-5.5)^2 = 100; within = 0.5+0.5=1
        expected = (100.0 / 1.0) * ((4 - 2) / (2 - 1))
        assert calinski_harabasz(points, labels) == pytest.approx(expected)

    def test_mismatched_shapes_raise(self):
        with pytest.raises(ValueError):
            calinski_harabasz(np.ones((3, 2)), np.zeros(2, dtype=int))


class TestDaviesBouldin:
    def test_lower_for_separated(self):
        points, labels = _separated()
        rng = np.random.default_rng(0)
        shuffled = rng.permutation(labels)
        assert davies_bouldin(points, labels) < davies_bouldin(points, shuffled)

    def test_single_cluster_zero(self):
        points, _ = _separated()
        assert davies_bouldin(points, np.zeros(len(points), dtype=int)) == 0.0


class TestSilhouette:
    def test_range(self):
        points, labels = _separated()
        value = silhouette(points, labels)
        assert -1.0 <= value <= 1.0

    def test_separated_near_one(self):
        points, labels = _separated(spread=0.01)
        assert silhouette(points, labels) > 0.95

    def test_random_labels_near_zero(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(40, 3))
        labels = rng.integers(0, 2, 40)
        assert abs(silhouette(points, labels)) < 0.2

    def test_single_cluster_zero(self):
        points, _ = _separated()
        assert silhouette(points, np.zeros(len(points), dtype=int)) == 0.0
