"""K-means variants: quality, invariants, and degenerate inputs."""

import importlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering.kmeans import assign_to_centers, kmeans, kmeans_plus_plus
from repro.utils.config import KMeansConfig


def _blobs(n_per=30, k=3, dim=4, spread=0.3, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=5.0, size=(k, dim))
    points = np.concatenate(
        [centers[i] + rng.normal(scale=spread, size=(n_per, dim)) for i in range(k)]
    )
    labels = np.repeat(np.arange(k), n_per)
    return points, labels


def _agreement(pred, truth):
    """Best-case label agreement via majority mapping (purity)."""
    total = 0
    for c in np.unique(pred):
        members = truth[pred == c]
        total += np.bincount(members).max()
    return total / len(truth)


ALGOS = ["lloyd", "minibatch", "single_pass"]


class TestQuality:
    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_recovers_blobs(self, algorithm):
        points, truth = _blobs()
        result = kmeans(points, 3, KMeansConfig(algorithm=algorithm), rng=0)
        assert _agreement(result.labels, truth) > 0.9

    def test_lloyd_at_least_as_good_as_single_pass(self):
        points, _ = _blobs(seed=3)
        lloyd = kmeans(points, 3, KMeansConfig(algorithm="lloyd"), rng=0)
        single = kmeans(points, 3, KMeansConfig(algorithm="single_pass"), rng=0)
        assert lloyd.inertia <= single.inertia * 1.2

    def test_n_init_improves_or_ties(self):
        points, _ = _blobs(k=4, seed=5)
        one = kmeans(points, 4, KMeansConfig(n_init=1), rng=7)
        many = kmeans(points, 4, KMeansConfig(n_init=5), rng=7)
        assert many.inertia <= one.inertia + 1e-9


class TestInvariants:
    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_labels_match_nearest_center(self, algorithm):
        points, _ = _blobs()
        result = kmeans(points, 3, KMeansConfig(algorithm=algorithm), rng=0)
        relabeled, inertia = assign_to_centers(points, result.centers)
        assert np.array_equal(relabeled, result.labels)
        assert inertia == pytest.approx(result.inertia)

    def test_labels_dense_range(self):
        points, _ = _blobs()
        result = kmeans(points, 3, rng=0)
        assert result.labels.min() >= 0
        assert result.labels.max() < result.n_clusters

    def test_deterministic_given_seed(self):
        points, _ = _blobs()
        a = kmeans(points, 3, rng=11)
        b = kmeans(points, 3, rng=11)
        assert np.array_equal(a.labels, b.labels)


class TestDegenerate:
    def test_k_clamped_to_distinct_points(self):
        points = np.zeros((10, 2))
        result = kmeans(points, 5, rng=0)
        assert result.n_clusters == 1
        assert result.inertia == pytest.approx(0.0)

    def test_k_equals_n(self):
        points = np.arange(8, dtype=float).reshape(4, 2)
        result = kmeans(points, 4, rng=0)
        assert result.n_clusters == 4
        assert result.inertia == pytest.approx(0.0)

    def test_single_point(self):
        result = kmeans(np.array([[1.0, 2.0]]), 3, rng=0)
        assert result.n_clusters == 1

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((0, 2)), 2)

    def test_bad_k_raises(self):
        with pytest.raises(ValueError):
            kmeans(np.ones((3, 2)), 0)

    def test_1d_points_raise(self):
        with pytest.raises(ValueError):
            kmeans(np.ones(5), 2)

    def test_empty_cluster_reseeded(self):
        # Outlier far away forces a potential empty cluster on re-assign.
        points = np.vstack([np.zeros((20, 2)), np.ones((20, 2)), [[100.0, 100.0]]])
        result = kmeans(points, 3, KMeansConfig(algorithm="lloyd"), rng=0)
        assert len(np.unique(result.labels)) == 3


class TestRestartSelection:
    def test_multi_restart_bitwise_deterministic(self):
        points, _ = _blobs(k=4, seed=5)
        a = kmeans(points, 4, KMeansConfig(n_init=5), rng=7)
        b = kmeans(points, 4, KMeansConfig(n_init=5), rng=7)
        assert np.array_equal(a.labels, b.labels)
        assert np.array_equal(a.centers, b.centers)
        assert a.inertia == b.inertia

    def test_tied_inertia_keeps_first_submitted_restart(self, monkeypatch):
        km = importlib.import_module("repro.clustering.kmeans")

        points = np.zeros((6, 2)) + np.arange(6)[:, None]

        def fake_restart(task, context):
            index, _ = task
            return km.KMeansResult(
                centers=np.zeros((2, 2)),
                labels=np.zeros(len(points), dtype=np.int64),
                inertia=1.0,  # every restart ties
                n_iter=index,  # marker: which restart won
            )

        monkeypatch.setattr(km, "_restart_task", fake_restart)
        result = km.kmeans(points, 2, KMeansConfig(n_init=4), rng=0, workers=1)
        assert result.n_iter == 0  # submission order breaks the tie

    def test_strictly_better_restart_wins(self, monkeypatch):
        km = importlib.import_module("repro.clustering.kmeans")

        points = np.zeros((6, 2)) + np.arange(6)[:, None]

        def fake_restart(task, context):
            index, _ = task
            return km.KMeansResult(
                centers=np.zeros((2, 2)),
                labels=np.zeros(len(points), dtype=np.int64),
                inertia=float(10 - index),
                n_iter=index,
            )

        monkeypatch.setattr(km, "_restart_task", fake_restart)
        result = km.kmeans(points, 2, KMeansConfig(n_init=4), rng=0, workers=1)
        assert result.n_iter == 3  # lowest inertia, regardless of order


class TestSeeding:
    def test_plus_plus_spreads_centers(self):
        points, _ = _blobs(k=3, spread=0.1, seed=2)
        centers = kmeans_plus_plus(points, 3, np.random.default_rng(0))
        dists = [
            np.linalg.norm(centers[i] - centers[j])
            for i in range(3)
            for j in range(i + 1, 3)
        ]
        assert min(dists) > 1.0  # blob centers are ~5 apart


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 200), k=st.integers(1, 6))
def test_property_inertia_nonnegative_and_centers_finite(seed, k):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(25, 3))
    result = kmeans(points, k, rng=rng)
    assert result.inertia >= 0
    assert np.all(np.isfinite(result.centers))
    assert len(result.labels) == 25


class TestVectorisedVariantsMatchLoops:
    """The chunked/vectorised updates are regression-tested against the
    retained per-point reference loops."""

    @pytest.mark.parametrize("seed", range(6))
    def test_single_pass_chunk1_bitwise_equal(self, seed):
        from repro.clustering.kmeans import _single_pass, _single_pass_loop

        points = np.random.default_rng(seed).normal(size=(80, 5))
        fast = _single_pass(points, 7, np.random.default_rng(seed), chunk_size=1)
        slow = _single_pass_loop(points, 7, np.random.default_rng(seed))
        np.testing.assert_array_equal(fast.labels, slow.labels)
        np.testing.assert_array_equal(fast.centers, slow.centers)
        assert fast.inertia == slow.inertia

    @pytest.mark.parametrize("seed", range(6))
    def test_single_pass_chunked_close_to_loop(self, seed):
        from repro.clustering.kmeans import _single_pass, _single_pass_loop

        points, _ = _blobs(n_per=40, k=4, dim=3, seed=seed)
        fast = _single_pass(points, 4, np.random.default_rng(seed))
        slow = _single_pass_loop(points, 4, np.random.default_rng(seed))
        # Chunked assignment uses stale centres within a chunk, so only
        # the clustering quality (not the arithmetic) is expected to agree.
        assert fast.centers.shape == slow.centers.shape
        assert fast.inertia <= 1.5 * slow.inertia + 1e-9
        assert len(np.unique(fast.labels)) == len(np.unique(slow.labels))

    @pytest.mark.parametrize("seed", range(6))
    def test_minibatch_matches_loop(self, seed):
        from repro.clustering.kmeans import _minibatch, _minibatch_loop

        points, _ = _blobs(n_per=30, k=3, dim=4, seed=seed)
        cfg = KMeansConfig(algorithm="minibatch", max_iter=10, batch_size=32)
        fast = _minibatch(points, 3, cfg, np.random.default_rng(seed))
        slow = _minibatch_loop(points, 3, cfg, np.random.default_rng(seed))
        np.testing.assert_allclose(fast.centers, slow.centers, atol=1e-9)
        np.testing.assert_array_equal(fast.labels, slow.labels)

    def test_running_mean_update_is_running_mean(self):
        from repro.clustering.kmeans import _running_mean_update

        centers = np.zeros((2, 2))
        counts = np.array([1.0, 1.0])
        batch = np.array([[2.0, 2.0], [4.0, 4.0], [9.0, 9.0]])
        labels = np.array([0, 0, 1])
        _running_mean_update(centers, counts, batch, labels)
        # centre 0 absorbs two points: ((0*1)+2+4)/(1+2) = 2
        np.testing.assert_allclose(centers[0], [2.0, 2.0])
        np.testing.assert_allclose(centers[1], [4.5, 4.5])
        np.testing.assert_array_equal(counts, [3.0, 2.0])


class TestDistinctClamp:
    def test_duplicates_still_clamp(self):
        points = np.tile(np.array([[1.0, 2.0], [3.0, 4.0]]), (5, 1))
        result = kmeans(points, n_clusters=5, rng=0)
        assert result.n_clusters == 2
        assert len(np.unique(result.labels)) == 2

    def test_projection_collision_does_not_overclamp(self):
        # Rows chosen to collide under the 1-D screening projection; the
        # clamp must fall back to exact row uniqueness and keep k=2.
        points = np.array([[1.0, 2.0], [2.0, 1.5], [1.0, 2.0], [2.0, 1.5]])
        result = kmeans(points, n_clusters=2, rng=0)
        assert result.n_clusters == 2

    def test_distinct_points_skip_unique_scan(self, monkeypatch):
        import importlib

        km = importlib.import_module("repro.clustering.kmeans")
        points, _ = _blobs(n_per=20, k=3, dim=4, seed=1)
        real_unique = np.unique

        def guarded(arr, *args, **kwargs):
            if kwargs.get("axis") == 0:
                raise AssertionError("np.unique(points, axis=0) should be skipped")
            return real_unique(arr, *args, **kwargs)

        monkeypatch.setattr(km.np, "unique", guarded)
        result = km.kmeans(points, n_clusters=3, rng=0)
        assert result.n_clusters == 3
