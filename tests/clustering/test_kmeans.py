"""K-means variants: quality, invariants, and degenerate inputs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering.kmeans import assign_to_centers, kmeans, kmeans_plus_plus
from repro.utils.config import KMeansConfig


def _blobs(n_per=30, k=3, dim=4, spread=0.3, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=5.0, size=(k, dim))
    points = np.concatenate(
        [centers[i] + rng.normal(scale=spread, size=(n_per, dim)) for i in range(k)]
    )
    labels = np.repeat(np.arange(k), n_per)
    return points, labels


def _agreement(pred, truth):
    """Best-case label agreement via majority mapping (purity)."""
    total = 0
    for c in np.unique(pred):
        members = truth[pred == c]
        total += np.bincount(members).max()
    return total / len(truth)


ALGOS = ["lloyd", "minibatch", "single_pass"]


class TestQuality:
    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_recovers_blobs(self, algorithm):
        points, truth = _blobs()
        result = kmeans(points, 3, KMeansConfig(algorithm=algorithm), rng=0)
        assert _agreement(result.labels, truth) > 0.9

    def test_lloyd_at_least_as_good_as_single_pass(self):
        points, _ = _blobs(seed=3)
        lloyd = kmeans(points, 3, KMeansConfig(algorithm="lloyd"), rng=0)
        single = kmeans(points, 3, KMeansConfig(algorithm="single_pass"), rng=0)
        assert lloyd.inertia <= single.inertia * 1.2

    def test_n_init_improves_or_ties(self):
        points, _ = _blobs(k=4, seed=5)
        one = kmeans(points, 4, KMeansConfig(n_init=1), rng=7)
        many = kmeans(points, 4, KMeansConfig(n_init=5), rng=7)
        assert many.inertia <= one.inertia + 1e-9


class TestInvariants:
    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_labels_match_nearest_center(self, algorithm):
        points, _ = _blobs()
        result = kmeans(points, 3, KMeansConfig(algorithm=algorithm), rng=0)
        relabeled, inertia = assign_to_centers(points, result.centers)
        assert np.array_equal(relabeled, result.labels)
        assert inertia == pytest.approx(result.inertia)

    def test_labels_dense_range(self):
        points, _ = _blobs()
        result = kmeans(points, 3, rng=0)
        assert result.labels.min() >= 0
        assert result.labels.max() < result.n_clusters

    def test_deterministic_given_seed(self):
        points, _ = _blobs()
        a = kmeans(points, 3, rng=11)
        b = kmeans(points, 3, rng=11)
        assert np.array_equal(a.labels, b.labels)


class TestDegenerate:
    def test_k_clamped_to_distinct_points(self):
        points = np.zeros((10, 2))
        result = kmeans(points, 5, rng=0)
        assert result.n_clusters == 1
        assert result.inertia == pytest.approx(0.0)

    def test_k_equals_n(self):
        points = np.arange(8, dtype=float).reshape(4, 2)
        result = kmeans(points, 4, rng=0)
        assert result.n_clusters == 4
        assert result.inertia == pytest.approx(0.0)

    def test_single_point(self):
        result = kmeans(np.array([[1.0, 2.0]]), 3, rng=0)
        assert result.n_clusters == 1

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((0, 2)), 2)

    def test_bad_k_raises(self):
        with pytest.raises(ValueError):
            kmeans(np.ones((3, 2)), 0)

    def test_1d_points_raise(self):
        with pytest.raises(ValueError):
            kmeans(np.ones(5), 2)

    def test_empty_cluster_reseeded(self):
        # Outlier far away forces a potential empty cluster on re-assign.
        points = np.vstack([np.zeros((20, 2)), np.ones((20, 2)), [[100.0, 100.0]]])
        result = kmeans(points, 3, KMeansConfig(algorithm="lloyd"), rng=0)
        assert len(np.unique(result.labels)) == 3


class TestSeeding:
    def test_plus_plus_spreads_centers(self):
        points, _ = _blobs(k=3, spread=0.1, seed=2)
        centers = kmeans_plus_plus(points, 3, np.random.default_rng(0))
        dists = [
            np.linalg.norm(centers[i] - centers[j])
            for i in range(3)
            for j in range(i + 1, 3)
        ]
        assert min(dists) > 1.0  # blob centers are ~5 apart


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 200), k=st.integers(1, 6))
def test_property_inertia_nonnegative_and_centers_finite(seed, k):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(25, 3))
    result = kmeans(points, k, rng=rng)
    assert result.inertia >= 0
    assert np.all(np.isfinite(result.centers))
    assert len(result.labels) == 25
