"""Bipartite GraphSAGE: shapes, modes, aggregators, gradients."""

import numpy as np
import pytest

from repro.core.sage import BipartiteGraphSAGE
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import random_bipartite
from repro.nn.gradcheck import check_gradient
from repro.utils.config import SageConfig


@pytest.fixture()
def graph():
    return random_bipartite(12, 10, 40, feature_dim=6, rng=0)


def _module(graph, **overrides):
    cfg = SageConfig(
        embedding_dim=8, neighbor_samples=(4, 3), **overrides
    )
    return BipartiteGraphSAGE(
        graph.user_features.shape[1], graph.item_features.shape[1], cfg, rng=0
    )


class TestShapes:
    def test_user_item_embeddings(self, graph):
        mod = _module(graph)
        zu = mod.embed_users(graph, np.arange(5))
        zi = mod.embed_items(graph, np.arange(7))
        assert zu.shape == (5, 8)
        assert zi.shape == (7, 8)

    def test_embed_all(self, graph):
        mod = _module(graph)
        zu, zi = mod.embed_all(graph, batch_size=5)
        assert zu.shape == (graph.num_users, 8)
        assert zi.shape == (graph.num_items, 8)

    def test_single_step(self, graph):
        mod = BipartiteGraphSAGE(
            6, 6, SageConfig(embedding_dim=8, num_steps=1, neighbor_samples=(3,)), rng=0
        )
        assert mod.embed_users(graph, np.arange(3)).shape == (3, 8)

    def test_embed_all_deterministic_eval(self, graph):
        # embed_all switches to eval mode; repeated calls may differ only
        # through neighbour sampling, which uses the internal RNG —
        # so rows are finite and shaped, not necessarily identical.
        mod = _module(graph)
        zu, _ = mod.embed_all(graph)
        assert np.all(np.isfinite(zu))


class TestValidation:
    def test_missing_features_raise(self):
        g = BipartiteGraph(3, 3, np.array([[0, 0]]))
        mod = BipartiteGraphSAGE(4, 4, SageConfig(embedding_dim=4), rng=0)
        with pytest.raises(ValueError):
            mod.embed_users(g, np.arange(2))

    def test_feature_dim_mismatch(self, graph):
        mod = BipartiteGraphSAGE(9, 9, SageConfig(embedding_dim=4), rng=0)
        with pytest.raises(ValueError):
            mod.embed_users(graph, np.arange(2))

    def test_shared_space_requires_equal_dims(self):
        with pytest.raises(ValueError):
            BipartiteGraphSAGE(4, 6, SageConfig(shared_space=True))


class TestSharedSpace:
    def test_matrices_are_shared(self, graph):
        mod = _module(graph, shared_space=True)
        assert mod.user_transform[0] is mod.item_transform[0]
        assert mod.user_weight[0] is mod.item_weight[0]
        # Parameter list contains no duplicates.
        ids = [id(p) for p in mod.parameters()]
        assert len(ids) == len(set(ids))

    def test_split_space_matrices_differ(self, graph):
        mod = _module(graph)
        assert mod.user_transform[0] is not mod.item_transform[0]


class TestIsolatedVertices:
    def test_isolated_vertex_gets_finite_embedding(self):
        g = BipartiteGraph(
            3,
            3,
            np.array([[0, 0]]),
            user_features=np.ones((3, 4)),
            item_features=np.ones((3, 4)),
        )
        mod = BipartiteGraphSAGE(4, 4, SageConfig(embedding_dim=4, neighbor_samples=(2, 2)), rng=0)
        z = mod.embed_users(g, np.array([1, 2]))
        assert np.all(np.isfinite(z.data))


class TestAggregators:
    @pytest.mark.parametrize("agg", ["mean", "sum", "max", "weighted_mean"])
    def test_all_aggregators_run(self, graph, agg):
        mod = _module(graph, aggregator=agg)
        z = mod.embed_users(graph, np.arange(4))
        assert np.all(np.isfinite(z.data))

    def test_unknown_aggregator_rejected_by_config(self):
        with pytest.raises(ValueError):
            SageConfig(aggregator="median")


class TestGradients:
    def test_gradcheck_through_module(self):
        # Gradcheck needs a deterministic forward: use fan-outs covering
        # every neighbour of a tiny dense graph so sampling is exhaustive
        # ... sampling with replacement is still stochastic, so instead
        # freeze the sample RNG per call by reseeding.
        g = random_bipartite(4, 4, 12, feature_dim=3, rng=0)
        cfg = SageConfig(embedding_dim=4, num_steps=1, neighbor_samples=(4,))
        mod = BipartiteGraphSAGE(3, 3, cfg, rng=0)

        def loss():
            mod._sample_rng = np.random.default_rng(123)  # freeze sampling
            z = mod.embed_users(g, np.arange(4))
            return (z * z).sum()

        check_gradient(loss, mod.parameters(), atol=1e-3, rtol=1e-2)

    def test_gradients_reach_all_parameters(self, graph):
        mod = _module(graph)
        z = mod.embed_users(graph, np.arange(6))
        (z * z).sum().backward()
        touched = sum(1 for p in mod.parameters() if p.grad is not None)
        # At least the user-side parameters of both steps receive grads.
        assert touched >= 4
