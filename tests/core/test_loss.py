"""The unsupervised J_BG loss and similarity head."""

import numpy as np
import pytest

from repro.core.loss import EdgeSimilarityHead, bipartite_graph_loss, _repeat_rows
from repro.nn.tensor import Tensor


def _embeddings(n, d=6, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=(n, d)), requires_grad=True)


class TestHead:
    @pytest.mark.parametrize("mode", ["mlp", "dot", "hybrid"])
    def test_output_shape(self, mode):
        head = EdgeSimilarityHead(6, mode=mode, rng=0)
        out = head(_embeddings(5), _embeddings(5, seed=1), np.ones(5))
        assert out.shape == (5,)

    def test_dot_mode_matches_scaled_dot(self):
        head = EdgeSimilarityHead(4, mode="dot")
        a, b = _embeddings(3, 4), _embeddings(3, 4, seed=1)
        out = head(a, b, np.ones(3))
        expected = (a.data * b.data).sum(axis=1) / 2.0  # 1/sqrt(4)
        assert np.allclose(out.data, expected)

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            EdgeSimilarityHead(4, mode="bilinear")

    def test_dot_mode_has_no_parameters(self):
        assert EdgeSimilarityHead(4, mode="dot").parameters() == []

    def test_weight_feature_influences_mlp(self):
        head = EdgeSimilarityHead(4, mode="mlp", rng=0)
        a, b = _embeddings(3, 4), _embeddings(3, 4, seed=1)
        out1 = head(a, b, np.ones(3))
        out2 = head(a, b, np.full(3, 100.0))
        assert not np.allclose(out1.data, out2.data)


class TestLoss:
    def _compute(self, mode="hybrid", q=2, batch=4):
        head = EdgeSimilarityHead(6, mode=mode, rng=0)
        zu, zi = _embeddings(batch), _embeddings(batch, seed=1)
        znu = _embeddings(batch * q, seed=2)
        zni = _embeddings(batch * q, seed=3)
        return bipartite_graph_loss(
            head, zu, zi, np.ones(batch), znu, zni,
            gamma=1.0, q_user_weight=float(q), q_item_weight=float(q),
        )

    def test_scalar_and_positive(self):
        loss = self._compute()
        assert loss.size == 1
        assert loss.item() > 0

    def test_backward_flows_to_embeddings(self):
        head = EdgeSimilarityHead(6, mode="hybrid", rng=0)
        zu, zi = _embeddings(4), _embeddings(4, seed=1)
        znu, zni = _embeddings(8, seed=2), _embeddings(8, seed=3)
        loss = bipartite_graph_loss(head, zu, zi, np.ones(4), znu, zni, gamma=1.0)
        loss.backward()
        assert zu.grad is not None and np.any(zu.grad != 0)
        assert zni.grad is not None and np.any(zni.grad != 0)

    def test_empty_batch_raises(self):
        head = EdgeSimilarityHead(6, rng=0)
        with pytest.raises(ValueError):
            bipartite_graph_loss(
                head, _embeddings(0), _embeddings(0), np.zeros(0),
                _embeddings(0), _embeddings(0), gamma=1.0,
            )

    def test_aligned_positives_score_lower_loss(self):
        # Identical user/item embeddings (perfect similarity) should give
        # lower loss under the dot head than anti-aligned ones.
        head = EdgeSimilarityHead(6, mode="dot")
        z = _embeddings(8)
        zeros = Tensor(np.zeros((0, 6)))
        aligned = bipartite_graph_loss(
            head, z, Tensor(z.data), np.ones(8), zeros, zeros, gamma=1.0
        )
        anti = bipartite_graph_loss(
            head, z, Tensor(-z.data), np.ones(8), zeros, zeros, gamma=1.0
        )
        assert aligned.item() < anti.item()

    def test_more_negatives_increase_loss(self):
        small = self._compute(q=1)
        large = self._compute(q=4)
        assert large.item() > small.item()


class TestRepeatRows:
    def test_tiles_preserving_rows(self):
        t = _embeddings(3, 2)
        out = _repeat_rows(t, 2)
        assert out.shape == (6, 2)
        assert np.allclose(out.data[:3], t.data)
        assert np.allclose(out.data[3:], t.data)

    def test_reps_one_is_identity(self):
        t = _embeddings(3, 2)
        assert _repeat_rows(t, 1) is t

    def test_gradient_accumulates_over_copies(self):
        t = _embeddings(2, 2)
        _repeat_rows(t, 3).sum().backward()
        assert np.allclose(t.grad, 3.0)
