"""Unsupervised-embedding diagnostics."""

import numpy as np
import pytest

from repro.core.evaluate import (
    cluster_purity,
    item_retrieval_recall,
    link_prediction_auc,
    normalized_mutual_information,
)
from repro.graph.generators import block_bipartite, random_bipartite


@pytest.fixture(scope="module")
def planted():
    graph, user_blocks, item_blocks = block_bipartite(
        n_blocks=3, users_per_block=12, items_per_block=10, p_in=0.5, p_out=0.02, rng=0
    )
    # Ideal embeddings: block one-hot vectors.
    zu = np.eye(3)[user_blocks] * 3.0
    zi = np.eye(3)[item_blocks] * 3.0
    return graph, zu, zi, user_blocks


class TestLinkPrediction:
    def test_ideal_embeddings_score_high(self, planted):
        graph, zu, zi, _ = planted
        # Block one-hots cannot rank within-block pairs, so the ceiling is
        # set by the planted block structure (~0.8), far above chance.
        assert link_prediction_auc(graph, zu, zi, rng=0) > 0.75

    def test_random_embeddings_near_half(self, planted):
        graph, zu, zi, _ = planted
        rng = np.random.default_rng(0)
        value = link_prediction_auc(
            graph, rng.normal(size=zu.shape), rng.normal(size=zi.shape), rng=1
        )
        assert 0.3 < value < 0.7

    def test_empty_graph_raises(self):
        from repro.graph.bipartite import BipartiteGraph

        g = BipartiteGraph(2, 2, np.zeros((0, 2), dtype=int))
        with pytest.raises(ValueError):
            link_prediction_auc(g, np.ones((2, 2)), np.ones((2, 2)))


class TestRetrieval:
    def test_ideal_embeddings_beat_random(self, planted):
        graph, zu, zi, _ = planted
        good = item_retrieval_recall(graph, zu, zi, k=10, rng=0)
        rng = np.random.default_rng(1)
        bad = item_retrieval_recall(
            graph, rng.normal(size=zu.shape), rng.normal(size=zi.shape), k=10, rng=0
        )
        assert good > bad


class TestClusterScores:
    def test_purity_perfect(self):
        labels = np.array([0, 0, 1, 1])
        assert cluster_purity(labels, labels) == 1.0

    def test_purity_permutation_invariant(self):
        ref = np.array([0, 0, 1, 1])
        labels = np.array([1, 1, 0, 0])
        assert cluster_purity(labels, ref) == 1.0

    def test_purity_mixed(self):
        ref = np.array([0, 1, 0, 1])
        labels = np.array([0, 0, 0, 0])
        assert cluster_purity(labels, ref) == 0.5

    def test_nmi_perfect_and_independent(self):
        ref = np.array([0, 0, 1, 1, 2, 2])
        assert normalized_mutual_information(ref, ref) == pytest.approx(1.0)
        # Single-cluster labelling carries zero information.
        assert normalized_mutual_information(np.zeros(6, dtype=int), ref) == 0.0

    def test_nmi_shape_check(self):
        with pytest.raises(ValueError):
            normalized_mutual_information(np.zeros(3, dtype=int), np.zeros(4, dtype=int))

    def test_nmi_symmetric(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 3, 60)
        b = rng.integers(0, 4, 60)
        assert normalized_mutual_information(a, b) == pytest.approx(
            normalized_mutual_information(b, a), abs=1e-9
        )
