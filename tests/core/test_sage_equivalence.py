"""Numerical equivalence of the hot-path rewrites in BipartiteGraphSAGE.

The dedup-frontier recursion and the layer-wise ``embed_all`` must
compute exactly what the naive recursion computes whenever neighbour
sampling is a pure function of the vertex.  These tests install such a
deterministic sampler (first neighbours, cycled to the fan-out) and
assert the rewrites agree with the retained reference paths.
"""

import numpy as np
import pytest

from repro.core.sage import BipartiteGraphSAGE
from repro.graph.generators import random_bipartite
from repro.graph.sampling import NeighborSampler
from repro.utils.config import SageConfig


class DeterministicSampler:
    """Sample the first ``fanout`` neighbours, cycled — a pure function.

    Mimics the ``NeighborSampler`` interface; carries the module's
    ``_sample_rng`` so the per-graph sampler cache accepts it.
    """

    def __init__(self, graph, rng=None):
        self.graph = graph
        self.rng = rng

    def _take(self, csr, ids, fanout):
        out = np.full((len(ids), fanout), -1, dtype=np.int64)
        for row, vertex in enumerate(np.asarray(ids)):
            neigh = csr.indices[csr.indptr[vertex] : csr.indptr[vertex + 1]]
            if len(neigh):
                out[row] = neigh[np.arange(fanout) % len(neigh)]
        return out

    def sample_items_for_users(self, users, fanout):
        return self._take(self.graph._user_csr, users, fanout)

    def sample_users_for_items(self, items, fanout):
        return self._take(self.graph._item_csr, items, fanout)


@pytest.fixture()
def graph():
    return random_bipartite(30, 25, 120, feature_dim=6, rng=0)


def _module(graph, deterministic=True, **overrides):
    cfg = SageConfig(embedding_dim=8, neighbor_samples=(4, 3), **overrides)
    mod = BipartiteGraphSAGE(
        graph.user_features.shape[1], graph.item_features.shape[1], cfg, rng=0
    )
    if deterministic:
        mod._sampler_cache = (graph, DeterministicSampler(graph, mod._sample_rng))
    return mod


IDS_WITH_DUPES = np.array([0, 3, 3, -1, 7, 0, 12, -1, 3])


class TestDedupEquivalence:
    @pytest.mark.parametrize("aggregator", ["mean", "sum", "max", "weighted_mean"])
    def test_dedup_matches_naive(self, graph, aggregator):
        mod = _module(graph, aggregator=aggregator)
        for side in ("user", "item"):
            a = mod._embed(graph, IDS_WITH_DUPES, 2, side, dedup=True)
            b = mod._embed(graph, IDS_WITH_DUPES, 2, side, dedup=False)
            np.testing.assert_allclose(a.data, b.data, atol=1e-12)

    def test_dedup_matches_naive_shared_space(self, graph):
        mod = _module(graph, shared_space=True)
        a = mod._embed(graph, IDS_WITH_DUPES, 2, "user", dedup=True)
        b = mod._embed(graph, IDS_WITH_DUPES, 2, "user", dedup=False)
        np.testing.assert_allclose(a.data, b.data, atol=1e-12)

    def test_invalid_ids_produce_zero_rows(self, graph):
        mod = _module(graph)
        z = mod._embed(graph, np.array([-1, 2, -1]), 2, "user", dedup=True)
        assert np.allclose(z.data[[0, 2]], 0.0)
        assert not np.allclose(z.data[1], 0.0)

    def test_gradients_match_naive(self, graph):
        mod = _module(graph)
        ids = np.array([0, 3, 3, 7, 0])
        grads = {}
        for dedup in (True, False):
            mod.zero_grad()
            z = mod._embed(graph, ids, 2, "user", dedup=dedup)
            (z * z).sum().backward()
            grads[dedup] = {
                name: None if p.grad is None else p.grad.copy()
                for name, p in mod.named_parameters()
            }
        assert grads[True].keys() == grads[False].keys()
        touched = 0
        for name, g_dedup in grads[True].items():
            g_naive = grads[False][name]
            if g_dedup is None and g_naive is None:
                continue
            touched += 1
            np.testing.assert_allclose(g_dedup, g_naive, atol=1e-10, err_msg=name)
        assert touched >= 4  # duplicated ids accumulate identically


class TestLayerwiseEquivalence:
    @pytest.mark.parametrize("aggregator", ["mean", "sum", "max"])
    def test_layerwise_matches_recursive(self, graph, aggregator):
        mod = _module(graph, aggregator=aggregator)
        zu_layer, zi_layer = mod.embed_all(graph, batch_size=7, mode="layerwise")
        zu_rec, zi_rec = mod.embed_all(graph, batch_size=7, mode="recursive")
        np.testing.assert_allclose(zu_layer, zu_rec, atol=1e-12)
        np.testing.assert_allclose(zi_layer, zi_rec, atol=1e-12)

    def test_layerwise_matches_naive_recursive(self, graph):
        mod = _module(graph)
        zu_layer, _ = mod.embed_all(graph, mode="layerwise")
        mod.dedup_frontier = False
        zu_naive, _ = mod.embed_all(graph, mode="recursive")
        np.testing.assert_allclose(zu_layer, zu_naive, atol=1e-12)

    def test_layerwise_default_is_finite_and_shaped(self, graph):
        mod = _module(graph, deterministic=False)  # real sampler
        zu, zi = mod.embed_all(graph, batch_size=11)
        assert zu.shape == (graph.num_users, 8)
        assert zi.shape == (graph.num_items, 8)
        assert np.all(np.isfinite(zu)) and np.all(np.isfinite(zi))

    def test_unknown_mode_rejected(self, graph):
        mod = _module(graph)
        with pytest.raises(ValueError):
            mod.embed_all(graph, mode="bogus")

    def test_streaming_mode_matches_layerwise_shapes(self, graph):
        mod = _module(graph, deterministic=False)
        zu, zi = mod.embed_all(graph, mode="streaming")
        assert zu.shape == (graph.num_users, 8)
        assert zi.shape == (graph.num_items, 8)
        assert np.all(np.isfinite(zu)) and np.all(np.isfinite(zi))


class TestSamplerCache:
    def test_sampler_reused_per_graph(self, graph):
        mod = _module(graph, deterministic=False)
        assert mod._sampler(graph) is mod._sampler(graph)

    def test_sampler_rebuilt_for_new_graph(self, graph):
        mod = _module(graph, deterministic=False)
        first = mod._sampler(graph)
        other = random_bipartite(10, 8, 30, feature_dim=6, rng=1)
        assert mod._sampler(other) is not first

    def test_sampler_rebuilt_when_rng_swapped(self, graph):
        mod = _module(graph, deterministic=False)
        first = mod._sampler(graph)
        mod._sample_rng = np.random.default_rng(123)
        rebuilt = mod._sampler(graph)
        assert rebuilt is not first
        assert isinstance(rebuilt, NeighborSampler)
