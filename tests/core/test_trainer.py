"""Unsupervised GraphSAGE training on planted-structure graphs."""

import numpy as np
import pytest

from repro.core.sage import BipartiteGraphSAGE
from repro.core.trainer import SageTrainer
from repro.utils.config import SageConfig, TrainConfig


@pytest.fixture(scope="module")
def trained(block_graph_module):
    graph, user_blocks, item_blocks = block_graph_module
    cfg = SageConfig(embedding_dim=8, neighbor_samples=(5, 3))
    module = BipartiteGraphSAGE(
        graph.user_features.shape[1], graph.item_features.shape[1], cfg, rng=0
    )
    trainer = SageTrainer(
        module, graph, TrainConfig(epochs=8, batch_size=128, learning_rate=5e-3), rng=0
    )
    result = trainer.fit()
    return graph, user_blocks, item_blocks, module, result


@pytest.fixture(scope="module")
def block_graph_module():
    from repro.graph.generators import block_bipartite

    return block_bipartite(
        n_blocks=3, users_per_block=15, items_per_block=12, p_in=0.4, p_out=0.02, rng=0
    )


class TestTraining:
    def test_loss_decreases(self, trained):
        *_, result = trained
        assert result.epoch_losses[-1] < result.epoch_losses[0]

    def test_loss_history_length(self, trained):
        *_, result = trained
        assert len(result.epoch_losses) == 8

    def test_embeddings_separate_blocks(self, trained):
        graph, user_blocks, _, module, _ = trained
        zu, _ = module.embed_all(graph)
        centroids = np.stack([zu[user_blocks == b].mean(axis=0) for b in range(3)])
        within = float(np.mean([zu[user_blocks == b].std() for b in range(3)]))
        between = float(
            np.mean(
                [
                    np.linalg.norm(centroids[i] - centroids[j])
                    for i in range(3)
                    for j in range(i + 1, 3)
                ]
            )
        )
        assert between > within

    def test_positive_pairs_score_above_negatives(self, trained):
        graph, *_, module, _ = trained
        zu, zi = module.embed_all(graph)
        pos = np.mean(
            [zu[u] @ zi[i] for u, i in graph.edges[:100]]
        )
        rng = np.random.default_rng(0)
        neg = np.mean(
            [
                zu[rng.integers(graph.num_users)] @ zi[rng.integers(graph.num_items)]
                for _ in range(100)
            ]
        )
        assert pos > neg

    def test_zero_epochs_is_noop(self, block_graph_module):
        graph, *_ = block_graph_module
        cfg = SageConfig(embedding_dim=4)
        module = BipartiteGraphSAGE(
            graph.user_features.shape[1], graph.item_features.shape[1], cfg, rng=0
        )
        result = SageTrainer(module, graph, TrainConfig(epochs=0), rng=0).fit()
        assert result.epoch_losses == []
        assert np.isnan(result.final_loss)

    def test_deterministic_given_seed(self, block_graph_module):
        graph, *_ = block_graph_module

        def run():
            cfg = SageConfig(embedding_dim=4, neighbor_samples=(3, 2))
            module = BipartiteGraphSAGE(
                graph.user_features.shape[1], graph.item_features.shape[1], cfg, rng=3
            )
            trainer = SageTrainer(
                module, graph, TrainConfig(epochs=1, batch_size=64), rng=3
            )
            return trainer.fit().final_loss

        assert run() == pytest.approx(run())
