"""HiGNN (Algorithm 1) end-to-end behaviour."""

import numpy as np
import pytest

from repro.core.hignn import HiGNN
from repro.utils.config import HiGNNConfig, KMeansConfig, SageConfig, TrainConfig


def _fast_config(levels=2, **kmeans_kw):
    return HiGNNConfig(
        levels=levels,
        cluster_decay=3.0,
        initial_user_clusters=0.3,
        initial_item_clusters=0.3,
        sage=SageConfig(embedding_dim=8, neighbor_samples=(4, 3)),
        kmeans=KMeansConfig(**kmeans_kw),
        train=TrainConfig(epochs=3, batch_size=128, learning_rate=5e-3),
    )


@pytest.fixture(scope="module")
def fitted(block_graph_module):
    graph, user_blocks, item_blocks = block_graph_module
    hierarchy = HiGNN(_fast_config(), seed=0).fit(graph)
    return graph, user_blocks, item_blocks, hierarchy


@pytest.fixture(scope="module")
def block_graph_module():
    from repro.graph.generators import block_bipartite

    return block_bipartite(
        n_blocks=3, users_per_block=15, items_per_block=12, p_in=0.4, p_out=0.02, rng=0
    )


class TestAlgorithm1:
    def test_level_count(self, fitted):
        *_, hierarchy = fitted
        assert hierarchy.num_levels == 2

    def test_graphs_shrink(self, fitted):
        *_, hierarchy = fitted
        for record in hierarchy.levels:
            assert record.coarse_graph.num_users <= record.graph.num_users
            assert record.coarse_graph.num_items <= record.graph.num_items

    def test_weight_conserved_across_levels(self, fitted):
        graph, *_, hierarchy = fitted
        for record in hierarchy.levels:
            assert record.coarse_graph.total_weight == pytest.approx(
                graph.total_weight
            )

    def test_embedding_shapes(self, fitted):
        graph, *_, hierarchy = fitted
        zu = hierarchy.hierarchical_user_embeddings()
        zi = hierarchy.hierarchical_item_embeddings()
        assert zu.shape == (graph.num_users, 2 * 8)
        assert zi.shape == (graph.num_items, 2 * 8)

    def test_assignments_dense(self, fitted):
        *_, hierarchy = fitted
        for record in hierarchy.levels:
            labels = record.user_assignment
            assert set(labels.tolist()) == set(range(labels.max() + 1))

    def test_clusters_recover_planted_blocks(self, fitted):
        _, user_blocks, _, hierarchy = fitted
        # At some level the user clusters should align with the 3 blocks
        # far better than chance (purity > 0.6 vs chance 0.33).
        best = 0.0
        for level in range(1, hierarchy.num_levels + 1):
            membership = hierarchy.user_membership(level)
            if level == 1:
                membership = hierarchy.levels[0].user_assignment
            purity = 0
            for c in np.unique(membership):
                members = user_blocks[membership == c]
                purity += np.bincount(members).max()
            best = max(best, purity / len(user_blocks))
        assert best > 0.6

    def test_requires_features(self):
        from repro.graph.bipartite import BipartiteGraph

        bare = BipartiteGraph(3, 3, np.array([[0, 0]]))
        with pytest.raises(ValueError):
            HiGNN(_fast_config(), seed=0).fit(bare)

    def test_modules_recorded_per_level(self, fitted):
        pass  # covered implicitly; modules_ tested below on a fresh fit

    def test_deterministic(self, block_graph_module):
        graph, *_ = block_graph_module
        a = HiGNN(_fast_config(levels=1), seed=7).fit(graph)
        b = HiGNN(_fast_config(levels=1), seed=7).fit(graph)
        assert np.allclose(
            a.hierarchical_user_embeddings(), b.hierarchical_user_embeddings()
        )

    def test_early_stop_on_degenerate_graph(self, block_graph_module):
        graph, *_ = block_graph_module
        config = _fast_config(levels=6)
        hierarchy = HiGNN(config, seed=0).fit(graph)
        assert hierarchy.num_levels <= 6
        last = hierarchy.levels[-1].coarse_graph
        # either we ran all levels or stopped because the graph degenerated
        if hierarchy.num_levels < 6:
            assert min(last.num_users, last.num_items) <= config.min_clusters


class TestAutoK:
    def test_auto_k_runs_and_bounds(self, block_graph_module):
        graph, *_ = block_graph_module
        config = _fast_config(levels=1, auto_k=True)
        hierarchy = HiGNN(config, seed=0).fit(graph)
        coarse = hierarchy.levels[0].coarse_graph
        assert 2 <= coarse.num_users < graph.num_users

    def test_single_pass_kmeans_variant(self, block_graph_module):
        graph, *_ = block_graph_module
        config = _fast_config(levels=1, algorithm="single_pass")
        hierarchy = HiGNN(config, seed=0).fit(graph)
        assert hierarchy.num_levels == 1
