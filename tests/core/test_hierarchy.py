"""HierarchicalEmbeddings: membership chains and z^H concatenation."""

import numpy as np
import pytest

from repro.core.hierarchy import HierarchicalEmbeddings, LevelRecord
from repro.graph.bipartite import BipartiteGraph


def _graph(nu, ni):
    return BipartiteGraph(nu, ni, np.array([[0, 0]]))


def _hierarchy():
    """Hand-built 2-level hierarchy: 6 users / 4 items -> 3x2 -> 2x1."""
    level1 = LevelRecord(
        level=1,
        graph=_graph(6, 4),
        user_embeddings=np.arange(12, dtype=float).reshape(6, 2),
        item_embeddings=np.arange(8, dtype=float).reshape(4, 2),
        user_assignment=np.array([0, 0, 1, 1, 2, 2]),
        item_assignment=np.array([0, 0, 1, 1]),
        coarse_graph=_graph(3, 2),
    )
    level2 = LevelRecord(
        level=2,
        graph=_graph(3, 2),
        user_embeddings=np.array([[100.0, 0], [200.0, 0], [300.0, 0]]),
        item_embeddings=np.array([[10.0, 1], [20.0, 1]]),
        user_assignment=np.array([0, 0, 1]),
        item_assignment=np.array([0, 0]),
        coarse_graph=_graph(2, 1),
    )
    return HierarchicalEmbeddings(levels=[level1, level2])


class TestMembership:
    def test_level1_identity(self):
        h = _hierarchy()
        assert np.array_equal(h.user_membership(1), np.arange(6))
        assert np.array_equal(h.item_membership(1), np.arange(4))

    def test_level2_composition(self):
        h = _hierarchy()
        assert np.array_equal(h.user_membership(2), [0, 0, 1, 1, 2, 2])
        assert np.array_equal(h.item_membership(2), [0, 0, 1, 1])

    def test_out_of_range_level(self):
        h = _hierarchy()
        with pytest.raises(ValueError):
            h.user_membership(0)
        with pytest.raises(ValueError):
            h.user_membership(3)

    def test_empty_hierarchy_raises(self):
        with pytest.raises(ValueError):
            HierarchicalEmbeddings().user_membership(1)


class TestLevelEmbeddings:
    def test_level1_direct(self):
        h = _hierarchy()
        z = h.user_level_embeddings(1)
        assert np.allclose(z, np.arange(12).reshape(6, 2))

    def test_level2_via_cluster(self):
        h = _hierarchy()
        z = h.user_level_embeddings(2)
        assert np.allclose(z[:, 0], [100, 100, 200, 200, 300, 300])

    def test_item_side(self):
        h = _hierarchy()
        z = h.item_level_embeddings(2)
        assert np.allclose(z[:, 0], [10, 10, 20, 20])


class TestHierarchicalConcat:
    def test_full_concat_shape(self):
        h = _hierarchy()
        zu = h.hierarchical_user_embeddings()
        assert zu.shape == (6, 4)
        zi = h.hierarchical_item_embeddings()
        assert zi.shape == (4, 4)

    def test_max_level_truncation(self):
        h = _hierarchy()
        zu = h.hierarchical_user_embeddings(max_level=1)
        assert zu.shape == (6, 2)
        assert np.allclose(zu, h.user_level_embeddings(1))

    def test_level_blocks_ordered(self):
        h = _hierarchy()
        zu = h.hierarchical_user_embeddings()
        assert np.allclose(zu[:, :2], h.user_level_embeddings(1))
        assert np.allclose(zu[:, 2:], h.user_level_embeddings(2))


class TestClusterViews:
    def test_item_clusters_level1(self):
        h = _hierarchy()
        clusters = h.item_clusters_at_level(1)
        assert set(clusters) == {0, 1}
        assert np.array_equal(clusters[0], [0, 1])
        assert np.array_equal(clusters[1], [2, 3])

    def test_user_clusters_level2(self):
        h = _hierarchy()
        clusters = h.user_clusters_at_level(2)
        assert np.array_equal(clusters[0], [0, 1, 2, 3])
        assert np.array_equal(clusters[1], [4, 5])

    def test_clusters_partition_items(self):
        h = _hierarchy()
        for level in (1, 2):
            clusters = h.item_clusters_at_level(level)
            combined = np.sort(np.concatenate(list(clusters.values())))
            assert np.array_equal(combined, np.arange(4))
