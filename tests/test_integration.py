"""End-to-end integration tests across package boundaries.

These run the real pipelines at miniature scale with fixed seeds and
check the *directional* claims of the paper: graph methods beat the
graph-free baseline, HiGNN's taxonomy clusters beat raw text features,
and the serving simulator rewards better models.
"""

import numpy as np
import pytest

from repro.core.hignn import HiGNN
from repro.data import load_dataset, load_query_dataset
from repro.metrics import auc
from repro.prediction import CVRTrainConfig, FeatureAssembler, train_cvr_model
from repro.prediction.experiment import method_representations
from repro.utils.config import HiGNNConfig, SageConfig, TrainConfig

FAST = HiGNNConfig(
    levels=2,
    sage=SageConfig(embedding_dim=16),
    train=TrainConfig(epochs=5, batch_size=256, learning_rate=3e-3),
)


@pytest.fixture(scope="module")
def fitted_world():
    dataset = load_dataset("mini-taobao1", size="tiny", seed=0)
    hierarchy = HiGNN(FAST, seed=0).fit(dataset.graph)
    return dataset, hierarchy


class TestPredictionPipeline:
    def test_hignn_features_beat_chance(self, fitted_world):
        dataset, hierarchy = fitted_world
        ur, ir, inter = method_representations(hierarchy, "hignn")
        assembler = FeatureAssembler.for_dataset(dataset, ur, ir, interactions=inter)
        x, y = assembler.assemble_samples(dataset.train)
        model, _ = train_cvr_model(x, y, CVRTrainConfig(epochs=10), rng=0)
        x_test, y_test = assembler.assemble_samples(dataset.test)
        value = auc(y_test, model.predict_proba(x_test))
        assert value > 0.55

    def test_embeddings_reflect_communities(self, fitted_world):
        dataset, hierarchy = fitted_world
        truth = dataset.ground_truth
        zu = hierarchy.user_level_embeddings(1)
        # Users sharing a home leaf should be closer than random pairs.
        rng = np.random.default_rng(0)
        same, diff = [], []
        homes = truth.user_home_leaf_index
        for _ in range(300):
            a, b = rng.integers(0, len(zu), size=2)
            d = float(np.linalg.norm(zu[a] - zu[b]))
            (same if homes[a] == homes[b] else diff).append(d)
        assert np.mean(same) < np.mean(diff)

    def test_hierarchy_cluster_purity_beats_chance(self, fitted_world):
        dataset, hierarchy = fitted_world
        truth = dataset.ground_truth
        labels = hierarchy.levels[0].user_assignment
        purity = 0
        for c in np.unique(labels):
            members = truth.user_home_leaf_index[labels == c]
            purity += np.bincount(members).max()
        purity /= len(labels)
        chance = 1.0 / truth.tree.n_leaves
        assert purity > 2 * chance


class TestTaxonomyPipeline:
    def test_full_taxonomy_flow(self):
        from repro.taxonomy import (
            TaxonomyPipelineConfig,
            build_taxonomy,
            describe_taxonomy,
            evaluate_taxonomy,
            fit_query_item_hignn,
        )

        dataset = load_query_dataset(size="tiny", seed=0)
        config = TaxonomyPipelineConfig(
            levels=2,
            embedding_dim=8,
            word2vec_dim=8,
            sage_epochs=8,
            word2vec_epochs=2,
        )
        hierarchy, w2v = fit_query_item_hignn(dataset, config, rng=0)
        taxonomy = build_taxonomy(hierarchy, dataset)
        describe_taxonomy(taxonomy, dataset)
        scores = evaluate_taxonomy(taxonomy, dataset)
        chance = 1.0 / dataset.tree.n_leaves
        assert scores["accuracy"] > 2 * chance
        assert all(t.description for t in taxonomy.topics.values())
        # Shared space: word2vec must hold vectors for query tokens too.
        assert w2v.document_vector(dataset.query_texts[0]).shape == (8,)


class TestServingPipeline:
    def test_model_arm_beats_popularity(self, fitted_world):
        from repro.prediction.experiment import method_representations
        from repro.serving import (
            PopularityRecommender,
            ScoreTableRecommender,
            cvr_score_table,
            run_ab_test,
        )

        dataset, hierarchy = fitted_world
        truth = dataset.ground_truth
        candidates = np.flatnonzero(truth.new_items)
        ur, ir, inter = method_representations(hierarchy, "hignn")
        assembler = FeatureAssembler.for_dataset(dataset, ur, ir, interactions=inter)
        x, y = assembler.assemble_samples(dataset.train)
        model, _ = train_cvr_model(x, y, CVRTrainConfig(epochs=10), rng=0)
        table = cvr_score_table(model, assembler, dataset.num_users, candidates)
        treatment = ScoreTableRecommender(table, candidates)
        clicks = np.zeros(dataset.num_items)
        np.add.at(clicks, dataset.log.items, dataset.log.clicks.astype(float))
        control = PopularityRecommender(clicks, candidates)
        report = run_ab_test(
            truth, control, treatment,
            num_days=1, visitors_per_day=600, slate_size=5,
            candidate_items=candidates, rng=0,
        )
        assert report.mean_lift("CTR") > 0
