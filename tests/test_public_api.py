"""Public-API integrity: exports exist and __all__ lists are honest."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.nn",
    "repro.graph",
    "repro.clustering",
    "repro.text",
    "repro.data",
    "repro.core",
    "repro.prediction",
    "repro.taxonomy",
    "repro.serving",
    "repro.metrics",
    "repro.utils",
    "repro.obs",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_entries_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} missing __all__"
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol} listed but missing"


@pytest.mark.parametrize("name", PACKAGES)
def test_docstrings_present(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} has no module docstring"


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


def test_top_level_classes_documented():
    import repro

    for symbol in repro.__all__:
        obj = getattr(repro, symbol)
        if isinstance(obj, type) or callable(obj):
            assert obj.__doc__, f"repro.{symbol} lacks a docstring"
