"""Shared fixtures.

Expensive artifacts (datasets, fitted hierarchies) are session-scoped so
the suite stays fast while many test modules can exercise them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_dataset, load_query_dataset
from repro.graph.generators import block_bipartite, random_bipartite


@pytest.fixture(scope="session")
def tiny_dataset():
    """The tiny mini-taobao1 preset (shared, treat as read-only)."""
    return load_dataset("mini-taobao1", size="tiny", seed=0)


@pytest.fixture(scope="session")
def tiny_cold_dataset():
    return load_dataset("mini-taobao2", size="tiny", seed=0)


@pytest.fixture(scope="session")
def tiny_query_dataset():
    return load_query_dataset(size="tiny", seed=0)


@pytest.fixture(scope="session")
def block_graph():
    """Stochastic block bipartite graph with planted co-communities."""
    graph, user_blocks, item_blocks = block_bipartite(
        n_blocks=3, users_per_block=15, items_per_block=12, p_in=0.4, p_out=0.02, rng=0
    )
    return graph, user_blocks, item_blocks


@pytest.fixture()
def small_random_graph():
    return random_bipartite(20, 15, 60, feature_dim=6, rng=1)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


@pytest.fixture(autouse=True)
def _no_leaked_monitors():
    """Fail any test that leaves a ResourceMonitor thread running.

    The runtime twin of lint rule RPR304: monitors must die with their
    owning ``with`` block.  Leaked ones are stopped here so one bad test
    doesn't poison the rest of the session, then the test is failed.
    """
    from repro.obs import monitor as _monitor

    installed_before = _monitor._MONITOR
    yield
    leaked = _monitor.active_monitors()
    for mon in leaked:
        mon.stop()
    if _monitor._MONITOR is not installed_before:
        _monitor._MONITOR = installed_before
    assert not leaked, (
        f"test leaked {len(leaked)} running ResourceMonitor(s); "
        "use `with ResourceMonitor(...)` so sampling stops at block exit"
    )
