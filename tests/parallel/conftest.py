"""Shared-memory leak guard for every test in this package."""

import pytest

from repro.parallel import active_segment_names


@pytest.fixture(autouse=True)
def _no_leaked_segments():
    """Fail any test that exits with an owner segment still registered.

    A leaked segment outlives the process in /dev/shm, so this is the
    one resource where "some other test will notice" is not true.
    """
    before = active_segment_names()
    yield
    leaked = active_segment_names() - before
    assert not leaked, f"test leaked shared-memory segments: {sorted(leaked)}"
