"""Seeded runs are bitwise-identical at any worker count.

The ISSUE-4 determinism contract: every parallelised hot path
(layer-wise ``embed_all``, k-means restarts + chunked assignment, the
CVR score table) must produce *exactly* the same floats at ``workers=1``
and ``workers=4`` for the same seed, and must leave no shared-memory
segments behind.  Each run builds its model fresh from the seed so the
two sides consume identical RNG streams.
"""

import numpy as np
import pytest

from repro.clustering.kmeans import assign_to_centers, kmeans
from repro.core.sage import BipartiteGraphSAGE
from repro.graph.generators import random_bipartite
from repro.parallel import WorkerPool, active_segment_names, shutdown_pools
from repro.prediction.cvr_model import CVRModel
from repro.prediction.features import FeatureAssembler
from repro.serving.pipeline import cvr_score_table
from repro.utils.config import KMeansConfig, SageConfig

pytestmark = pytest.mark.parallel


@pytest.fixture(scope="module", autouse=True)
def _shutdown_cached_pools():
    yield
    shutdown_pools()  # don't leave warm 4-worker pools behind the module


def _sage_embeddings(workers):
    graph = random_bipartite(40, 30, 160, feature_dim=6, rng=0)
    cfg = SageConfig(embedding_dim=8, neighbor_samples=(4, 3))
    mod = BipartiteGraphSAGE(
        graph.user_features.shape[1], graph.item_features.shape[1], cfg, rng=0
    )
    return mod.embed_all(graph, batch_size=7, mode="layerwise", workers=workers)


class TestEmbedAllEquivalence:
    def test_bitwise_identical_across_worker_counts(self):
        zu1, zi1 = _sage_embeddings(workers=1)
        zu4, zi4 = _sage_embeddings(workers=4)
        assert np.array_equal(zu1, zu4)
        assert np.array_equal(zi1, zi4)
        assert active_segment_names() == set()


class TestObsStateEquivalence:
    def test_histogram_state_identical_across_worker_counts(self):
        """Worker-merged histogram state (counts, sums, buckets and the
        derived percentiles) is identical at workers=1 and workers=4 —
        the ISSUE-4 bitwise contract extended to metrics."""
        from repro import obs

        snaps = {}
        for workers in (1, 4):
            with obs.observe() as session:
                _sage_embeddings(workers=workers)
            snaps[workers] = session.registry.snapshot()
        h1 = snaps[1]["histograms"]
        h4 = snaps[4]["histograms"]
        assert "sage.frontier_size" in h1
        assert h1 == h4
        assert snaps[1]["counters"] == snaps[4]["counters"]
        assert active_segment_names() == set()


class TestKMeansEquivalence:
    @pytest.mark.parametrize("algorithm", ["lloyd", "minibatch", "single_pass"])
    def test_restarts_bitwise_identical(self, algorithm):
        points = np.random.default_rng(3).normal(size=(300, 4))
        config = KMeansConfig(
            algorithm=algorithm, n_init=3, max_iter=15, batch_size=64
        )
        serial = kmeans(points, 5, config, rng=7, workers=1)
        fanned = kmeans(points, 5, config, rng=7, workers=4)
        assert np.array_equal(serial.centers, fanned.centers)
        assert np.array_equal(serial.labels, fanned.labels)
        assert serial.inertia == fanned.inertia
        assert active_segment_names() == set()

    def test_chunked_assignment_matches_serial(self):
        # n >= _ASSIGN_MIN_N (4096) takes the fixed-chunk fan-out path.
        points = np.random.default_rng(5).normal(size=(5000, 3))
        centers = np.random.default_rng(6).normal(size=(7, 3))
        labels_serial, inertia_serial = assign_to_centers(points, centers)
        with WorkerPool(4) as pool:
            labels_par, inertia_par = assign_to_centers(points, centers, pool=pool)
        assert np.array_equal(labels_serial, labels_par)
        assert inertia_serial == inertia_par
        assert active_segment_names() == set()


class TestScoreTableEquivalence:
    def test_bitwise_identical_across_worker_counts(self):
        rng = np.random.default_rng(11)
        assembler = FeatureAssembler(
            rng.normal(size=(64, 8)), rng.normal(size=(20, 8))
        )
        model = CVRModel(assembler.feature_dim, hidden=(16, 8), rng=0)
        candidates = np.arange(16)
        serial = cvr_score_table(
            model, assembler, 64, candidates, batch_users=8, workers=1
        )
        fanned = cvr_score_table(
            model, assembler, 64, candidates, batch_users=8, workers=4
        )
        assert np.array_equal(serial, fanned)
        assert active_segment_names() == set()
