"""SharedMatrix lifecycle: zero-copy views, pickling, guaranteed cleanup."""

import pickle
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.parallel import (
    SharedMatrix,
    WorkerPool,
    active_segment_names,
    as_ndarray,
    shared_arrays,
)


class TestSharedMatrix:
    def test_roundtrip_values(self):
        data = np.random.default_rng(0).normal(size=(37, 5))
        handle = SharedMatrix.from_array(data)
        try:
            assert np.array_equal(handle.array, data)
            assert handle.array.dtype == data.dtype
        finally:
            handle.destroy()

    def test_view_is_read_only(self):
        handle = SharedMatrix.from_array(np.ones((4, 4)))
        try:
            view = handle.array
            assert not view.flags.writeable
            with pytest.raises(ValueError):
                view[0, 0] = 2.0
        finally:
            handle.destroy()

    def test_pickle_attaches_by_name(self):
        data = np.arange(12.0).reshape(3, 4)
        owner = SharedMatrix.from_array(data)
        try:
            # The pickled payload is tiny metadata, never the matrix.
            blob = pickle.dumps(owner)
            assert len(blob) < 512
            attached = pickle.loads(blob)
            try:
                assert attached.name == owner.name
                assert np.array_equal(attached.array, data)
            finally:
                attached.close()
        finally:
            owner.destroy()

    def test_destroy_unlinks_segment(self):
        handle = SharedMatrix.from_array(np.zeros(8))
        name = handle.name
        assert name in active_segment_names()
        handle.destroy()
        assert name not in active_segment_names()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_destroy_idempotent(self):
        handle = SharedMatrix.from_array(np.zeros(3))
        handle.destroy()
        handle.destroy()  # second call is a no-op

    def test_empty_array(self):
        handle = SharedMatrix.from_array(np.empty((0, 4)))
        try:
            assert handle.array.shape == (0, 4)
        finally:
            handle.destroy()

    def test_as_ndarray_passthrough(self):
        plain = np.ones(3)
        assert as_ndarray(plain) is plain
        handle = SharedMatrix.from_array(plain)
        try:
            assert np.array_equal(as_ndarray(handle), plain)
        finally:
            handle.destroy()


class TestSharedArrays:
    def test_serial_pool_passes_arrays_through(self):
        a, b = np.ones(3), np.zeros(2)
        with shared_arrays(WorkerPool(1), a, b) as (ha, hb):
            assert ha is a and hb is b  # no copies, no segments
        assert active_segment_names() == set()

    def test_none_pool_passes_arrays_through(self):
        a = np.ones(3)
        with shared_arrays(None, a) as (ha,):
            assert ha is a

    @pytest.mark.parallel
    def test_parallel_pool_shares_and_cleans_up(self):
        pool = WorkerPool(2)
        try:
            a = np.random.default_rng(1).normal(size=(9, 3))
            with shared_arrays(pool, a) as (handle,):
                assert isinstance(handle, SharedMatrix)
                assert np.array_equal(handle.array, a)
                assert handle.name in active_segment_names()
            assert active_segment_names() == set()
        finally:
            pool.shutdown()

    def test_owner_unlinks_segment_when_body_raises(self):
        # Regression guard that needs no fork: any object advertising
        # parallel=True makes shared_arrays allocate real segments, so
        # the error-path unlink is exercised in-process.
        class _FanoutPool:
            parallel = True

        data = np.arange(12.0).reshape(3, 4)
        with pytest.raises(RuntimeError):
            with shared_arrays(_FanoutPool(), data) as (handle,):
                assert isinstance(handle, SharedMatrix)
                name = handle.name
                assert name in active_segment_names()
                raise RuntimeError("boom")
        assert name not in active_segment_names()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    @pytest.mark.parallel
    def test_cleanup_on_exception(self):
        pool = WorkerPool(2)
        try:
            with pytest.raises(RuntimeError):
                with shared_arrays(pool, np.ones(5)):
                    raise RuntimeError("boom")
            assert active_segment_names() == set()
        finally:
            pool.shutdown()
