"""WorkerPool semantics: serial fallback, ordering, obs merge, timeouts."""

import os
import time

import numpy as np
import pytest

import repro.obs as obs
from repro.obs.metrics import counter_add
from repro.obs.trace import span
from repro.parallel import WorkerPool, configure, get_pool
from repro.parallel import pool as pool_mod


# Task functions must be module-level so worker processes can resolve
# them by reference.
def _double(task, context):
    return task * 2


def _pid_task(task, context):
    return os.getpid()


def _context_sum(task, context):
    return float(np.asarray(context).sum()) + task


def _sleepy(task, context):
    time.sleep(task)
    return task


def _boom(task, context):
    raise ValueError(f"task {task} failed")


def _counted(task, context):
    counter_add("test.pool.tasks", 1)
    with span("test.pool.inner"):
        return task


@pytest.fixture
def restore_config():
    """Keep the module-global ParallelConfig pristine across tests."""
    workers = pool_mod._CONFIG.workers
    timeout = pool_mod._CONFIG.map_timeout_s
    yield
    pool_mod._CONFIG.workers = workers
    pool_mod._CONFIG.map_timeout_s = timeout


class TestSerialFallback:
    def test_workers_one_never_spawns(self):
        pool = WorkerPool(1)
        assert not pool.parallel
        assert pool.map(_double, range(10)) == [t * 2 for t in range(10)]
        assert pool._pool is None  # no process pool was ever created

    def test_empty_tasks(self):
        assert WorkerPool(1).map(_double, []) == []
        pool = WorkerPool(2)
        try:
            assert pool.map(_double, []) == []
            assert pool._pool is None  # empty map short-circuits
        finally:
            pool.shutdown()

    def test_configure_sets_default(self, restore_config):
        configure(workers=3)
        assert get_pool().workers == 3
        assert get_pool(2).workers == 2

    def test_configure_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            configure(workers=0)


@pytest.mark.parallel
class TestParallelMap:
    def test_preserves_task_order(self):
        with WorkerPool(2) as pool:
            assert pool.map(_double, range(50)) == [t * 2 for t in range(50)]

    def test_runs_in_worker_processes(self):
        with WorkerPool(2) as pool:
            pids = set(pool.map(_pid_task, range(8)))
        assert os.getpid() not in pids

    def test_large_context_broadcast(self):
        # 1.6 MB context exceeds the inline threshold -> shared-memory
        # broadcast path, deserialised once per worker.
        context = np.ones(200_000)
        with WorkerPool(2) as pool:
            results = pool.map(_context_sum, [1, 2, 3], context=context)
        assert results == [200_001.0, 200_002.0, 200_003.0]

    def test_worker_exception_propagates(self):
        with WorkerPool(2) as pool:
            with pytest.raises(ValueError, match="failed"):
                pool.map(_boom, range(3))
            # The pool survives task failures.
            assert pool.map(_double, [5]) == [10]

    def test_timeout_raises_and_pool_recovers(self):
        with WorkerPool(2) as pool:
            with pytest.raises(TimeoutError, match="timed out"):
                pool.map(_sleepy, [5.0, 5.0], timeout=0.3)
            # The wedged pool was terminated; the next map gets a new one.
            assert pool.map(_double, [2]) == [4]

    def test_shutdown_idempotent(self):
        pool = WorkerPool(2)
        pool.map(_double, [1])
        pool.shutdown()
        pool.shutdown()
        # And usable again after shutdown (lazily recreated).
        assert pool.map(_double, [3]) == [6]
        pool.shutdown()


@pytest.mark.parallel
class TestObsPropagation:
    def test_counters_merge_into_parent(self):
        with WorkerPool(2) as pool:
            with obs.observe() as session:
                pool.map(_counted, range(6), label="counted")
            assert session.counter("test.pool.tasks") == 6

    def test_spans_adopted_into_parent_trace(self):
        with WorkerPool(2) as pool:
            with obs.observe() as session:
                with obs.span("outer"):
                    pool.map(_counted, range(4), label="counted")
        names = [s.name for s, _ in session.tracer.all_spans()]
        assert "parallel.map" in names
        assert names.count("counted") == 4  # one adopted span per task
        assert names.count("test.pool.inner") == 4  # nested worker spans
        # Worker spans land under the parent's open span, not as roots.
        assert [root.name for root in session.tracer.roots] == ["outer"]

    def test_serial_map_spans(self):
        with obs.observe() as session:
            WorkerPool(1).map(_counted, range(3), label="counted")
        names = [s.name for s, _ in session.tracer.all_spans()]
        assert names.count("counted") == 3
        assert session.counter("test.pool.tasks") == 3
