"""Tier-1 smoke of the bench harness's shard section (quick grid only)."""

from repro.shard import active_shard_dirs
from repro.utils.bench import SHARD_SIZES, _bench_shard, dense_footprint_mb


def test_quick_shard_rows():
    before = active_shard_dirs()
    rows = _bench_shard("quick", seed=0, repeats=1, workers=1)
    assert active_shard_dirs() == before  # no stray stores left behind
    assert len(rows) == len(SHARD_SIZES["quick"])
    row = rows[0]
    assert row["variant"] == "embed_sharded_smoke"
    assert row["bitwise_equal"] is True
    assert row["edges_shard_local"] >= 0.9
    assert row["build_s"] > 0 and row["after_s"] > 0
    # One count per vertex per propagation step (two steps configured).
    assert row["vertices_embedded"] == 2 * (
        row["graph"]["num_users"] + row["graph"]["num_items"]
    )
    assert set(row) >= {"num_shards", "workers", "before_s", "speedup"}


def test_dense_footprint_formula():
    # 1e6 vertices at the tracked full-mode spec: the floor the sharded
    # child's peak RSS is compared against must be nontrivially large.
    mb = dense_footprint_mb(600_000, 400_000, 4_800_000, 16)
    assert 250 < mb < 1000
    assert dense_footprint_mb(0, 0, 0, 16) < 0.001  # only empty indptrs
