"""Streamed cluster-structured worlds written straight to shard files."""

import numpy as np
import pytest

from repro.data import StreamedWorldConfig, stream_world_to_shards
from repro.graph import BipartiteGraph

_CFG = StreamedWorldConfig(
    num_users=1500,
    num_items=1000,
    num_clusters=12,
    mean_degree=5.0,
    feature_dim=6,
    chunk_users=400,
)


def test_deterministic_per_seed(tmp_path):
    with stream_world_to_shards(tmp_path / "a", _CFG, num_shards=4, seed=3) as a:
        with stream_world_to_shards(tmp_path / "b", _CFG, num_shards=4, seed=3) as b:
            ga, gb = a.to_graph(), b.to_graph()
            assert np.array_equal(ga.edges, gb.edges)
            assert np.array_equal(ga.edge_weights, gb.edge_weights)
            assert np.array_equal(ga.user_features, gb.user_features)
            assert np.array_equal(ga.item_features, gb.item_features)
        with stream_world_to_shards(tmp_path / "c", _CFG, num_shards=4, seed=4) as c:
            assert c.num_edges != a.num_edges or not np.array_equal(
                c.to_graph().edges, ga.edges
            )


def test_cluster_packing_keeps_edges_local(tmp_path):
    with stream_world_to_shards(tmp_path / "w", _CFG, num_shards=4, seed=0) as store:
        assert store.partition == "stream-cluster"
        assert store.edges_shard_local >= 0.9


def test_world_is_a_valid_graph(tmp_path):
    with stream_world_to_shards(tmp_path / "w", _CFG, num_shards=3, seed=1) as store:
        graph = store.to_graph()
        # Revalidates ids, weight positivity, and dedup via the ctor.
        rebuilt = BipartiteGraph(
            graph.num_users, graph.num_items, graph.edges, graph.edge_weights
        )
        assert rebuilt.num_edges == store.num_edges
        assert graph.user_degrees().min() >= 1  # every user clicked
        assert graph.edge_weights.min() >= 1.0  # weights count clicks
        assert store.feature_dim("user") == _CFG.feature_dim
        assert store.features("item").shape == (_CFG.num_items, _CFG.feature_dim)


def test_config_validation():
    with pytest.raises(ValueError):
        StreamedWorldConfig(num_users=0)
    with pytest.raises(ValueError):
        StreamedWorldConfig(within_cluster=1.5)
    with pytest.raises(ValueError):
        StreamedWorldConfig(mean_degree=0.0)
    with pytest.raises(ValueError):
        StreamedWorldConfig(chunk_users=0)
