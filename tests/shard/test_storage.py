"""ShardedCSR storage: round-trips, lifecycle, block access."""

import numpy as np
import pytest

from repro.graph import BipartiteGraph
from repro.graph.generators import random_bipartite
from repro.shard import ShardedCSR, active_shard_dirs


def _world(seed=0, users=80, items=60, edges=400):
    return random_bipartite(users, items, edges, feature_dim=5, rng=seed)


def _edge_table(graph):
    order = np.lexsort((graph.edges[:, 1], graph.edges[:, 0]))
    return graph.edges[order], graph.edge_weights[order]


def _assert_same_graph(a, b):
    assert (a.num_users, a.num_items, a.num_edges) == (
        b.num_users,
        b.num_items,
        b.num_edges,
    )
    ea, wa = _edge_table(a)
    eb, wb = _edge_table(b)
    assert np.array_equal(ea, eb)
    assert np.array_equal(wa, wb)


class TestRoundTrip:
    @pytest.mark.parametrize("num_shards", [1, 4, 17])
    def test_to_sharded_from_sharded(self, tmp_path, num_shards):
        graph = _world()
        store = graph.to_sharded(tmp_path / "s", num_shards=num_shards)
        try:
            assert store.num_shards == num_shards
            assert store.num_edges == graph.num_edges
            back = BipartiteGraph.from_sharded(tmp_path / "s")
            _assert_same_graph(graph, back)
            assert np.array_equal(graph.user_features, back.user_features)
            assert np.array_equal(graph.item_features, back.item_features)
        finally:
            store.destroy()
        assert not (tmp_path / "s").exists()

    def test_empty_shards_roundtrip(self, tmp_path):
        # Every vertex on shard 0 of 3: shards 1 and 2 hold zero rows.
        graph = _world(users=10, items=8, edges=30)
        user_shard = np.zeros(10, dtype="<i4")
        item_shard = np.zeros(8, dtype="<i4")
        with graph.to_sharded(
            tmp_path / "s", num_shards=3, user_shard=user_shard, item_shard=item_shard
        ) as store:
            assert store.edges_shard_local == 1.0
            assert len(store.shard_rows("user", 1)) == 0
            assert len(store.shard_rows("item", 2)) == 0
            _assert_same_graph(graph, store.to_graph())

    def test_isolated_vertices_roundtrip(self, tmp_path):
        # Vertices with degree 0 must survive the trip with their ids.
        graph = BipartiteGraph(6, 5, np.array([[0, 0], [0, 2], [5, 4]]))
        with graph.to_sharded(tmp_path / "s", num_shards=4) as store:
            back = store.to_graph()
            _assert_same_graph(graph, back)
            assert np.array_equal(store.degrees("user"), graph.user_degrees())
            assert np.array_equal(store.degrees("item"), graph.item_degrees())

    def test_per_row_neighbor_order_preserved(self, tmp_path):
        graph = _world(seed=3)
        with graph.to_sharded(tmp_path / "s", num_shards=5) as store:
            for user in range(graph.num_users):
                ids, weights = store.neighbors("user", user)
                assert np.array_equal(ids, graph.item_neighbors(user))
                assert np.array_equal(weights, graph.item_neighbor_weights(user))
            for item in range(graph.num_items):
                ids, weights = store.neighbors("item", item)
                assert np.array_equal(ids, graph.user_neighbors(item))
                assert np.array_equal(weights, graph.user_neighbor_weights(item))


class TestLifecycle:
    def test_existing_store_refused(self, tmp_path):
        graph = _world(users=10, items=8, edges=20)
        with graph.to_sharded(tmp_path / "s", num_shards=2):
            with pytest.raises(FileExistsError):
                graph.to_sharded(tmp_path / "s", num_shards=2)

    def test_open_missing_path(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ShardedCSR.open(tmp_path / "nope")

    def test_owner_registered_until_destroy(self, tmp_path):
        graph = _world(users=10, items=8, edges=20)
        store = graph.to_sharded(tmp_path / "s", num_shards=2)
        assert str(tmp_path / "s") in active_shard_dirs()
        store.destroy()
        assert str(tmp_path / "s") not in active_shard_dirs()
        store.destroy()  # idempotent

    def test_close_keeps_files_and_blocks_access(self, tmp_path):
        graph = _world(users=10, items=8, edges=20)
        store = graph.to_sharded(tmp_path / "s", num_shards=2)
        try:
            attached = ShardedCSR.open(tmp_path / "s")
            attached.close()
            assert (tmp_path / "s").exists()  # non-owner close never deletes
            with pytest.raises(ValueError):
                attached.neighbors("user", 0)  # block reads refuse once closed
            attached.close()  # idempotent
        finally:
            store.destroy()

    def test_attached_handle_sees_same_data(self, tmp_path):
        graph = _world(seed=5, users=20, items=15, edges=90)
        with graph.to_sharded(tmp_path / "s", num_shards=3) as store:
            attached = ShardedCSR.open(tmp_path / "s")
            try:
                assert attached.num_edges == store.num_edges
                assert attached.partition == store.partition
                _assert_same_graph(store.to_graph(), attached.to_graph())
            finally:
                attached.close()

    def test_side_validation(self, tmp_path):
        graph = _world(users=10, items=8, edges=20)
        with graph.to_sharded(tmp_path / "s", num_shards=2) as store:
            with pytest.raises(ValueError):
                store.degrees("query")
            with pytest.raises(ValueError):
                store.neighbors("both", 0)
