"""ShardedNeighborSampler: bitwise draw-stream parity with the dense sampler."""

import numpy as np
import pytest

from repro.graph import BipartiteGraph
from repro.graph.generators import random_bipartite
from repro.graph.sampling import NeighborSampler
from repro.shard import ShardedNeighborSampler


@pytest.mark.parametrize("num_shards", [1, 4, 17])
def test_interleaved_streams_match_dense(tmp_path, num_shards):
    graph = random_bipartite(60, 45, 300, feature_dim=4, rng=2)
    with graph.to_sharded(tmp_path / "s", num_shards=num_shards) as store:
        dense = NeighborSampler(graph, rng=9)
        sharded = ShardedNeighborSampler(store, rng=9)
        users = np.arange(graph.num_users)
        items = np.arange(graph.num_items)
        # Alternate sides and fan-outs: one shared RNG per sampler must
        # stay aligned across the whole call sequence, not per call.
        for fanout in (1, 3, 7):
            assert np.array_equal(
                dense.sample_items_for_users(users, fanout),
                sharded.sample_items_for_users(users, fanout),
            )
            assert np.array_equal(
                dense.sample_users_for_items(items, fanout),
                sharded.sample_users_for_items(items, fanout),
            )


def test_isolated_vertices_marked(tmp_path):
    graph = BipartiteGraph(5, 4, np.array([[0, 0], [2, 3]]))
    with graph.to_sharded(tmp_path / "s", num_shards=2) as store:
        sampler = ShardedNeighborSampler(store, rng=0)
        picked = sampler.sample_items_for_users(np.arange(5), 3)
        assert np.array_equal(picked[1], [-1, -1, -1])
        assert (picked[0] == 0).all()


def test_edgeless_graph_matches_dense(tmp_path):
    graph = BipartiteGraph(4, 3, np.zeros((0, 2), dtype=np.int64))
    with graph.to_sharded(tmp_path / "s", num_shards=2) as store:
        dense = NeighborSampler(graph, rng=1)
        sharded = ShardedNeighborSampler(store, rng=1)
        assert np.array_equal(
            dense.sample_items_for_users(np.arange(4), 2),
            sharded.sample_items_for_users(np.arange(4), 2),
        )


def test_fanout_validated(tmp_path):
    graph = random_bipartite(6, 5, 12, rng=0)
    with graph.to_sharded(tmp_path / "s", num_shards=2) as store:
        with pytest.raises(ValueError):
            ShardedNeighborSampler(store, rng=0).sample_items_for_users(
                np.arange(6), 0
            )
