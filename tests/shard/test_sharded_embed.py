"""Out-of-core embed_all over shard blocks: bitwise parity with dense."""

import numpy as np
import pytest

from repro.core.sage import BipartiteGraphSAGE
from repro.graph.generators import random_bipartite
from repro.utils.config import SageConfig


def _model(seed=3):
    return BipartiteGraphSAGE(
        5, 5, SageConfig(embedding_dim=8, neighbor_samples=(4, 2)), rng=seed
    )


def _world(seed=0):
    return random_bipartite(150, 110, 900, feature_dim=5, rng=seed)


@pytest.mark.parametrize("num_shards", [1, 4, 17])
def test_bitwise_equal_to_dense(tmp_path, num_shards):
    graph = _world()
    with graph.to_sharded(tmp_path / "s", num_shards=num_shards) as store:
        zu_d, zi_d = _model().embed_all(graph, batch_size=64, mode="layerwise")
        zu_s, zi_s = _model().embed_all(store, batch_size=64, workers=1)
        assert np.array_equal(zu_d, np.asarray(zu_s))
        assert np.array_equal(zi_d, np.asarray(zi_s))


@pytest.mark.parallel
def test_bitwise_equal_across_worker_counts(tmp_path):
    graph = _world(seed=7)
    with graph.to_sharded(tmp_path / "s", num_shards=4) as store:
        zu_d, zi_d = _model().embed_all(graph, batch_size=64, mode="layerwise")
        zu_s, zi_s = _model().embed_all(store, batch_size=64, workers=4)
        assert np.array_equal(zu_d, np.asarray(zu_s))
        assert np.array_equal(zi_d, np.asarray(zi_s))


def test_batch_size_does_not_change_result(tmp_path):
    # Chunk boundaries feed the RNG order, so the *same* batch size must
    # match dense (tested above) while a different one changes draws —
    # guard that both paths shift together.
    graph = _world(seed=5)
    with graph.to_sharded(tmp_path / "s", num_shards=3) as store:
        zu_d, _ = _model().embed_all(graph, batch_size=32, mode="layerwise")
        zu_s, _ = _model().embed_all(store, batch_size=32, workers=1)
        assert np.array_equal(zu_d, np.asarray(zu_s))


def test_recursive_mode_rejected(tmp_path):
    graph = _world(seed=1)
    with graph.to_sharded(tmp_path / "s", num_shards=2) as store:
        with pytest.raises(ValueError, match="layerwise"):
            _model().embed_all(store, mode="recursive")


def test_featureless_store_rejected(tmp_path):
    graph = random_bipartite(20, 15, 60, rng=0)  # no features
    with graph.to_sharded(tmp_path / "s", num_shards=2) as store:
        with pytest.raises(ValueError):
            _model().embed_all(store)
