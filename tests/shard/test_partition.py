"""Vertex → shard partitioners: determinism, balance, cluster alignment."""

import numpy as np

from repro.core.hignn import HiGNN
from repro.graph.generators import random_bipartite
from repro.shard import (
    pack_groups,
    partition_balanced,
    partition_by_degree,
    partition_from_hierarchy,
)
from repro.utils.config import HiGNNConfig, TrainConfig


class TestPackGroups:
    def test_deterministic(self):
        sizes = np.array([7, 3, 9, 1, 5, 5])
        a = pack_groups(sizes, 3)
        b = pack_groups(sizes, 3)
        assert np.array_equal(a, b)
        assert a.dtype == np.dtype("<i4")

    def test_loads_balanced(self):
        rng = np.random.default_rng(0)
        sizes = rng.integers(1, 40, size=50)
        assignment = pack_groups(sizes, 4)
        loads = np.bincount(assignment, weights=sizes, minlength=4)
        # LPT guarantee: max load within 4/3 of the perfect split plus
        # one group, far tighter than this sanity bound in practice.
        assert loads.max() <= sizes.sum() / 4 + sizes.max()

    def test_single_shard(self):
        assert np.array_equal(pack_groups(np.array([2, 5]), 1), [0, 0])


class TestPartitionBalanced:
    def test_groups_stay_whole(self):
        labels = np.random.default_rng(1).integers(0, 12, size=300)
        assignment = partition_balanced(labels, 4)
        for label in np.unique(labels):
            shards = np.unique(assignment[labels == label])
            assert len(shards) == 1

    def test_empty_labels(self):
        assert len(partition_balanced(np.array([], dtype=np.int64), 3)) == 0


class TestPartitionByDegree:
    def test_counts_even_and_deterministic(self):
        degrees = np.random.default_rng(2).integers(0, 100, size=101)
        a = partition_by_degree(degrees, 4)
        b = partition_by_degree(degrees, 4)
        assert np.array_equal(a, b)
        counts = np.bincount(a, minlength=4)
        assert counts.max() - counts.min() <= 1

    def test_edge_mass_near_even(self):
        degrees = np.random.default_rng(3).integers(1, 50, size=200)
        assignment = partition_by_degree(degrees, 4)
        mass = np.bincount(assignment, weights=degrees, minlength=4)
        assert mass.max() <= 1.3 * degrees.sum() / 4


class TestPartitionFromHierarchy:
    def test_users_follow_level1_clusters(self):
        graph = random_bipartite(120, 90, 700, feature_dim=6, rng=0)
        hierarchy = HiGNN(
            HiGNNConfig(levels=1, train=TrainConfig(epochs=1, batch_size=128)),
            seed=0,
        ).fit(graph)
        user_shard, item_shard = partition_from_hierarchy(hierarchy, 3)
        assert user_shard.shape == (120,) and item_shard.shape == (90,)
        assert user_shard.max() < 3 and item_shard.max() < 3
        clusters = hierarchy.levels[0].user_assignment
        for cluster in np.unique(clusters):
            assert len(np.unique(user_shard[clusters == cluster])) == 1
