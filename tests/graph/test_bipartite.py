"""BipartiteGraph: construction, CSR queries, invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.bipartite import BipartiteGraph


def _simple_graph():
    edges = np.array([[0, 0], [0, 1], [1, 1], [2, 0]])
    weights = np.array([1.0, 2.0, 3.0, 4.0])
    return BipartiteGraph(3, 2, edges, weights)


class TestConstruction:
    def test_basic_counts(self):
        g = _simple_graph()
        assert g.num_users == 3
        assert g.num_items == 2
        assert g.num_edges == 4
        assert g.total_weight == pytest.approx(10.0)

    def test_default_weights_are_one(self):
        g = BipartiteGraph(2, 2, np.array([[0, 0], [1, 1]]))
        assert np.allclose(g.edge_weights, 1.0)

    def test_duplicate_edges_merge_weights(self):
        g = BipartiteGraph(
            2, 2, np.array([[0, 1], [0, 1], [1, 0]]), np.array([1.0, 2.5, 1.0])
        )
        assert g.num_edges == 2
        assert g.edge_weight(0, 1) == pytest.approx(3.5)

    def test_out_of_range_indices_raise(self):
        with pytest.raises(ValueError):
            BipartiteGraph(2, 2, np.array([[2, 0]]))
        with pytest.raises(ValueError):
            BipartiteGraph(2, 2, np.array([[0, 2]]))

    def test_nonpositive_weight_raises(self):
        with pytest.raises(ValueError):
            BipartiteGraph(2, 2, np.array([[0, 0]]), np.array([0.0]))

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            BipartiteGraph(2, 2, np.array([[0, 0]]), np.array([1.0, 2.0]))

    def test_empty_sides_raise(self):
        with pytest.raises(ValueError):
            BipartiteGraph(0, 2, np.zeros((0, 2)))

    def test_feature_shape_checked(self):
        with pytest.raises(ValueError):
            BipartiteGraph(
                2, 2, np.array([[0, 0]]), user_features=np.zeros((3, 4))
            )


class TestQueries:
    def test_neighbors_both_directions(self):
        g = _simple_graph()
        assert set(g.item_neighbors(0)) == {0, 1}
        assert set(g.user_neighbors(1)) == {0, 1}
        assert set(g.user_neighbors(0)) == {0, 2}

    def test_neighbor_weights_align(self):
        g = _simple_graph()
        neigh = g.item_neighbors(0)
        weights = g.item_neighbor_weights(0)
        lookup = dict(zip(neigh.tolist(), weights.tolist()))
        assert lookup == {0: 1.0, 1: 2.0}

    def test_degrees(self):
        g = _simple_graph()
        assert g.user_degree(0) == 2
        assert g.item_degree(0) == 2
        assert np.array_equal(g.user_degrees(), [2, 1, 1])
        assert np.array_equal(g.item_degrees(), [2, 2])

    def test_has_edge_and_weight(self):
        g = _simple_graph()
        assert g.has_edge(2, 0)
        assert not g.has_edge(2, 1)
        assert g.edge_weight(2, 1) == 0.0

    def test_density(self):
        g = _simple_graph()
        assert g.density == pytest.approx(4 / 6)

    def test_adjacency_matrix(self):
        g = _simple_graph()
        mat = g.adjacency_matrix()
        assert mat.shape == (3, 2)
        assert mat[0, 1] == 2.0
        assert mat[1, 0] == 0.0

    def test_isolated_vertex_has_no_neighbors(self):
        g = BipartiteGraph(3, 3, np.array([[0, 0]]))
        assert len(g.item_neighbors(2)) == 0
        assert len(g.user_neighbors(1)) == 0


class TestDerivedViews:
    def test_with_features_attaches(self):
        g = _simple_graph()
        uf = np.ones((3, 4))
        itf = np.zeros((2, 5))
        g2 = g.with_features(uf, itf)
        assert g2.user_features.shape == (3, 4)
        assert g2.item_features.shape == (2, 5)
        assert g2.num_edges == g.num_edges

    def test_subgraph_by_edges(self):
        g = _simple_graph()
        mask = np.array([True, False, True, False])
        sub = g.subgraph_by_edges(mask)
        assert sub.num_edges == 2
        assert sub.num_users == g.num_users  # vertex sets preserved
        assert sub.has_edge(0, 0)
        assert not sub.has_edge(0, 1)

    def test_subgraph_bad_mask(self):
        with pytest.raises(ValueError):
            _simple_graph().subgraph_by_edges(np.array([True]))

    def test_edge_set(self):
        assert _simple_graph().edge_set() == {(0, 0), (0, 1), (1, 1), (2, 0)}


@settings(max_examples=30, deadline=None)
@given(
    n_users=st.integers(1, 8),
    n_items=st.integers(1, 8),
    seed=st.integers(0, 1000),
)
def test_property_degree_sums_match_edges(n_users, n_items, seed):
    rng = np.random.default_rng(seed)
    n_edges = int(rng.integers(1, n_users * n_items + 1))
    flat = rng.choice(n_users * n_items, size=n_edges, replace=False)
    edges = np.column_stack([flat // n_items, flat % n_items])
    g = BipartiteGraph(n_users, n_items, edges)
    assert g.user_degrees().sum() == g.num_edges
    assert g.item_degrees().sum() == g.num_edges
    # Both CSR directions describe the same edge set.
    from_users = {(u, int(i)) for u in range(n_users) for i in g.item_neighbors(u)}
    from_items = {(int(u), i) for i in range(n_items) for u in g.user_neighbors(i)}
    assert from_users == from_items == g.edge_set()
