"""Random graph generators used as test fixtures and bench workloads."""

import numpy as np
import pytest

from repro.graph.generators import block_bipartite, random_bipartite, star_bipartite


class TestRandomBipartite:
    def test_counts_and_features(self):
        g = random_bipartite(10, 8, 30, feature_dim=5, rng=0)
        assert g.num_users == 10
        assert g.num_items == 8
        assert g.num_edges == 30
        assert g.user_features.shape == (10, 5)
        assert g.item_features.shape == (8, 5)

    def test_no_duplicate_edges(self):
        g = random_bipartite(5, 5, 25, rng=0)
        assert g.num_edges == 25  # sampled without replacement

    def test_too_many_edges_raise(self):
        with pytest.raises(ValueError):
            random_bipartite(2, 2, 5)

    def test_unweighted_option(self):
        g = random_bipartite(5, 5, 10, weighted=False, rng=0)
        assert np.allclose(g.edge_weights, 1.0)

    def test_deterministic(self):
        a = random_bipartite(6, 6, 12, rng=3)
        b = random_bipartite(6, 6, 12, rng=3)
        assert a.edge_set() == b.edge_set()


class TestBlockBipartite:
    def test_planted_structure_dominates(self):
        g, ub, ib = block_bipartite(3, 10, 10, p_in=0.5, p_out=0.01, rng=0)
        in_block = sum(
            1 for u, i in g.edges if ub[u] == ib[i]
        )
        assert in_block / g.num_edges > 0.8

    def test_labels_shapes(self):
        g, ub, ib = block_bipartite(2, 4, 3, rng=0)
        assert len(ub) == g.num_users == 8
        assert len(ib) == g.num_items == 6

    def test_features_separate_blocks(self):
        g, ub, _ = block_bipartite(2, 20, 5, rng=0)
        f = g.user_features
        centroid0 = f[ub == 0].mean(axis=0)
        centroid1 = f[ub == 1].mean(axis=0)
        spread = f[ub == 0].std()
        assert np.linalg.norm(centroid0 - centroid1) > spread


class TestStarBipartite:
    def test_structure(self):
        g = star_bipartite(7)
        assert g.num_users == 1
        assert g.user_degree(0) == 7
        assert all(g.item_degree(i) == 1 for i in range(7))
