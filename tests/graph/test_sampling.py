"""Neighbour/negative samplers and edge batching."""

import numpy as np
import pytest

from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import random_bipartite, star_bipartite
from repro.graph.sampling import NegativeSampler, NeighborSampler, sample_edge_batches


class TestNeighborSampler:
    def test_shapes(self, small_random_graph):
        sampler = NeighborSampler(small_random_graph, rng=0)
        users = np.arange(10)
        out = sampler.sample_items_for_users(users, fanout=4)
        assert out.shape == (10, 4)
        items = np.arange(8)
        out_i = sampler.sample_users_for_items(items, fanout=3)
        assert out_i.shape == (8, 3)

    def test_samples_are_true_neighbors(self, small_random_graph):
        g = small_random_graph
        sampler = NeighborSampler(g, rng=0)
        out = sampler.sample_items_for_users(np.arange(g.num_users), fanout=5)
        for u in range(g.num_users):
            neigh = set(g.item_neighbors(u).tolist())
            sampled = set(out[u].tolist()) - {-1}
            assert sampled <= neigh

    def test_isolated_vertex_padded(self):
        g = BipartiteGraph(3, 3, np.array([[0, 0]]))
        sampler = NeighborSampler(g, rng=0)
        out = sampler.sample_items_for_users(np.array([1, 2]), fanout=3)
        assert np.all(out == -1)

    def test_empty_graph_handles(self):
        g = BipartiteGraph(2, 2, np.zeros((0, 2), dtype=int))
        sampler = NeighborSampler(g, rng=0)
        out = sampler.sample_items_for_users(np.array([0, 1]), fanout=2)
        assert np.all(out == -1)

    def test_star_graph(self):
        g = star_bipartite(5)
        sampler = NeighborSampler(g, rng=0)
        out = sampler.sample_items_for_users(np.array([0]), fanout=10)
        assert set(out[0].tolist()) <= set(range(5))

    def test_invalid_fanout(self, small_random_graph):
        with pytest.raises(ValueError):
            NeighborSampler(small_random_graph).sample_items_for_users(np.arange(2), 0)

    def test_deterministic_with_seed(self, small_random_graph):
        a = NeighborSampler(small_random_graph, rng=5).sample_items_for_users(
            np.arange(5), 3
        )
        b = NeighborSampler(small_random_graph, rng=5).sample_items_for_users(
            np.arange(5), 3
        )
        assert np.array_equal(a, b)

    def test_weighted_sampling_prefers_heavy_edges(self):
        # user 0: item 0 weight 99, item 1 weight 1.
        g = BipartiteGraph(1, 2, np.array([[0, 0], [0, 1]]), np.array([99.0, 1.0]))
        sampler = NeighborSampler(g, rng=0, weighted=True)
        out = sampler.sample_items_for_users(np.zeros(200, dtype=int), fanout=1)
        share_heavy = float(np.mean(out == 0))
        assert share_heavy > 0.9

    def test_weighted_isolated_padded(self):
        g = BipartiteGraph(2, 2, np.array([[0, 0]]))
        sampler = NeighborSampler(g, rng=0, weighted=True)
        out = sampler.sample_items_for_users(np.array([1]), fanout=2)
        assert np.all(out == -1)


class TestNegativeSampler:
    def test_uniform_covers_range(self, small_random_graph):
        sampler = NegativeSampler(small_random_graph, distribution="uniform", rng=0)
        users = sampler.sample_users(500)
        items = sampler.sample_items(500)
        assert users.min() >= 0 and users.max() < small_random_graph.num_users
        assert items.min() >= 0 and items.max() < small_random_graph.num_items

    def test_degree_distribution_prefers_popular(self):
        # item 0 has degree 5, item 4 degree 0.
        edges = np.array([[u, 0] for u in range(5)])
        g = BipartiteGraph(5, 5, edges)
        sampler = NegativeSampler(g, distribution="degree", rng=0)
        items = sampler.sample_items(3000)
        counts = np.bincount(items, minlength=5)
        assert counts[0] > counts[4] > 0  # smoothing keeps isolated reachable

    def test_unknown_distribution(self, small_random_graph):
        with pytest.raises(ValueError):
            NegativeSampler(small_random_graph, distribution="zipf")


class TestEdgeBatches:
    def test_covers_every_edge_once(self, small_random_graph):
        g = small_random_graph
        seen = []
        for users, items, weights in sample_edge_batches(g, batch_size=7, rng=0):
            assert len(users) == len(items) == len(weights)
            seen.extend(zip(users.tolist(), items.tolist()))
        assert sorted(seen) == sorted((int(u), int(i)) for u, i in g.edges)

    def test_batch_size_respected(self, small_random_graph):
        sizes = [
            len(u) for u, _, _ in sample_edge_batches(small_random_graph, 8, rng=0)
        ]
        assert all(s <= 8 for s in sizes)
        assert sum(sizes) == small_random_graph.num_edges

    def test_invalid_batch_size(self, small_random_graph):
        with pytest.raises(ValueError):
            list(sample_edge_batches(small_random_graph, 0))

    def test_no_shuffle_is_stable(self, small_random_graph):
        a = [
            u.tolist()
            for u, _, _ in sample_edge_batches(small_random_graph, 5, shuffle=False)
        ]
        b = [
            u.tolist()
            for u, _, _ in sample_edge_batches(small_random_graph, 5, shuffle=False)
        ]
        assert a == b


class TestWeightedSamplerEquivalence:
    """The batched searchsorted sampler must reproduce the per-row loop
    bit-for-bit: both consume the same rng draw stream, so picks match."""

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_reference_bitwise(self, seed):
        g = random_bipartite(40, 30, 200, rng=seed)
        vertices = np.arange(g.num_users)
        fast = NeighborSampler(g, rng=seed, weighted=True)
        slow = NeighborSampler(g, rng=seed, weighted=True)
        got = fast.sample_items_for_users(vertices, fanout=6)
        want = slow._sample_reference(vertices, fanout=6, side="user")
        np.testing.assert_array_equal(got, want)

    def test_matches_reference_item_side(self):
        g = random_bipartite(25, 35, 150, rng=3)
        vertices = np.arange(g.num_items)
        fast = NeighborSampler(g, rng=7, weighted=True)
        slow = NeighborSampler(g, rng=7, weighted=True)
        got = fast.sample_users_for_items(vertices, fanout=4)
        want = slow._sample_reference(vertices, fanout=4, side="item")
        np.testing.assert_array_equal(got, want)

    def test_matches_reference_with_isolated_and_duplicate_vertices(self):
        g = BipartiteGraph(
            5, 4, np.array([[0, 0], [0, 1], [2, 3]]), np.array([1.0, 3.0, 2.0])
        )
        vertices = np.array([0, 1, 0, 4, 2, 2])  # 1 and 4 are isolated
        fast = NeighborSampler(g, rng=11, weighted=True)
        slow = NeighborSampler(g, rng=11, weighted=True)
        got = fast.sample_items_for_users(vertices, fanout=5)
        want = slow._sample_reference(vertices, fanout=5, side="user")
        np.testing.assert_array_equal(got, want)
        assert np.all(got[[1, 3]] == -1)

    def test_reference_requires_weighted(self, small_random_graph):
        sampler = NeighborSampler(small_random_graph, rng=0, weighted=False)
        with pytest.raises(RuntimeError):
            sampler._sample_reference(np.arange(3), fanout=2, side="user")
