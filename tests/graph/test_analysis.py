"""Structural graph analysis helpers."""

import numpy as np
import pytest

from repro.graph.analysis import (
    connected_components,
    degree_summary,
    giant_component_fraction,
    weight_gini,
)
from repro.graph.bipartite import BipartiteGraph


class TestDegreeSummary:
    def test_values(self):
        g = BipartiteGraph(3, 2, np.array([[0, 0], [0, 1], [1, 0]]))
        stats = degree_summary(g)
        assert stats["user_mean"] == pytest.approx(1.0)
        assert stats["user_max"] == 2
        assert stats["user_isolated"] == 1
        assert stats["item_isolated"] == 0


class TestComponents:
    def test_single_component(self):
        g = BipartiteGraph(2, 2, np.array([[0, 0], [1, 0], [1, 1]]))
        uc, ic = connected_components(g)
        assert len(set(uc) | set(ic)) == 1

    def test_two_components(self):
        g = BipartiteGraph(2, 2, np.array([[0, 0], [1, 1]]))
        uc, ic = connected_components(g)
        assert uc[0] != uc[1]
        assert ic[0] == uc[0]
        assert ic[1] == uc[1]

    def test_isolated_vertices_are_singletons(self):
        g = BipartiteGraph(3, 3, np.array([[0, 0]]))
        uc, ic = connected_components(g)
        # Users 1 and 2 and items 1 and 2 each form their own component.
        all_ids = np.concatenate([uc, ic])
        assert len(np.unique(all_ids)) == 5

    def test_giant_component_fraction(self):
        g = BipartiteGraph(3, 3, np.array([[0, 0], [1, 0], [2, 0]]))
        # Component {u0,u1,u2,i0} out of 6 vertices plus 2 singleton items.
        assert giant_component_fraction(g) == pytest.approx(4 / 6)


class TestGini:
    def test_uniform_weights_zero(self):
        g = BipartiteGraph(2, 2, np.array([[0, 0], [1, 1]]), np.array([2.0, 2.0]))
        assert weight_gini(g) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_weights_high(self):
        g = BipartiteGraph(
            2, 3, np.array([[0, 0], [0, 1], [1, 2]]), np.array([98.0, 1.0, 1.0])
        )
        assert weight_gini(g) > 0.5

    def test_empty_raises(self):
        g = BipartiteGraph(2, 2, np.zeros((0, 2), dtype=int))
        with pytest.raises(ValueError):
            weight_gini(g)
