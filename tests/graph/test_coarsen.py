"""Graph coarsening — Eq. 6 invariants and feature pooling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.bipartite import BipartiteGraph
from repro.graph.coarsen import coarsen, compose_assignments
from repro.graph.generators import random_bipartite


def _embeddings(n, d=4, seed=0):
    return np.random.default_rng(seed).normal(size=(n, d))


class TestCoarsen:
    def test_eq6_weight_conservation(self, small_random_graph):
        g = small_random_graph
        rng = np.random.default_rng(0)
        ua = rng.integers(0, 4, g.num_users)
        ia = rng.integers(0, 3, g.num_items)
        result = coarsen(g, ua, ia, _embeddings(g.num_users), _embeddings(g.num_items))
        assert result.graph.total_weight == pytest.approx(g.total_weight)

    def test_edge_exists_iff_positive_weight(self, small_random_graph):
        g = small_random_graph
        rng = np.random.default_rng(1)
        ua = rng.integers(0, 3, g.num_users)
        ia = rng.integers(0, 3, g.num_items)
        coarse = coarsen(g, ua, ia, _embeddings(g.num_users), _embeddings(g.num_items)).graph
        # Every coarse edge weight equals the sum of member fine edges.
        for cu, ci in coarse.edges:
            members = [
                w
                for (u, i), w in zip(g.edges, g.edge_weights)
                if ua[u] == cu and ia[i] == ci
            ]
            assert coarse.edge_weight(int(cu), int(ci)) == pytest.approx(sum(members))
            assert sum(members) > 0

    def test_cluster_features_are_means(self):
        g = BipartiteGraph(4, 2, np.array([[0, 0], [1, 0], [2, 1], [3, 1]]))
        zu = np.array([[1.0], [3.0], [10.0], [20.0]])
        zi = np.array([[2.0], [4.0]])
        result = coarsen(g, np.array([0, 0, 1, 1]), np.array([0, 1]), zu, zi)
        assert np.allclose(result.graph.user_features, [[2.0], [15.0]])
        assert np.allclose(result.graph.item_features, [[2.0], [4.0]])

    def test_empty_cluster_gets_zero_feature(self):
        g = BipartiteGraph(2, 2, np.array([[0, 0], [1, 1]]))
        # cluster 1 unused on the user side (ids 0 and 2 used).
        ua = np.array([0, 2])
        ia = np.array([0, 0])
        result = coarsen(g, ua, ia, np.ones((2, 3)), np.ones((2, 3)))
        assert np.allclose(result.graph.user_features[1], 0.0)

    def test_assignment_validation(self, small_random_graph):
        g = small_random_graph
        with pytest.raises(ValueError):
            coarsen(g, np.zeros(3, dtype=int), np.zeros(g.num_items, dtype=int),
                    _embeddings(g.num_users), _embeddings(g.num_items))
        with pytest.raises(ValueError):
            coarsen(
                g,
                np.full(g.num_users, -1),
                np.zeros(g.num_items, dtype=int),
                _embeddings(g.num_users),
                _embeddings(g.num_items),
            )

    def test_embedding_length_checked(self, small_random_graph):
        g = small_random_graph
        with pytest.raises(ValueError):
            coarsen(
                g,
                np.zeros(g.num_users, dtype=int),
                np.zeros(g.num_items, dtype=int),
                _embeddings(g.num_users + 1),
                _embeddings(g.num_items),
            )

    def test_all_in_one_cluster(self, small_random_graph):
        g = small_random_graph
        result = coarsen(
            g,
            np.zeros(g.num_users, dtype=int),
            np.zeros(g.num_items, dtype=int),
            _embeddings(g.num_users),
            _embeddings(g.num_items),
        )
        assert result.graph.num_users == 1
        assert result.graph.num_items == 1
        assert result.graph.num_edges == 1
        assert result.graph.total_weight == pytest.approx(g.total_weight)


class TestComposeAssignments:
    def test_two_levels(self):
        level1 = np.array([0, 0, 1, 2])
        level2 = np.array([1, 0, 0])
        composed = compose_assignments([level1, level2])
        assert np.array_equal(composed, [1, 1, 0, 0])

    def test_single_level_identity(self):
        a = np.array([2, 1, 0])
        assert np.array_equal(compose_assignments([a]), a)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            compose_assignments([])


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 500), ku=st.integers(1, 5), ki=st.integers(1, 5))
def test_property_coarsening_conserves_weight(seed, ku, ki):
    rng = np.random.default_rng(seed)
    g = random_bipartite(8, 6, 20, rng=rng)
    ua = rng.integers(0, ku, 8)
    ia = rng.integers(0, ki, 6)
    result = coarsen(g, ua, ia, rng.normal(size=(8, 3)), rng.normal(size=(6, 3)))
    coarse = result.graph
    assert coarse.total_weight == pytest.approx(g.total_weight)
    assert coarse.num_users <= ku
    assert coarse.num_items <= ki
    # No intra-side edges are representable by construction; check the
    # bipartite structure survived (edges reference valid clusters).
    if coarse.num_edges:
        assert coarse.edges[:, 0].max() < coarse.num_users
        assert coarse.edges[:, 1].max() < coarse.num_items
