"""Helpers for fixture-driven rule tests."""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import lint_source


@pytest.fixture
def lint_codes():
    """Lint a dedented snippet; return the non-suppressed finding codes."""

    def run(source: str, path: str = "src/pkg/mod.py") -> list[str]:
        kept, _ = lint_source(textwrap.dedent(source), path)
        return [finding.code for finding in kept]

    return run


@pytest.fixture
def lint_full():
    """Lint a dedented snippet; return ``(kept, suppressed)`` findings."""

    def run(source: str, path: str = "src/pkg/mod.py"):
        return lint_source(textwrap.dedent(source), path)

    return run
