"""End-to-end tests for ``repro lint`` (output formats, baseline, exits)."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.cli import main

DIRTY = """
import time


def stamp(a):
    assert a
    return time.time()
"""

CLEAN = """
def double(x):
    return 2 * x
"""


@pytest.fixture
def project(tmp_path, monkeypatch):
    """An isolated project dir so the repo's own pyproject/baseline stay out."""
    (tmp_path / "pyproject.toml").write_text(
        "[tool.repro.lint]\nbaseline = \"baseline.json\"\n"
    )
    pkg = tmp_path / "src" / "pkg"
    pkg.mkdir(parents=True)
    monkeypatch.chdir(tmp_path)

    def write(name: str, source: str):
        target = pkg / name
        target.write_text(textwrap.dedent(source).lstrip())
        return target

    return write


class TestExitCodes:
    def test_clean_tree_exits_zero(self, project, capsys):
        project("mod.py", CLEAN)
        assert main(["lint", "src"]) == 0
        assert "0 fresh finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, project, capsys):
        project("mod.py", DIRTY)
        assert main(["lint", "src"]) == 1
        out = capsys.readouterr().out
        assert "RPR103" in out
        assert "RPR402" in out

    def test_missing_path_exits_two(self, project, capsys):
        assert main(["lint", "no/such/dir"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_unknown_select_code_exits_two(self, project, capsys):
        project("mod.py", CLEAN)
        assert main(["lint", "src", "--select", "RPR999"]) == 2
        assert "unknown rule codes" in capsys.readouterr().err


class TestOutput:
    def test_text_output_shows_location_and_source(self, project, capsys):
        project("mod.py", DIRTY)
        main(["lint", "src"])
        out = capsys.readouterr().out
        assert "src/pkg/mod.py:5:" in out  # path:line prefix
        assert "assert a" in out  # offending source echoed

    def test_json_output_is_parseable(self, project, capsys):
        project("mod.py", DIRTY)
        assert main(["lint", "src", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        codes = sorted(f["code"] for f in payload["fresh"])
        assert codes == ["RPR103", "RPR402"]
        assert all(f["fingerprint"] for f in payload["fresh"])

    def test_list_rules_prints_table(self, project, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RPR101", "RPR201", "RPR301", "RPR401"):
            assert code in out


class TestSelection:
    def test_select_narrows_to_one_rule(self, project, capsys):
        project("mod.py", DIRTY)
        assert main(["lint", "src", "--select", "RPR402"]) == 1
        payload_out = capsys.readouterr().out
        assert "RPR402" in payload_out
        assert "RPR103" not in payload_out

    def test_disable_drops_a_rule(self, project, capsys):
        project("mod.py", DIRTY)
        assert main(["lint", "src", "--disable", "RPR103,RPR402"]) == 0


class TestBaselineFlow:
    def test_write_baseline_then_clean(self, project, capsys, tmp_path):
        project("mod.py", DIRTY)
        assert main(["lint", "src", "--write-baseline"]) == 0
        written = capsys.readouterr().out
        assert "wrote 2 finding(s)" in written
        assert (tmp_path / "baseline.json").is_file()

        assert main(["lint", "src"]) == 0
        assert "2 baselined" in capsys.readouterr().out

    def test_no_baseline_flag_surfaces_everything(self, project, capsys):
        project("mod.py", DIRTY)
        assert main(["lint", "src", "--write-baseline"]) == 0
        capsys.readouterr()
        assert main(["lint", "src", "--no-baseline"]) == 1

    def test_stale_entry_reported_after_fix(self, project, capsys):
        project("mod.py", DIRTY)
        assert main(["lint", "src", "--write-baseline"]) == 0
        capsys.readouterr()

        project("mod.py", CLEAN)
        assert main(["lint", "src"]) == 0
        out = capsys.readouterr().out
        assert "stale baseline" in out

    def test_corrupt_baseline_exits_two(self, project, capsys, tmp_path):
        project("mod.py", CLEAN)
        (tmp_path / "baseline.json").write_text("{not json")
        assert main(["lint", "src"]) == 2
        assert "cannot read baseline" in capsys.readouterr().err
