"""Fixture tests for the obs-hygiene family (RPR3xx)."""

from __future__ import annotations


class TestSpanNotWith:
    def test_flags_span_assigned_to_variable(self, lint_codes):
        codes = lint_codes(
            """
            from repro.obs import span

            def run():
                sp = span("train.step")
                sp.close()
            """
        )
        assert codes == ["RPR301"]

    def test_flags_qualified_span_call(self, lint_codes):
        codes = lint_codes(
            """
            import repro.obs

            def run():
                sp = repro.obs.span("train.step")
                return sp
            """
        )
        assert codes == ["RPR301"]

    def test_with_span_not_flagged(self, lint_codes):
        codes = lint_codes(
            """
            from repro.obs import span

            def run():
                with span("train.step", epoch=1) as sp:
                    sp.add_event("tick")
            """
        )
        assert codes == []

    def test_unrelated_span_attribute_not_flagged(self, lint_codes):
        codes = lint_codes(
            """
            def width(node):
                return node.span("x")
            """
        )
        assert codes == []


class TestEagerLogFormatting:
    def test_flags_fstring_message(self, lint_codes):
        codes = lint_codes(
            """
            import logging

            logger = logging.getLogger(__name__)

            def report(loss):
                logger.info(f"loss={loss}")
            """
        )
        assert codes == ["RPR302"]

    def test_flags_percent_formatting(self, lint_codes):
        codes = lint_codes(
            """
            import logging

            log = logging.getLogger(__name__)

            def report(loss):
                log.warning("loss=%.4f" % loss)
            """
        )
        assert codes == ["RPR302"]

    def test_flags_str_format_call(self, lint_codes):
        codes = lint_codes(
            """
            import logging

            logger = logging.getLogger(__name__)

            def report(loss):
                logger.debug("loss={}".format(loss))
            """
        )
        assert codes == ["RPR302"]

    def test_flags_concatenated_message(self, lint_codes):
        codes = lint_codes(
            """
            import logging

            logger = logging.getLogger(__name__)

            def report(name):
                logger.error("failed: " + name)
            """
        )
        assert codes == ["RPR302"]

    def test_lazy_formatting_not_flagged(self, lint_codes):
        codes = lint_codes(
            """
            import logging

            logger = logging.getLogger(__name__)

            def report(loss, epoch):
                logger.info("epoch %d loss=%.4f", epoch, loss)
            """
        )
        assert codes == []

    def test_non_logger_receiver_not_flagged(self, lint_codes):
        codes = lint_codes(
            """
            def report(console, loss):
                console.info(f"loss={loss}")
            """
        )
        assert codes == []


class TestAdHocRegistry:
    def test_flags_bare_constructor(self, lint_codes):
        codes = lint_codes(
            """
            from repro.obs import MetricsRegistry

            def make():
                return MetricsRegistry()
            """
        )
        assert codes == ["RPR303"]

    def test_flags_qualified_constructor(self, lint_codes):
        codes = lint_codes(
            """
            import repro.obs.metrics

            def make():
                return repro.obs.metrics.MetricsRegistry()
            """
        )
        assert codes == ["RPR303"]

    def test_helper_functions_not_flagged(self, lint_codes):
        codes = lint_codes(
            """
            from repro.obs import counter_add, gauge_set

            def record(n):
                counter_add("train.steps", n)
                gauge_set("train.loss", 0.5)
            """
        )
        assert codes == []


class TestUnownedMonitor:
    def test_flags_monitor_assigned_and_started(self, lint_codes):
        codes = lint_codes(
            """
            from repro.obs import ResourceMonitor

            def run():
                mon = ResourceMonitor(interval_s=0.1)
                mon.start()
            """
        )
        assert codes == ["RPR304"]

    def test_flags_qualified_inline_start(self, lint_codes):
        codes = lint_codes(
            """
            import repro.obs

            def run():
                repro.obs.ResourceMonitor().start()
            """
        )
        assert codes == ["RPR304"]

    def test_with_block_not_flagged(self, lint_codes):
        codes = lint_codes(
            """
            from repro.obs import ResourceMonitor

            def run():
                with ResourceMonitor(interval_s=0.1) as mon:
                    mon.sample_now()
            """
        )
        assert codes == []

    def test_enter_context_not_flagged(self, lint_codes):
        codes = lint_codes(
            """
            from contextlib import ExitStack

            from repro.obs import ResourceMonitor

            def run():
                with ExitStack() as stack:
                    mon = stack.enter_context(ResourceMonitor())
                    mon.sample_now()
            """
        )
        assert codes == []

    def test_unrelated_attribute_not_flagged(self, lint_codes):
        codes = lint_codes(
            """
            def run(factory):
                return factory.ResourceMonitor
            """
        )
        assert codes == []


class TestUnboundedServingCache:
    def test_flags_dict_cache_on_recommender(self, lint_codes):
        codes = lint_codes(
            """
            class ScoreTableRecommender:
                def __init__(self):
                    self._topk_cache = {}
            """
        )
        assert codes == ["RPR305"]

    def test_flags_dict_factory_on_frontend(self, lint_codes):
        codes = lint_codes(
            """
            class ServingFrontend:
                def __init__(self):
                    self.slate_cache = dict()
            """
        )
        assert codes == ["RPR305"]

    def test_flags_annotated_cache_on_recommender_subclass(self, lint_codes):
        codes = lint_codes(
            """
            from repro.serving.environment import Recommender

            class CustomArm(Recommender):
                def __init__(self):
                    self._score_cache: dict = {}
            """
        )
        assert codes == ["RPR305"]

    def test_lru_cache_not_flagged(self, lint_codes):
        codes = lint_codes(
            """
            from repro.streaming.lru import LRUCache

            class ScoreTableRecommender:
                def __init__(self):
                    self._topk_cache = LRUCache(4096)
            """
        )
        assert codes == []

    def test_non_cache_dict_not_flagged(self, lint_codes):
        codes = lint_codes(
            """
            class TaxonomyRecommender:
                def __init__(self):
                    self._topic_ranked = {}
            """
        )
        assert codes == []

    def test_cache_dict_outside_serving_class_not_flagged(self, lint_codes):
        codes = lint_codes(
            """
            class ShardStore:
                def __init__(self):
                    self._block_cache = {}
            """
        )
        assert codes == []
