"""Suppression-comment semantics: same-line, file-wide, and `all`."""

from __future__ import annotations


class TestLineSuppression:
    def test_same_line_disable_suppresses(self, lint_full):
        kept, suppressed = lint_full(
            """
            def merge(a, b):
                assert a  # repro-lint: disable=RPR402
                return a + b
            """
        )
        assert [f.code for f in kept] == []
        assert [f.code for f in suppressed] == ["RPR402"]

    def test_disable_is_line_scoped(self, lint_full):
        kept, suppressed = lint_full(
            """
            def merge(a, b):
                assert a  # repro-lint: disable=RPR402
                assert b
                return a + b
            """
        )
        assert [f.code for f in kept] == ["RPR402"]
        assert [f.code for f in suppressed] == ["RPR402"]

    def test_disable_other_code_does_not_suppress(self, lint_full):
        kept, suppressed = lint_full(
            """
            def merge(a, b):
                assert a  # repro-lint: disable=RPR101
                return a + b
            """
        )
        assert [f.code for f in kept] == ["RPR402"]
        assert suppressed == []

    def test_multiple_codes_on_one_line(self, lint_full):
        kept, suppressed = lint_full(
            """
            import time

            def stamp(p):
                p.data = time.time()  # repro-lint: disable=RPR103, RPR401
            """
        )
        assert kept == []
        assert sorted(f.code for f in suppressed) == ["RPR103", "RPR401"]

    def test_disable_all_on_line(self, lint_full):
        kept, suppressed = lint_full(
            """
            import time

            def stamp(p):
                p.data = time.time()  # repro-lint: disable=all
            """
        )
        assert kept == []
        assert sorted(f.code for f in suppressed) == ["RPR103", "RPR401"]


class TestFileSuppression:
    def test_disable_file_covers_every_line(self, lint_full):
        kept, suppressed = lint_full(
            """
            # repro-lint: disable-file=RPR402

            def merge(a, b):
                assert a
                assert b
                return a + b
            """
        )
        assert kept == []
        assert [f.code for f in suppressed] == ["RPR402", "RPR402"]

    def test_disable_file_only_names_its_code(self, lint_full):
        kept, suppressed = lint_full(
            """
            # repro-lint: disable-file=RPR402
            import time

            def stamp(a):
                assert a
                return time.time()
            """
        )
        assert [f.code for f in kept] == ["RPR103"]
        assert [f.code for f in suppressed] == ["RPR402"]

    def test_disable_file_all(self, lint_full):
        kept, suppressed = lint_full(
            """
            # repro-lint: disable-file=all
            import time

            def stamp(a):
                assert a
                return time.time()
            """
        )
        assert kept == []
        assert sorted(f.code for f in suppressed) == ["RPR103", "RPR402"]
