"""Baseline fingerprints: drift stability, round-trips, staleness."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.lint import Baseline, lint_source
from repro.lint.baseline import BASELINE_VERSION


def _findings(source: str, path: str = "src/pkg/mod.py"):
    kept, _ = lint_source(textwrap.dedent(source), path)
    return kept


SNIPPET = """
def merge(a, b):
    assert a.shape == b.shape
    return a + b
"""

DRIFTED = """
import logging

logger = logging.getLogger(__name__)


def merge(a, b):
    assert a.shape == b.shape
    return a + b
"""


class TestFingerprints:
    def test_stable_under_line_drift(self):
        before = _findings(SNIPPET)
        after = _findings(DRIFTED)
        assert [f.code for f in before] == ["RPR402"]
        assert [f.code for f in after] == ["RPR402"]
        assert before[0].line != after[0].line
        assert before[0].fingerprint == after[0].fingerprint

    def test_changes_when_offending_line_edited(self):
        before = _findings(SNIPPET)
        after = _findings(SNIPPET.replace("a.shape == b.shape", "a.ndim == b.ndim"))
        assert before[0].fingerprint != after[0].fingerprint

    def test_duplicate_lines_get_distinct_fingerprints(self):
        findings = _findings(
            """
            def check(a, b):
                assert a
                assert a
            """
        )
        assert len(findings) == 2
        assert findings[0].fingerprint != findings[1].fingerprint


class TestRoundTrip:
    def test_write_then_load_masks_findings(self, tmp_path):
        findings = _findings(SNIPPET)
        baseline = Baseline.from_findings(findings)
        target = baseline.write(tmp_path / "baseline.json")

        loaded = Baseline.load(target)
        fresh, baselined, stale = loaded.split(_findings(DRIFTED))
        assert fresh == []
        assert [f.code for f in baselined] == ["RPR402"]
        assert stale == []

    def test_new_finding_stays_fresh(self, tmp_path):
        baseline = Baseline.from_findings(_findings(SNIPPET))
        target = baseline.write(tmp_path / "baseline.json")

        grown = SNIPPET + "\n\ndef check(c):\n    assert c\n"
        fresh, baselined, _ = Baseline.load(target).split(_findings(grown))
        assert [f.code for f in baselined] == ["RPR402"]
        assert [f.code for f in fresh] == ["RPR402"]
        assert "assert c" in fresh[0].source_line

    def test_fixed_finding_reported_stale(self, tmp_path):
        baseline = Baseline.from_findings(_findings(SNIPPET))
        target = baseline.write(tmp_path / "baseline.json")

        clean = "def merge(a, b):\n    return a + b\n"
        fresh, baselined, stale = Baseline.load(target).split(_findings(clean))
        assert fresh == baselined == []
        assert [entry["code"] for entry in stale] == ["RPR402"]

    def test_edited_line_comes_back_fresh(self, tmp_path):
        baseline = Baseline.from_findings(_findings(SNIPPET))
        target = baseline.write(tmp_path / "baseline.json")

        edited = SNIPPET.replace("a.shape == b.shape", "a.ndim == b.ndim")
        fresh, baselined, stale = Baseline.load(target).split(_findings(edited))
        assert baselined == []
        assert [f.code for f in fresh] == ["RPR402"]
        assert len(stale) == 1


class TestLoading:
    def test_missing_file_is_empty_baseline(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert baseline.entries == {}

    def test_version_mismatch_raises(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(
            json.dumps({"version": BASELINE_VERSION + 1, "entries": []})
        )
        with pytest.raises(ValueError, match="version"):
            Baseline.load(target)

    def test_entries_serialized_in_location_order(self, tmp_path):
        findings = _findings(SNIPPET) + _findings(SNIPPET, path="src/pkg/aaa.py")
        payload = Baseline.from_findings(findings).to_json()
        paths = [entry["path"] for entry in payload["entries"]]
        assert paths == sorted(paths)
