"""Fixture tests for the numeric-API family (RPR4xx)."""

from __future__ import annotations


class TestTensorDataWrite:
    def test_flags_plain_assignment(self, lint_codes):
        codes = lint_codes(
            """
            def clobber(param, values):
                param.data = values
            """
        )
        assert codes == ["RPR401"]

    def test_flags_augmented_assignment(self, lint_codes):
        codes = lint_codes(
            """
            def step(param, grad, lr):
                param.data -= lr * grad
            """
        )
        assert codes == ["RPR401"]

    def test_flags_element_write_through_data(self, lint_codes):
        codes = lint_codes(
            """
            def mask(param, idx):
                param.data[idx] = 0.0
            """
        )
        assert codes == ["RPR401"]

    def test_reading_data_not_flagged(self, lint_codes):
        codes = lint_codes(
            """
            def norm(param):
                values = param.data
                return (values * values).sum()
            """
        )
        assert codes == []

    def test_other_attribute_writes_not_flagged(self, lint_codes):
        codes = lint_codes(
            """
            def rename(node, label):
                node.name = label
            """
        )
        assert codes == []


class TestBareAssert:
    def test_flags_assert_in_library_code(self, lint_codes):
        codes = lint_codes(
            """
            def merge(a, b):
                assert a.shape == b.shape, "shape mismatch"
                return a + b
            """
        )
        assert codes == ["RPR402"]

    def test_test_file_exempt(self, lint_codes):
        source = """
        def test_merge():
            assert 1 + 1 == 2
        """
        assert lint_codes(source, path="tests/nn/test_merge.py") == []

    def test_conftest_exempt(self, lint_codes):
        source = """
        def helper(x):
            assert x
        """
        assert lint_codes(source, path="tests/conftest.py") == []

    def test_raise_not_flagged(self, lint_codes):
        codes = lint_codes(
            """
            def merge(a, b):
                if a.shape != b.shape:
                    raise ValueError("shape mismatch")
                return a + b
            """
        )
        assert codes == []
