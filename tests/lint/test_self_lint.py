"""The self-lint gate: ``src/`` must be clean against the checked-in baseline.

This is the CI teeth of the analyzer — any fresh finding in the library
fails this test, and any stale baseline entry (a finding that was fixed
but whose entry lingers) fails it too, keeping the baseline honest in
both directions.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import Baseline, load_config, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]

pytestmark = pytest.mark.lint


@pytest.fixture(scope="module")
def self_lint_result():
    config = load_config(REPO_ROOT)
    baseline_path = config.baseline_path()
    baseline = (
        Baseline.load(baseline_path)
        if baseline_path is not None and baseline_path.is_file()
        else None
    )
    return run_lint([str(REPO_ROOT / "src")], config=config, baseline=baseline)


def test_src_has_no_fresh_findings(self_lint_result):
    rendered = "\n".join(f.render() for f in self_lint_result.fresh)
    assert self_lint_result.fresh == [], (
        f"fresh lint findings in src/ — fix them or justify a baseline "
        f"entry:\n{rendered}"
    )


def test_baseline_has_no_stale_entries(self_lint_result):
    stale = self_lint_result.stale_baseline
    rendered = "\n".join(
        f"{entry.get('path')}:{entry.get('line')} {entry.get('code')}"
        for entry in stale
    )
    assert stale == [], (
        f"stale baseline entries (their findings were fixed) — shrink "
        f"LINT_BASELINE.json:\n{rendered}"
    )


def test_gate_actually_walked_the_tree(self_lint_result):
    # Guard against a silently-empty walk making the gate vacuous.
    assert self_lint_result.files_checked > 50
