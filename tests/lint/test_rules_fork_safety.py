"""Fixture tests for the fork-safety family (RPR2xx)."""

from __future__ import annotations


class TestUnpicklableTask:
    def test_flags_lambda_to_pool_map(self, lint_codes):
        codes = lint_codes(
            """
            def run(pool, chunks):
                return pool.map(lambda task, ctx: task + 1, chunks)
            """
        )
        assert codes == ["RPR201"]

    def test_flags_lambda_to_map_async(self, lint_codes):
        codes = lint_codes(
            """
            def run(pool, chunks):
                return pool.map_async(lambda t: t, chunks).get()
            """
        )
        assert codes == ["RPR201"]

    def test_flags_nested_function_by_name(self, lint_codes):
        codes = lint_codes(
            """
            def run(pool, chunks, bias):
                def task(chunk, ctx):
                    return chunk + bias
                return pool.map(task, chunks)
            """
        )
        assert codes == ["RPR201"]

    def test_module_level_task_not_flagged(self, lint_codes):
        codes = lint_codes(
            """
            def _chunk_task(task, ctx):
                return task + 1

            def run(pool, chunks):
                return pool.map(_chunk_task, chunks)
            """
        )
        assert codes == []

    def test_builtin_map_with_lambda_not_flagged(self, lint_codes):
        # Only pool-style .map methods are in scope; builtin map is fine.
        assert lint_codes("doubled = map(lambda x: x * 2, [1, 2])\n") == []


class TestTaskMutatesGlobal:
    def test_flags_global_statement_in_task(self, lint_codes):
        codes = lint_codes(
            """
            _TOTAL = 0

            def _sum_task(task, ctx):
                global _TOTAL
                _TOTAL = _TOTAL + task
                return task

            def run(pool, chunks):
                return pool.map(_sum_task, chunks)
            """
        )
        assert codes == ["RPR202"]

    def test_flags_module_dict_write_in_task(self, lint_codes):
        codes = lint_codes(
            """
            _CACHE = {}

            def _cache_task(task, ctx):
                _CACHE[task] = ctx
                return task

            def run(pool, chunks):
                return pool.map(_cache_task, chunks)
            """
        )
        assert codes == ["RPR202"]

    def test_local_mutation_in_task_not_flagged(self, lint_codes):
        codes = lint_codes(
            """
            def _local_task(task, ctx):
                cache = {}
                cache[task] = ctx
                return cache

            def run(pool, chunks):
                return pool.map(_local_task, chunks)
            """
        )
        assert codes == []

    def test_non_task_function_not_flagged(self, lint_codes):
        codes = lint_codes(
            """
            _CACHE = {}

            def remember(key, value):
                _CACHE[key] = value
            """
        )
        assert codes == []


class TestSharedMatrixLifecycle:
    def test_flags_bare_from_array(self, lint_codes):
        codes = lint_codes(
            """
            from repro.parallel.shared import SharedMatrix

            def share(points):
                handle = SharedMatrix.from_array(points)
                return handle
            """
        )
        assert codes == ["RPR203"]

    def test_with_block_not_flagged(self, lint_codes):
        codes = lint_codes(
            """
            from repro.parallel.shared import shared_arrays

            def share(pool, points):
                with shared_arrays(pool, points) as (handle,):
                    return handle.shape
            """
        )
        assert codes == []

    def test_unrelated_from_array_not_flagged(self, lint_codes):
        codes = lint_codes(
            """
            import pandas as pd

            def frame(records):
                return pd.DataFrame.from_records(records)
            """
        )
        assert codes == []


class TestUnownedMemmap:
    def test_flags_bare_np_memmap(self, lint_codes):
        codes = lint_codes(
            """
            import numpy as np

            def load(path, n):
                block = np.memmap(path, dtype="<f8", mode="r", shape=(n,))
                return block.sum()
            """
        )
        assert codes == ["RPR205"]

    def test_flags_open_memmap(self, lint_codes):
        codes = lint_codes(
            """
            from numpy.lib.format import open_memmap

            def load(path):
                return open_memmap(path, mode="r")
            """
        )
        assert codes == ["RPR205"]

    def test_with_block_not_flagged(self, lint_codes):
        codes = lint_codes(
            """
            import numpy as np

            def load(path, n):
                with np.memmap(path, dtype="<f8", mode="r", shape=(n,)) as block:
                    return block.sum()
            """
        )
        assert codes == []

    def test_repo_config_sanctions_storage_module(self):
        # The repo's own pyproject marks open_block()'s home module as
        # the one place allowed to call np.memmap directly.
        from pathlib import Path

        from repro.lint import load_config

        config = load_config(Path(__file__).resolve().parents[2])
        assert config.rule_excluded("RPR205", "src/repro/shard/storage.py")
        assert not config.rule_excluded("RPR205", "src/repro/core/sage.py")

    def test_unrelated_memmap_name_not_flagged(self, lint_codes):
        codes = lint_codes(
            """
            import mmap

            def load(fh):
                return mmap.mmap(fh.fileno(), 0)
            """
        )
        assert codes == []
