"""Fixture tests for the determinism family (RPR1xx)."""

from __future__ import annotations


class TestGlobalNumpyRng:
    def test_flags_module_level_rng_call(self, lint_codes):
        codes = lint_codes(
            """
            import numpy as np

            def draw(n):
                return np.random.default_rng(0).normal(size=n)
            """
        )
        assert codes == ["RPR101"]

    def test_flags_legacy_global_api(self, lint_codes):
        codes = lint_codes(
            """
            import numpy as np

            def shuffle(x):
                np.random.shuffle(x)
            """
        )
        assert codes == ["RPR101"]

    def test_resolves_unaliased_import(self, lint_codes):
        codes = lint_codes(
            """
            import numpy

            def draw():
                return numpy.random.rand(3)
            """
        )
        assert codes == ["RPR101"]

    def test_generator_annotation_not_flagged(self, lint_codes):
        codes = lint_codes(
            """
            import numpy as np

            def draw(rng: np.random.Generator) -> np.ndarray:
                if isinstance(rng, np.random.Generator):
                    return rng.normal(size=3)
                return np.zeros(3)
            """
        )
        assert codes == []

    def test_ensure_rng_call_not_flagged(self, lint_codes):
        codes = lint_codes(
            """
            from repro.utils.rng import ensure_rng

            def draw(seed):
                return ensure_rng(seed).normal(size=3)
            """
        )
        assert codes == []


class TestStdlibRandom:
    def test_flags_plain_import(self, lint_codes):
        assert lint_codes("import random\n") == ["RPR102"]

    def test_flags_from_import(self, lint_codes):
        assert lint_codes("from random import shuffle\n") == ["RPR102"]

    def test_other_modules_not_flagged(self, lint_codes):
        assert lint_codes("import secrets\nfrom os import path\n") == []

    def test_randomish_names_not_flagged(self, lint_codes):
        assert lint_codes("import randomart\nfrom mypkg.random_util import x\n") == []


class TestWallClock:
    def test_flags_time_time(self, lint_codes):
        codes = lint_codes(
            """
            import time

            def stamp():
                return time.time()
            """
        )
        assert codes == ["RPR103"]

    def test_flags_from_imported_time(self, lint_codes):
        codes = lint_codes(
            """
            from time import time

            def stamp():
                return time()
            """
        )
        assert codes == ["RPR103"]

    def test_flags_datetime_now(self, lint_codes):
        codes = lint_codes(
            """
            import datetime

            def stamp():
                return datetime.datetime.now()
            """
        )
        assert codes == ["RPR103"]

    def test_perf_counter_not_flagged(self, lint_codes):
        codes = lint_codes(
            """
            import time

            def tick():
                return time.perf_counter()
            """
        )
        assert codes == []


class TestSetOrder:
    def test_flags_for_loop_over_set_literal(self, lint_codes):
        codes = lint_codes(
            """
            def walk():
                out = []
                for x in {3, 1, 2}:
                    out.append(x)
                return out
            """
        )
        assert codes == ["RPR104"]

    def test_flags_list_of_set_call(self, lint_codes):
        assert lint_codes("ids = list(set([3, 1, 2]))\n") == ["RPR104"]

    def test_flags_annotated_set_parameter(self, lint_codes):
        codes = lint_codes(
            """
            def pick(days: set[int] | list[int]):
                return list(days)
            """
        )
        assert codes == ["RPR104"]

    def test_flags_assigned_set_name(self, lint_codes):
        codes = lint_codes(
            """
            def walk(xs):
                seen = set(xs)
                return tuple(seen)
            """
        )
        assert codes == ["RPR104"]

    def test_flags_list_comprehension_over_set(self, lint_codes):
        codes = lint_codes(
            """
            def walk(xs):
                seen = set(xs)
                return [x + 1 for x in seen]
            """
        )
        assert codes == ["RPR104"]

    def test_flags_numpy_array_of_set(self, lint_codes):
        codes = lint_codes(
            """
            import numpy as np

            def arr(xs):
                return np.array(set(xs))
            """
        )
        assert codes == ["RPR104"]

    def test_sorted_is_the_sanctioned_boundary(self, lint_codes):
        codes = lint_codes(
            """
            def walk(days: set[int]):
                for day in sorted(days):
                    yield day
                return list(sorted(days))
            """
        )
        assert codes == []

    def test_order_free_consumers_not_flagged(self, lint_codes):
        codes = lint_codes(
            """
            def stats(xs):
                seen = set(xs)
                return len(seen), sum(seen), min(seen), max(seen), 3 in seen
            """
        )
        assert codes == []

    def test_set_comprehension_over_set_not_flagged(self, lint_codes):
        # A set built from a set stays order-insensitive.
        codes = lint_codes(
            """
            def shrink(pool: set[int]):
                return {k for k in pool if k > 2}
            """
        )
        assert codes == []

    def test_generator_into_sorted_not_flagged(self, lint_codes):
        codes = lint_codes(
            """
            def walk(pool: set[int]):
                return sorted(k * 2 for k in pool)
            """
        )
        assert codes == []

    def test_membership_on_plain_list_not_flagged(self, lint_codes):
        assert lint_codes("ids = list([3, 1, 2])\n") == []
