"""The command-line experiment runner."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_stats_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.size == "small"
        assert args.seed == 0

    def test_table3_methods_parsed(self):
        args = build_parser().parse_args(["table3", "--methods", "ge,hignn"])
        assert args.methods == "ge,hignn"

    def test_invalid_size_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "--size", "huge"])


class TestCommands:
    def test_stats_runs(self, capsys):
        assert main(["stats", "--size", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "mini-taobao1" in out
        assert "mini-taobao3" in out

    def test_table3_rejects_unknown_method(self, capsys):
        assert main(["table3", "--methods", "nonsense", "--size", "tiny"]) == 2

    def test_table3_tiny_run(self, capsys):
        code = main(
            ["table3", "--size", "tiny", "--methods", "ge", "--epochs", "1",
             "--levels", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ge=" in out
