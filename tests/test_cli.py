"""The command-line experiment runner."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_stats_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.size == "small"
        assert args.seed == 0

    def test_table3_methods_parsed(self):
        args = build_parser().parse_args(["table3", "--methods", "ge,hignn"])
        assert args.methods == "ge,hignn"

    def test_invalid_size_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "--size", "huge"])


class TestCommands:
    def test_stats_runs(self, capsys):
        assert main(["stats", "--size", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "mini-taobao1" in out
        assert "mini-taobao3" in out

    def test_table3_rejects_unknown_method(self, capsys):
        assert main(["table3", "--methods", "nonsense", "--size", "tiny"]) == 2

    def test_table3_tiny_run(self, capsys):
        code = main(
            ["table3", "--size", "tiny", "--methods", "ge", "--epochs", "1",
             "--levels", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ge=" in out

    def test_bench_writes_report(self, capsys, tmp_path, monkeypatch):
        import json

        from repro.utils import bench

        # Shrink the workload grid: this exercises the wiring, not perf.
        monkeypatch.setitem(bench.GRAPH_SIZES, "quick", [(40, 30, 120)])
        monkeypatch.setitem(bench.KMEANS_SIZES, "quick", [(60, 4, 5)])
        monkeypatch.setitem(
            bench.SHARD_SIZES,
            "quick",
            [{"users": 120, "items": 90, "clusters": 6, "shards": 3, "degree": 4.0}],
        )
        monkeypatch.setitem(
            bench.SERVING_SIZES,
            "quick",
            {
                "graph": (50, 40, 200),
                "requests": 60,
                "k": 5,
                "visitors": 25,
                "delta_edges": 2,
                "refresh_batch": 16,
            },
        )
        out = tmp_path / "bench.json"
        code = main(["bench", "--mode", "quick", "--repeats", "1",
                     "--out", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "hot-path benchmark" in printed
        assert f"wrote {out}" in printed
        data = json.loads(out.read_text())
        assert data["schema"] == bench.SCHEMA
        assert "git_commit" in data
        assert set(data["benchmarks"]) == {
            "embed_all", "train_epoch", "weighted_sampling", "kmeans",
            "parallel", "score_topk", "shard", "serving",
        }
        serving_variants = {
            row["variant"] for row in data["benchmarks"]["serving"]
        }
        assert serving_variants == {"replay", "delta_refresh", "run_day"}
        for row in data["benchmarks"]["parallel"]:
            assert row["workers_effective"] >= 1
            assert isinstance(row["degraded"], bool)
        assert data["benchmarks"]["embed_all"][0]["vertices_per_sec"] > 0


class TestServeCommand:
    def test_serve_runs_and_prints_rounds(self, capsys):
        code = main(
            ["serve", "--users", "60", "--items", "40", "--edges", "240",
             "--rounds", "2", "--requests", "50", "--batch-size", "16"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "warmed 60x40 graph" in out
        assert "round" in out
        assert "total: 100 requests" in out

    def test_serve_json_report(self, capsys):
        import json

        code = main(
            ["serve", "--users", "60", "--items", "40", "--edges", "240",
             "--rounds", "2", "--requests", "50", "--batch-size", "16",
             "--json"]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["rounds"]) == 2
        assert data["total_requests"] == 100
        assert 0.0 <= data["hit_rate"] <= 1.0
        for row in data["rounds"]:
            assert row["refresh_mode"] in {"delta", "full"}
            assert row["req_per_sec"] > 0

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.rounds == 4
        assert args.refresh_every == 1
        assert args.refresh_threshold is None


class TestBenchParser:
    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.mode == "quick"
        assert args.out == "BENCH_hotpaths.json"
        assert args.repeats == 3

    def test_bench_rejects_unknown_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--mode", "huge"])
