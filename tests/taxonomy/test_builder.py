"""Taxonomy construction from fitted hierarchies."""

import numpy as np
import pytest

from repro.taxonomy.builder import Taxonomy, Topic, build_taxonomy
from repro.taxonomy.pipeline import TaxonomyPipelineConfig, fit_query_item_hignn


FAST = TaxonomyPipelineConfig(
    levels=2, embedding_dim=8, word2vec_epochs=1, sage_epochs=2, batch_size=128
)


@pytest.fixture(scope="module")
def built(tiny_query_dataset_module):
    hierarchy, _ = fit_query_item_hignn(tiny_query_dataset_module, FAST, rng=0)
    taxonomy = build_taxonomy(hierarchy, tiny_query_dataset_module)
    return hierarchy, taxonomy


@pytest.fixture(scope="module")
def tiny_query_dataset_module():
    from repro.data import load_query_dataset

    return load_query_dataset(size="tiny", seed=0)


class TestStructure:
    def test_levels_present(self, built):
        _, taxonomy = built
        assert taxonomy.num_levels == 2
        assert len(taxonomy.at_level(1)) >= 2
        assert len(taxonomy.at_level(2)) >= 2

    def test_level1_partitions_items(self, built, tiny_query_dataset_module):
        _, taxonomy = built
        items = np.sort(
            np.concatenate([t.items for t in taxonomy.at_level(1)])
        )
        assert np.array_equal(items, np.arange(tiny_query_dataset_module.num_items))

    def test_parent_links_consistent(self, built):
        _, taxonomy = built
        for topic in taxonomy.at_level(1):
            assert topic.parent is not None
            parent = taxonomy.topics[topic.parent]
            assert parent.level == 2
            assert set(topic.items.tolist()) <= set(parent.items.tolist())
            assert topic.topic_id in parent.children

    def test_roots_are_top_level(self, built):
        _, taxonomy = built
        assert all(t.level == taxonomy.num_levels for t in taxonomy.roots())

    def test_queries_attached(self, built, tiny_query_dataset_module):
        _, taxonomy = built
        g = tiny_query_dataset_module.graph
        for topic in taxonomy.at_level(1)[:3]:
            expected = set()
            for item in topic.items:
                expected.update(int(q) for q in g.user_neighbors(int(item)))
            assert set(topic.queries.tolist()) == expected

    def test_render_produces_tree_text(self, built):
        _, taxonomy = built
        text = taxonomy.render(max_children=2)
        assert "items)" in text
        assert text.count("\n") >= 2


class TestEdgeCases:
    def test_empty_hierarchy_raises(self, tiny_query_dataset_module):
        from repro.core.hierarchy import HierarchicalEmbeddings

        with pytest.raises(ValueError):
            build_taxonomy(HierarchicalEmbeddings(), tiny_query_dataset_module)

    def test_min_topic_size_filters(self, built, tiny_query_dataset_module):
        hierarchy, _ = built
        filtered = build_taxonomy(hierarchy, tiny_query_dataset_module, min_topic_size=5)
        assert all(t.size >= 5 for t in filtered.topics.values())

    def test_topic_dataclass(self):
        topic = Topic(
            topic_id="L1C0", level=1, cluster=0,
            items=np.array([1, 2]), queries=np.array([0]),
        )
        assert topic.size == 2
