"""The taxonomy pipeline: shared-space text embedding + HiGNN glue."""

import numpy as np
import pytest

from repro.taxonomy.pipeline import (
    TaxonomyPipelineConfig,
    embed_texts,
    fit_query_item_hignn,
)


@pytest.fixture(scope="module")
def dataset():
    from repro.data import load_query_dataset

    return load_query_dataset(size="tiny", seed=0)


class TestEmbedTexts:
    def test_shared_space_shapes(self, dataset):
        qv, iv, model = embed_texts(dataset, dim=8, epochs=1, rng=0)
        assert qv.shape == (dataset.num_queries, 8)
        assert iv.shape == (dataset.num_items, 8)

    def test_centered_and_scaled(self, dataset):
        qv, iv, _ = embed_texts(dataset, dim=8, epochs=1, rng=0)
        stacked = np.concatenate([qv, iv])
        assert np.allclose(stacked.mean(axis=0), 0.0, atol=1e-9)
        assert np.mean(np.sum(stacked**2, axis=1)) == pytest.approx(1.0, rel=1e-6)

    def test_vocabulary_spans_queries_and_titles(self, dataset):
        _, _, model = embed_texts(dataset, dim=8, epochs=1, rng=0)
        # A token that only occurs in queries must still be embedded.
        query_tokens = {t for doc in dataset.query_texts for t in doc}
        assert any(t in model.vocab for t in query_tokens)

    def test_deterministic(self, dataset):
        a, _, _ = embed_texts(dataset, dim=8, epochs=1, rng=3)
        b, _, _ = embed_texts(dataset, dim=8, epochs=1, rng=3)
        assert np.allclose(a, b)


class TestFitPipeline:
    def test_levels_and_embedding_dims(self, dataset):
        config = TaxonomyPipelineConfig(
            levels=2, embedding_dim=8, word2vec_dim=8,
            word2vec_epochs=1, sage_epochs=2,
        )
        hierarchy, w2v = fit_query_item_hignn(dataset, config, rng=0)
        assert 1 <= hierarchy.num_levels <= 2
        assert hierarchy.levels[0].user_embeddings.shape == (dataset.num_queries, 8)
        assert hierarchy.levels[0].item_embeddings.shape == (dataset.num_items, 8)

    def test_shared_space_modules(self, dataset):
        from repro.core.hignn import HiGNN  # noqa: F401  (import sanity)

        config = TaxonomyPipelineConfig(
            levels=1, embedding_dim=8, word2vec_dim=8,
            word2vec_epochs=1, sage_epochs=1,
        )
        hierarchy, _ = fit_query_item_hignn(dataset, config, rng=0)
        # The coarse graph carries mean-pooled features of dim 8.
        coarse = hierarchy.levels[0].coarse_graph
        assert coarse.user_features.shape[1] == 8
        assert coarse.item_features.shape[1] == 8

    def test_word2vec_dim_decoupled(self, dataset):
        config = TaxonomyPipelineConfig(
            levels=1, embedding_dim=4, word2vec_dim=12,
            word2vec_epochs=1, sage_epochs=1,
        )
        hierarchy, w2v = fit_query_item_hignn(dataset, config, rng=0)
        assert w2v.dim == 12
        assert hierarchy.levels[0].item_embeddings.shape[1] == 4
