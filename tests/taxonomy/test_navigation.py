"""Taxonomy browsing navigation."""

import numpy as np
import pytest

from repro.data.synthetic_text import QueryItemDataset
from repro.data.topics import TopicTree
from repro.graph.bipartite import BipartiteGraph
from repro.taxonomy.builder import Taxonomy, Topic
from repro.taxonomy.navigation import TaxonomyNavigator


@pytest.fixture()
def nav_fixture():
    tree = TopicTree.generate(branching=(2,), rng=0)
    item_titles = [
        ["beach", "dress"],
        ["beach", "towel"],
        ["laptop", "stand"],
        ["laptop", "charger"],
    ]
    dataset = QueryItemDataset(
        name="toy",
        graph=BipartiteGraph(2, 4, np.array([[0, 0], [1, 2]])),
        query_texts=[["beach"], ["laptop"]],
        item_titles=item_titles,
        tree=tree,
        query_topic=np.array([1, 2]),
        item_leaf=np.array([tree.leaves[0]] * 2 + [tree.leaves[1]] * 2),
    )
    taxonomy = Taxonomy(num_levels=2)
    beach = Topic("L1C0", 1, 0, np.array([0, 1]), np.array([0]), parent="L2C0")
    tech = Topic("L1C1", 1, 1, np.array([2, 3]), np.array([1]), parent="L2C0")
    beach.description = "beach things"
    tech.description = "laptop gear"
    root = Topic(
        "L2C0", 2, 0, np.arange(4), np.array([0, 1]), children=["L1C0", "L1C1"]
    )
    root.description = "everything"
    for t in (beach, tech, root):
        taxonomy.topics[t.topic_id] = t
    return taxonomy, dataset


class TestRouting:
    def test_routes_to_matching_topic(self, nav_fixture):
        taxonomy, dataset = nav_fixture
        nav = TaxonomyNavigator(taxonomy, dataset)
        result = nav.route("beach towel for summer")[0]
        assert result.topic_id == "L1C0"
        assert result.score > 0

    def test_path_reaches_root(self, nav_fixture):
        taxonomy, dataset = nav_fixture
        nav = TaxonomyNavigator(taxonomy, dataset)
        result = nav.route("laptop charger")[0]
        assert result.path == ["L1C1", "L2C0"]
        assert result.siblings == ["L1C0"]

    def test_topn_returns_ranked(self, nav_fixture):
        taxonomy, dataset = nav_fixture
        nav = TaxonomyNavigator(taxonomy, dataset)
        results = nav.route("beach", topn=2)
        assert len(results) == 2
        assert results[0].score >= results[1].score

    def test_breadcrumbs_use_descriptions(self, nav_fixture):
        taxonomy, dataset = nav_fixture
        nav = TaxonomyNavigator(taxonomy, dataset)
        crumbs = nav.breadcrumbs("beach dress")
        assert crumbs == ["everything", "beach things"]

    def test_empty_query_raises(self, nav_fixture):
        taxonomy, dataset = nav_fixture
        nav = TaxonomyNavigator(taxonomy, dataset)
        with pytest.raises(ValueError):
            nav.route("!!!")

    def test_empty_level_raises(self, nav_fixture):
        taxonomy, dataset = nav_fixture
        with pytest.raises(ValueError):
            TaxonomyNavigator(taxonomy, dataset, level=3)
