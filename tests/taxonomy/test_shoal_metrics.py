"""SHOAL baseline and taxonomy quality metrics."""

import numpy as np
import pytest

from repro.taxonomy.builder import Taxonomy, Topic
from repro.taxonomy.metrics import (
    evaluate_taxonomy,
    taxonomy_accuracy,
    taxonomy_diversity,
    topic_accuracy,
)
from repro.taxonomy.shoal import build_shoal_taxonomy


@pytest.fixture(scope="module")
def query_dataset():
    from repro.data import load_query_dataset

    return load_query_dataset(size="tiny", seed=0)


@pytest.fixture(scope="module")
def shoal(query_dataset):
    return build_shoal_taxonomy(query_dataset, [8, 3], rng=0)


class TestShoal:
    def test_levels_built(self, shoal):
        assert shoal.num_levels == 2
        assert len(shoal.at_level(1)) <= 8
        assert len(shoal.at_level(2)) <= 3

    def test_partitions_items(self, shoal, query_dataset):
        items = np.sort(np.concatenate([t.items for t in shoal.at_level(1)]))
        assert np.array_equal(items, np.arange(query_dataset.num_items))

    def test_parents_assigned(self, shoal):
        for topic in shoal.at_level(1):
            assert topic.parent is not None

    def test_invalid_counts(self, query_dataset):
        with pytest.raises(ValueError):
            build_shoal_taxonomy(query_dataset, [])
        with pytest.raises(ValueError):
            build_shoal_taxonomy(query_dataset, [0, 2])

    def test_no_smoothing_variant(self, query_dataset):
        tax = build_shoal_taxonomy(query_dataset, [5], graph_smoothing=False, rng=0)
        assert len(tax.at_level(1)) <= 5


def _manual_taxonomy(item_labels_per_topic):
    """Build a taxonomy whose level-1 topics have given member labels."""
    taxonomy = Taxonomy(num_levels=1)
    offset = 0
    for c, labels in enumerate(item_labels_per_topic):
        items = np.arange(offset, offset + len(labels))
        taxonomy.topics[f"L1C{c}"] = Topic(
            topic_id=f"L1C{c}", level=1, cluster=c,
            items=items, queries=np.array([], dtype=int),
        )
        offset += len(labels)
    return taxonomy


class TestTopicAccuracy:
    def test_pure_topic_is_one(self):
        topic = Topic("L1C0", 1, 0, np.array([0, 1, 2]), np.array([], dtype=int))
        labels = np.array([4, 4, 4])
        assert topic_accuracy(topic, labels) == 1.0

    def test_mixed_topic_majority(self):
        topic = Topic("L1C0", 1, 0, np.array([0, 1, 2, 3]), np.array([], dtype=int))
        labels = np.array([1, 1, 1, 2])
        assert topic_accuracy(topic, labels) == 0.75

    def test_empty_topic_zero(self):
        topic = Topic("L1C0", 1, 0, np.array([], dtype=int), np.array([], dtype=int))
        assert topic_accuracy(topic, np.array([])) == 0.0

    def test_sampling_cap(self):
        topic = Topic("L1C0", 1, 0, np.arange(500), np.array([], dtype=int))
        labels = np.zeros(500, dtype=int)
        assert topic_accuracy(topic, labels, max_items=50, rng=0) == 1.0


class TestTaxonomyMetrics:
    def test_accuracy_weighted_by_size(self, query_dataset):
        # One huge impure topic + many pure singletons: the weighted
        # score must sit near the huge topic's purity.
        fake = _manual_taxonomy([[0, 1]] * 1)
        # re-map to a real dataset: use a synthetic label array instead
        value = taxonomy_accuracy(fake, query_dataset, level=1)
        assert 0.0 <= value <= 1.0

    def test_diversity_definition(self, query_dataset):
        leaf_index = {int(l): i for i, l in enumerate(query_dataset.tree.leaves)}
        labels = np.array([leaf_index[int(l)] for l in query_dataset.item_leaf])
        # Build one qualified (>=3 categories) and one unqualified topic.
        cats = np.unique(labels)
        items_q = [np.flatnonzero(labels == c)[0] for c in cats[:3]]
        items_u = np.flatnonzero(labels == cats[0])[:2]
        taxonomy = Taxonomy(num_levels=1)
        taxonomy.topics["L1C0"] = Topic("L1C0", 1, 0, np.array(items_q), np.array([], dtype=int))
        taxonomy.topics["L1C1"] = Topic("L1C1", 1, 1, items_u, np.array([], dtype=int))
        value = taxonomy_diversity(taxonomy, query_dataset, levels=(1,))
        assert value == pytest.approx(0.5)

    def test_evaluate_returns_all_fields(self, shoal, query_dataset):
        scores = evaluate_taxonomy(shoal, query_dataset)
        assert set(scores) == {"levels", "accuracy", "diversity"}
        assert scores["levels"] == 2.0
        assert 0 <= scores["accuracy"] <= 1
        assert 0 <= scores["diversity"] <= 1

    def test_empty_taxonomy_scores_zero(self, query_dataset):
        empty = Taxonomy(num_levels=1)
        assert taxonomy_accuracy(empty, query_dataset) == 0.0
        assert taxonomy_diversity(empty, query_dataset) == 0.0
