"""Topic description matching (Eqs. 14-16)."""

import numpy as np
import pytest

from repro.data.synthetic_text import QueryItemDataset
from repro.graph.bipartite import BipartiteGraph
from repro.data.topics import TopicTree
from repro.taxonomy.builder import Taxonomy, Topic
from repro.taxonomy.describe import TopicDescriber, describe_taxonomy


def _toy_dataset():
    """Two clear topics: beach items (queries 0,1) and tech items (2)."""
    tree = TopicTree.generate(branching=(2,), rng=0)
    item_titles = [
        ["beach", "dress", "summer"],
        ["beach", "sunglasses", "sun"],
        ["laptop", "computer", "fast"],
        ["keyboard", "computer", "usb"],
    ]
    query_texts = [["beach", "dress"], ["beach", "sun"], ["computer", "fast"]]
    edges = np.array([[0, 0], [0, 1], [1, 1], [2, 2], [2, 3]])
    graph = BipartiteGraph(3, 4, edges)
    return QueryItemDataset(
        name="toy",
        graph=graph,
        query_texts=query_texts,
        item_titles=item_titles,
        tree=tree,
        query_topic=np.array([1, 1, 2]),
        item_leaf=np.array([tree.leaves[0]] * 2 + [tree.leaves[1]] * 2),
    )


def _topics(dataset):
    beach = Topic(
        topic_id="L1C0", level=1, cluster=0,
        items=np.array([0, 1]), queries=np.array([0, 1]),
    )
    tech = Topic(
        topic_id="L1C1", level=1, cluster=1,
        items=np.array([2, 3]), queries=np.array([2]),
    )
    return [beach, tech]


class TestScores:
    def test_popularity_higher_for_matching_topic(self):
        ds = _toy_dataset()
        describer = TopicDescriber(ds, _topics(ds))
        # 'beach dress' query against the beach topic vs the tech topic.
        assert describer.popularity(0, 0) > describer.popularity(0, 1)

    def test_concentration_higher_for_matching_topic(self):
        ds = _toy_dataset()
        describer = TopicDescriber(ds, _topics(ds))
        assert describer.concentration(0, 0) > describer.concentration(0, 1)
        assert describer.concentration(2, 1) > describer.concentration(2, 0)

    def test_representativeness_is_geometric_mean(self):
        ds = _toy_dataset()
        describer = TopicDescriber(ds, _topics(ds))
        pop = describer.popularity(0, 0)
        con = describer.concentration(0, 0)
        assert describer.representativeness(0, 0) == pytest.approx(
            np.sqrt(pop * con)
        )

    def test_concentration_in_unit_interval(self):
        ds = _toy_dataset()
        describer = TopicDescriber(ds, _topics(ds))
        for q in range(3):
            for t in range(2):
                assert 0.0 <= describer.concentration(q, t) < 1.0


class TestBestQuery:
    def test_best_query_is_topical(self):
        ds = _toy_dataset()
        describer = TopicDescriber(ds, _topics(ds))
        best, score = describer.best_query(0)
        assert best in (0, 1)  # a beach query
        assert score > 0

    def test_topic_without_queries_falls_back(self):
        ds = _toy_dataset()
        lonely = Topic(
            topic_id="L1C9", level=1, cluster=9,
            items=np.array([3]), queries=np.array([], dtype=int),
        )
        describer = TopicDescriber(ds, [lonely])
        best, _ = describer.best_query(0)
        assert best is None
        describer.describe()
        assert lonely.description == "L1C9"

    def test_empty_topic_list_raises(self):
        with pytest.raises(ValueError):
            TopicDescriber(_toy_dataset(), [])


class TestDescribeTaxonomy:
    def test_all_topics_described(self):
        ds = _toy_dataset()
        taxonomy = Taxonomy(num_levels=1)
        for t in _topics(ds):
            taxonomy.topics[t.topic_id] = t
        describe_taxonomy(taxonomy, ds)
        assert all(t.description for t in taxonomy.topics.values())

    def test_descriptions_match_topics(self):
        ds = _toy_dataset()
        taxonomy = Taxonomy(num_levels=1)
        for t in _topics(ds):
            taxonomy.topics[t.topic_id] = t
        describe_taxonomy(taxonomy, ds)
        assert "beach" in taxonomy.topics["L1C0"].description
        assert "computer" in taxonomy.topics["L1C1"].description
