"""CLI observability smoke: every subcommand runs tiny with ``--trace``.

Each run must leave a well-formed Chrome trace-event file; the commands
that build a HiGNN hierarchy must additionally show ≥1 ``hignn.level``
span per level with train/cluster/coarsen children and nonzero core
work counters (Section III-D's cost drivers).
"""

import json

import pytest

from repro.cli import build_parser, main
from repro.utils.logging import reset_logging


@pytest.fixture(autouse=True)
def clean_logging():
    yield
    reset_logging()


def _run_traced(tmp_path, argv):
    trace = tmp_path / "trace.json"
    assert main(argv + ["--trace", str(trace)]) == 0
    data = json.loads(trace.read_text())
    # Span events only: a --progress run adds monitor counter events
    # (ph="C"), which the flat trace deliberately omits.
    spans = [e for e in data["traceEvents"] if e["ph"] == "X"]
    assert spans, "trace must contain spans"
    for event in spans:
        assert event["dur"] >= 0
    flat = json.loads((tmp_path / "trace.flat.json").read_text())
    assert len(flat["spans"]) == len(spans)
    return data


def _assert_hignn_trace(data):
    events = data["traceEvents"]
    levels = [e for e in events if e["name"] == "hignn.level"]
    assert levels, "expected at least one hignn.level span"
    for level in levels:
        t0, t1 = level["ts"], level["ts"] + level["dur"]
        inside = {
            e["name"]
            for e in events
            if e["name"] in ("hignn.train", "hignn.cluster", "hignn.coarsen")
            and t0 <= e["ts"] and e["ts"] + e["dur"] <= t1 + 1e-3
        }
        assert inside == {"hignn.train", "hignn.cluster", "hignn.coarsen"}
    counters = data["metrics"]["counters"]
    for name in (
        "sage.vertices_embedded",
        "sampler.samples_drawn",
        "kmeans.iterations",
    ):
        assert counters.get(name, 0) > 0, name


class TestTraceSmoke:
    def test_stats(self, tmp_path, capsys):
        data = _run_traced(tmp_path, ["stats", "--size", "tiny"])
        assert any(e["name"] == "cli.stats" for e in data["traceEvents"])
        out = capsys.readouterr().out
        assert "span summary" in out and "metrics" in out

    def test_table3(self, tmp_path, capsys):
        data = _run_traced(
            tmp_path,
            ["table3", "--size", "tiny", "--methods", "hignn",
             "--epochs", "1", "--levels", "2"],
        )
        _assert_hignn_trace(data)

    def test_taxonomy(self, tmp_path, capsys):
        data = _run_traced(
            tmp_path, ["taxonomy", "--size", "tiny", "--levels", "2"]
        )
        _assert_hignn_trace(data)

    def test_ab(self, tmp_path, capsys):
        data = _run_traced(
            tmp_path, ["ab", "--size", "tiny", "--days", "1", "--visitors", "40"]
        )
        _assert_hignn_trace(data)
        counters = data["metrics"]["counters"]
        assert counters.get("serving.pairs_scored", 0) > 0
        assert counters.get("serving.recommendations", 0) > 0
        assert any(e["name"] == "serving.score_table" for e in data["traceEvents"])


class TestObsFlags:
    def test_trace_flag_parsed(self):
        args = build_parser().parse_args(["table3", "--trace", "t.json"])
        assert args.trace == "t.json"

    def test_trace_default_off(self):
        args = build_parser().parse_args(["stats"])
        assert args.trace is None

    def test_log_level_flag(self):
        args = build_parser().parse_args(["stats", "--log-level", "debug"])
        assert args.log_level == "debug"

    def test_verbose_counts(self):
        args = build_parser().parse_args(["stats", "-vv"])
        assert args.verbose == 2

    def test_verbose_installs_handler(self, tmp_path, capsys):
        import logging

        assert main(["stats", "--size", "tiny", "-v"]) == 0
        root = logging.getLogger("repro")
        assert any(
            isinstance(h, logging.StreamHandler)
            and not isinstance(h, logging.NullHandler)
            for h in root.handlers
        )

    def test_metrics_flag_parsed(self):
        args = build_parser().parse_args(["stats", "--metrics", "m.json"])
        assert args.metrics == "m.json"

    def test_progress_flag_parsed(self):
        args = build_parser().parse_args(["table3", "--progress"])
        assert args.progress is True

    def test_log_level_reaches_training_output(self, capsys):
        # table3 with hignn trains SageTrainer, whose per-epoch progress
        # was previously swallowed by the NullHandler; with --log-level
        # it must land on stderr.
        assert main(
            ["table3", "--size", "tiny", "--methods", "hignn", "--epochs", "1",
             "--levels", "1", "--log-level", "info"]
        ) == 0
        err = capsys.readouterr().err
        assert "repro.core" in err and "mean loss" in err


class TestMetricsFlag:
    def test_metrics_writes_final_snapshot(self, tmp_path):
        path = tmp_path / "metrics.json"
        assert main(["stats", "--size", "tiny", "--metrics", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro/trace/v1"
        assert {"counters", "gauges", "histograms"} <= set(doc["metrics"])

    def test_metrics_histograms_carry_percentiles(self, tmp_path):
        path = tmp_path / "metrics.json"
        assert main(
            ["table3", "--size", "tiny", "--methods", "hignn", "--epochs", "1",
             "--levels", "1", "--metrics", str(path)]
        ) == 0
        doc = json.loads(path.read_text())
        hists = doc["metrics"]["histograms"]
        assert hists, "training must record at least one histogram"
        for stats in hists.values():
            assert {"p50", "p90", "p99"} <= set(stats)

    def test_metrics_composes_with_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        assert main(
            ["stats", "--size", "tiny", "--trace", str(trace),
             "--metrics", str(metrics)]
        ) == 0
        assert json.loads(trace.read_text())["traceEvents"]
        assert json.loads(metrics.read_text())["metrics"]


class TestProgressFlag:
    def test_progress_renders_heartbeat_line(self, capsys):
        assert main(
            ["table3", "--size", "tiny", "--methods", "hignn", "--epochs", "2",
             "--levels", "1", "--progress"]
        ) == 0
        err = capsys.readouterr().err
        assert "\r[" in err, "expected a \\r-rewritten heartbeat status line"
        assert err.endswith("\n"), "progress line must be sealed with a newline"

    def test_progress_leaves_no_running_monitor(self):
        from repro.obs import active_monitors, current_monitor

        assert main(
            ["stats", "--size", "tiny", "--progress"]
        ) == 0
        assert not active_monitors()
        assert current_monitor() is None
