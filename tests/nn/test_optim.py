"""Optimisers: convergence on known problems and bookkeeping."""

import numpy as np
import pytest

from repro.nn.layers import Parameter
from repro.nn.optim import SGD, Adam, AdaGrad, build_optimizer, clip_grad_norm
from repro.nn.tensor import Tensor


def _quadratic_loss(p: Tensor) -> Tensor:
    # f(p) = ||p - 3||^2, minimum at 3.
    diff = p - 3.0
    return (diff * diff).sum()


def _run(optimizer_factory, steps=300):
    p = Parameter(np.zeros(4))
    opt = optimizer_factory([p])
    for _ in range(steps):
        opt.zero_grad()
        _quadratic_loss(p).backward()
        opt.step()
    return p.data


class TestConvergence:
    def test_sgd(self):
        assert np.allclose(_run(lambda ps: SGD(ps, lr=0.1)), 3.0, atol=1e-3)

    def test_sgd_momentum(self):
        assert np.allclose(_run(lambda ps: SGD(ps, lr=0.05, momentum=0.9)), 3.0, atol=1e-3)

    def test_adam(self):
        assert np.allclose(_run(lambda ps: Adam(ps, lr=0.1)), 3.0, atol=1e-2)

    def test_adagrad(self):
        assert np.allclose(_run(lambda ps: AdaGrad(ps, lr=1.0), steps=800), 3.0, atol=1e-2)


class TestMechanics:
    def test_none_grad_skipped(self):
        p = Parameter(np.ones(3))
        before = p.data.copy()
        SGD([p], lr=0.1).step()
        assert np.allclose(p.data, before)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.ones(3) * 10)
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(3)
        opt.step()
        assert np.all(p.data < 10)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.1, momentum=1.5)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], betas=(1.0, 0.999))

    def test_adam_bias_correction_first_step(self):
        # After one step with constant gradient g, Adam moves by ~lr.
        p = Parameter(np.zeros(1))
        opt = Adam([p], lr=0.01)
        p.grad = np.array([5.0])
        opt.step()
        assert p.data[0] == pytest.approx(-0.01, rel=1e-3)


class TestClip:
    def test_clip_reduces_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.ones(4) * 10  # norm 20
        norm = clip_grad_norm([p], 5.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(5.0)

    def test_clip_noop_below_threshold(self):
        p = Parameter(np.zeros(4))
        p.grad = np.ones(4) * 0.1
        clip_grad_norm([p], 5.0)
        assert np.allclose(p.grad, 0.1)

    def test_clip_invalid(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], 0.0)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [("adam", Adam), ("sgd", SGD), ("adagrad", AdaGrad)])
    def test_build(self, name, cls):
        opt = build_optimizer(name, [Parameter(np.ones(1))], lr=0.1)
        assert isinstance(opt, cls)

    def test_unknown(self):
        with pytest.raises(ValueError):
            build_optimizer("lbfgs", [], lr=0.1)
